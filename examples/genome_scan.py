#!/usr/bin/env python
"""Genome-scale batch scan across many genes — toward "FastCodeML".

The Selectome database runs the branch-site test across whole genomes
(paper §I-A); the computation is embarrassingly parallel across genes.
This example simulates a small "genome" of genes — some evolving
neutrally, some with positive selection on the test branch — and fans
the analyses out over a process pool, then summarises detections.

It also demonstrates the fault-tolerance layer that genome scale makes
mandatory (the gcodeml lesson): a FaultPolicy bounds per-gene runtime
and retries transient errors, and a JSONL journal checkpoints each
result as it lands, so a killed run resumes without recomputing
finished genes — re-run the same command with the journal file present
and only unfinished genes are analysed.

Run:  python examples/genome_scan.py [n_genes] [n_processes] [journal.jsonl]
"""

import os
import sys
import time

from repro import BranchSiteModelA, simulate_alignment, simulate_yule_tree
from repro.parallel.batch import GeneJob, analyze_genes
from repro.parallel.faults import FaultPolicy
from repro.parallel.metrics import summarize_results
from repro.trees.simulate import random_foreground

N_GENES = int(sys.argv[1]) if len(sys.argv) > 1 else 8
PROCESSES = int(sys.argv[2]) if len(sys.argv) > 2 else 2
JOURNAL = sys.argv[3] if len(sys.argv) > 3 else None

NEUTRAL = {"kappa": 2.0, "omega0": 0.2, "p0": 0.6, "p1": 0.3}  # H0 truth
SELECTED = {"kappa": 2.0, "omega0": 0.05, "omega2": 8.0, "p0": 0.5, "p1": 0.2}

print(f"simulating {N_GENES} genes (every odd gene truly under selection)...")
jobs, truly_selected = [], set()
for g in range(N_GENES):
    tree = simulate_yule_tree(6, seed=100 + g, mean_branch_length=0.15)
    random_foreground(tree, seed=200 + g, internal_only=True)
    if g % 2 == 1:
        sim = simulate_alignment(tree, BranchSiteModelA(), SELECTED, 150, seed=300 + g)
        truly_selected.add(f"gene{g:03d}")
    else:
        sim = simulate_alignment(
            tree, BranchSiteModelA(fix_omega2=True), NEUTRAL, 150, seed=300 + g
        )
    jobs.append(GeneJob.from_objects(f"gene{g:03d}", tree, sim.alignment))

# Survive bad genes instead of dying with them: cap each gene at five
# minutes, retry transient failures once, and recover from worker
# crashes.  Failures come back as structured records on the results.
policy = FaultPolicy(task_timeout=300.0, max_retries=1, max_pool_restarts=2)

resume = JOURNAL is not None and os.path.exists(JOURNAL)
if resume:
    print(f"journal {JOURNAL} exists - resuming (finished genes are skipped)")

print(f"running branch-site tests on {PROCESSES} processes...")
computed = set()
start = time.perf_counter()
results = analyze_genes(
    jobs, engine="slim", processes=PROCESSES, seed=1, max_iterations=20,
    policy=policy, journal=JOURNAL, resume=resume,
    on_result=lambda k, res: computed.add(res.gene_id),
    # Numerical self-healing: guarded engines (eigensolver fallback
    # ladder, P(t) checks) + seeded optimizer restarts; whatever fired
    # comes back on each result's `diagnostics`.
    recover=True,
)
elapsed = time.perf_counter() - start
resumed_ids = [r.gene_id for r in results if r.gene_id not in computed]

print(f"\n{'gene':<10s} {'lnL0':>12s} {'lnL1':>12s} {'2*delta':>9s} {'p':>10s}  {'truth':<9s} call")
tp = fp = 0
for res in results:
    if res.failed:
        # Structured failure: kind (error/timeout/pool) + attempt count.
        print(f"{res.gene_id:<10s} FAILED [{res.failure.kind}, "
              f"attempt {res.failure.attempts}]: {res.failure.message}")
        continue
    truth = "selected" if res.gene_id in truly_selected else "neutral"
    call = "DETECTED" if res.pvalue < 0.05 else "-"
    if call == "DETECTED":
        tp += truth == "selected"
        fp += truth == "neutral"
    print(f"{res.gene_id:<10s} {res.lnl0:>12.2f} {res.lnl1:>12.2f} "
          f"{res.statistic:>9.3f} {res.pvalue:>10.3g}  {truth:<9s} {call}")

recovered = [r for r in results if r.recovered]
if recovered:
    from repro.core.recovery import FitDiagnostics

    print("\nnumerical recovery (per gene):")
    for res in recovered:
        print(f"  {res.gene_id}: {FitDiagnostics.from_dict(res.diagnostics).describe()}")

n_sel = len(truly_selected)
print()
print(summarize_results(results, wall_seconds=elapsed, resumed_ids=resumed_ids).format())
print(f"\ndetected {tp}/{n_sel} truly selected genes; {fp} false positives "
      f"among {N_GENES - n_sel} neutral genes (alpha = 0.05, uncorrected)")
if JOURNAL:
    print(f"journal: {JOURNAL} (re-run the same command to resume)")
