#!/usr/bin/env python
"""Quickstart: detect positive selection on one branch of one gene.

The complete paper workflow in ~40 lines of public API:

1. simulate a gene under branch-site model A with positive selection on
   a chosen foreground branch (stand-in for a real alignment — swap in
   ``repro.read_alignment``/``repro.parse_newick`` for your own data);
2. fit the null (H0: ω2 = 1) and alternative (H1) hypotheses with the
   SlimCodeML engine;
3. run the likelihood ratio test;
4. identify the selected codon sites with Bayes empirical Bayes.

Run:  python examples/quickstart.py
"""

from repro import (
    BranchSiteModelA,
    beb_site_probabilities,
    fit_branch_site_test,
    make_engine,
    parse_newick,
    simulate_alignment,
)

# -- 1. Data: a 5-species gene, foreground = the (A,B) ancestor branch --
tree = parse_newick("((A:0.25,B:0.25):0.30 #1,(C:0.25,D:0.25):0.10,E:0.35);")
truth = {"kappa": 2.0, "omega0": 0.05, "omega2": 9.0, "p0": 0.55, "p1": 0.2}
sim = simulate_alignment(tree, BranchSiteModelA(), truth, n_codons=300, seed=42)
print(f"simulated {sim.alignment.n_taxa} species x {sim.alignment.n_codons} codons; "
      f"{int((sim.site_classes >= 2).sum())} sites truly under positive selection\n")

# -- 2-3. Fit H0 + H1 and test -----------------------------------------
engine = make_engine("slim")  # "codeml" | "slim" | "slim-v2"
test = fit_branch_site_test(
    lambda model: engine.bind(tree, sim.alignment, model),
    seed=1,
    max_iterations=50,
)
print(test.summary())

verdict = "POSITIVE SELECTION DETECTED" if test.lrt.significant() else "no significant signal"
print(f"\n=> {verdict} on the foreground branch "
      f"(p = {test.lrt.pvalue_chi2:.2e}, conservative chi2_1)\n")

# -- 4. Which codons? ---------------------------------------------------
bound = engine.bind(tree, sim.alignment, BranchSiteModelA())
sites = beb_site_probabilities(bound, test.h1.values, test.h1.branch_lengths)
selected = sites.selected_sites(threshold=0.95)
print(f"BEB: {selected.size} codon sites with P(selection) > 0.95: {selected.tolist()[:20]}")
truth_sites = set((sim.site_classes >= 2).nonzero()[0] + 1)
hits = sum(1 for s in selected if s in truth_sites)
print(f"    of which {hits} are true positives (ground truth known because we simulated)")
