#!/usr/bin/env python
"""Power study: how often does the branch-site LRT detect true selection?

The paper cites Anisimova, Bielawski & Yang (2001) on the accuracy and
power of the LRT (§I-A).  This example estimates, by simulation, the
test's power as a function of the selection strength ω2 and its false
positive rate under the null — the statistical properties that justify
the whole CodeML/SlimCodeML workflow.

Run:  python examples/lrt_power_study.py [replicates_per_cell]
(default 4 replicates to stay quick; raise for smoother estimates)
"""

import sys

from repro import (
    BranchSiteModelA,
    fit_branch_site_test,
    make_engine,
    parse_newick,
    simulate_alignment,
)

REPLICATES = int(sys.argv[1]) if len(sys.argv) > 1 else 4
TREE = "((A:0.2,B:0.2):0.3 #1,(C:0.2,D:0.2):0.1,E:0.3);"
N_CODONS = 200
OMEGA2_GRID = [1.0, 2.0, 4.0, 8.0]  # 1.0 = the null (false positive rate)

engine = make_engine("slim")
print(f"{REPLICATES} replicates x {len(OMEGA2_GRID)} omega2 values, "
      f"{N_CODONS} codons, 5 species\n")
print(f"{'omega2':>7s} {'rejections':>11s} {'rate':>6s}  interpretation")

for omega2 in OMEGA2_GRID:
    rejections = 0
    for rep in range(REPLICATES):
        tree = parse_newick(TREE)
        if omega2 == 1.0:
            model = BranchSiteModelA(fix_omega2=True)
            truth = {"kappa": 2.0, "omega0": 0.1, "p0": 0.55, "p1": 0.25}
        else:
            model = BranchSiteModelA()
            truth = {"kappa": 2.0, "omega0": 0.1, "omega2": omega2, "p0": 0.55, "p1": 0.25}
        sim = simulate_alignment(tree, model, truth, N_CODONS, seed=1000 * rep + int(omega2 * 10))
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m),
            seed=rep + 1,
            max_iterations=30,
        )
        rejections += test.lrt.significant()
    rate = rejections / REPLICATES
    label = (
        "false positive rate (should be < ~0.05)" if omega2 == 1.0
        else "power (should grow with omega2)"
    )
    print(f"{omega2:>7.1f} {rejections:>5d}/{REPLICATES:<5d} {rate:>6.2f}  {label}")

print("\nNote: the chi2_1 threshold is conservative at the omega2 = 1 boundary "
      "(§ LRT docs),\nso the realised false positive rate sits below the nominal 5%.")
