#!/usr/bin/env python
"""Selectome-style branch scan: test every branch of one gene in turn.

The paper's motivation (§I-A): the branch-site test "is done iteratively
for each branch of a phylogenetic tree".  This example simulates a gene
whose true foreground is known, then scans every internal branch as a
candidate foreground and reports the per-branch LRT — the inner loop of
a Selectome-style analysis.

Run:  python examples/branch_scan.py
"""

from repro import BranchSiteModelA, parse_newick, simulate_alignment, write_newick
from repro.parallel.batch import scan_branches

# A 8-species gene; the true foreground is the stem of the (A,B,C) clade.
tree = parse_newick(
    "(((A:0.1,B:0.12):0.08,C:0.2):0.25 #1,((D:0.1,E:0.1):0.1,F:0.15):0.1,(G:0.2,H:0.2):0.1);"
)
truth = {"kappa": 2.0, "omega0": 0.08, "omega2": 8.0, "p0": 0.5, "p1": 0.25}
sim = simulate_alignment(tree, BranchSiteModelA(), truth, n_codons=200, seed=7)

true_fg = tree.require_single_foreground()
print("gene tree:", write_newick(tree, lengths=False))
print(f"true foreground branch: node#{true_fg.index} "
      f"(ancestor of {[l.name for l in true_fg.postorder() if l.is_leaf]})\n")

print("scanning all internal branches (this re-fits H0+H1 per branch)...")
scan = scan_branches(
    "demo-gene",
    tree,
    sim.alignment,
    engine="slim",
    internal_only=True,
    seed=3,
    max_iterations=25,
    processes=1,  # set None to use all cores
)

# A scan never raises for one bad branch: successes land in
# scan.by_branch, failures as structured records in scan.failures.
# Callers wanting the old fail-fast contract chain .raise_on_failure().
if not scan.ok:
    print(f"\n{len(scan.failures)} branch task(s) failed:")
    for label, failure in sorted(scan.failures.items()):
        print(f"  {label}: {failure.describe()}")

print(f"\n{'branch':<12s} {'2*delta':>9s} {'p (chi2_1)':>12s}  verdict")
for label, lrt in sorted(scan.by_branch.items(), key=lambda kv: kv[1].pvalue_chi2):
    verdict = "**SELECTED**" if lrt.significant() else ""
    print(f"{label:<12s} {lrt.statistic:>9.3f} {lrt.pvalue_chi2:>12.4g}  {verdict}")

print("\n" + scan.summary().format())

significant = scan.significant_branches()
print(f"\nbranches significant at 5% (uncorrected): {significant}")
print(f"true foreground was node#{true_fg.index} — "
      + ("recovered!" if f"node#{true_fg.index}" in significant else "not recovered "
         "(short alignment: run with more codons for more power)"))
