#!/usr/bin/env python
"""Where did the selected substitutions happen?  Ancestral reconstruction.

After a significant branch-site test, reconstructing the codons at the
two ends of the foreground branch shows *which* substitutions the
selected sites underwent — the molecular story behind the statistics.
This example fits H1, reconstructs the marginal ancestral sequences, and
lists the inferred foreground-branch substitutions at the sites BEB
flags as selected.

Run:  python examples/ancestral_reconstruction.py
"""

from repro import (
    BranchSiteModelA,
    beb_site_probabilities,
    fit_model,
    make_engine,
    parse_newick,
    simulate_alignment,
)
from repro.likelihood.ancestral import marginal_reconstruction

# Foreground = stem of (A,B): its child node is the foreground ancestor,
# its parent node the pre-selection ancestor.
tree = parse_newick("((A:0.15,B:0.15):0.35 #1,(C:0.15,D:0.15):0.1,E:0.25);")
truth = {"kappa": 2.0, "omega0": 0.05, "omega2": 9.0, "p0": 0.5, "p1": 0.2}
sim = simulate_alignment(tree, BranchSiteModelA(), truth, n_codons=200, seed=31)

engine = make_engine("slim")
bound = engine.bind(tree, sim.alignment, BranchSiteModelA())
print("fitting H1...")
fit = fit_model(bound, seed=1, max_iterations=40)
print(f"lnL = {fit.lnl:.4f}, omega2 = {fit.values['omega2']:.2f} (truth 9.0)\n")

rec = marginal_reconstruction(bound, fit.values, fit.branch_lengths)
fg_child = tree.require_single_foreground()
fg_parent = fg_child.parent
child_seq = rec.codon_sequence(fg_child.index)
parent_seq = rec.codon_sequence(fg_parent.index)
print(f"foreground branch: node#{fg_parent.index} -> node#{fg_child.index} "
      f"(reconstruction confidence {rec.mean_confidence(fg_parent.index):.2f} / "
      f"{rec.mean_confidence(fg_child.index):.2f})")

sites = beb_site_probabilities(bound, fit.values, fit.branch_lengths)
selected = set(sites.selected_sites(0.90).tolist())

print(f"\ninferred substitutions on the foreground branch "
      f"(* = BEB-selected site, P > 0.90):")
print(f"{'codon':>6s} {'parent':>7s} {'child':>6s}  {'aa change':>9s}")
n_subs = n_selected_subs = 0
from repro import UNIVERSAL

for site in range(sim.alignment.n_codons):
    pa = parent_seq[3 * site : 3 * site + 3]
    ch = child_seq[3 * site : 3 * site + 3]
    if pa != ch:
        n_subs += 1
        mark = "*" if (site + 1) in selected else ""
        n_selected_subs += bool(mark)
        aa = f"{UNIVERSAL.translate(pa)}->{UNIVERSAL.translate(ch)}"
        print(f"{site + 1:>6d} {pa:>7s} {ch:>6s}  {aa:>9s} {mark}")

print(f"\n{n_subs} substitutions inferred on the foreground branch, "
      f"{n_selected_subs} at BEB-selected sites")
print("(simulated ground truth: classes 2a/2b evolved at omega2 = 9 on this branch)")
