#!/usr/bin/env python
"""Reproduce the paper's headline comparison on your own machine.

Runs one budgeted H0+H1 branch-site analysis per engine on a Table II
stand-in dataset and prints the §IV-2 speedups plus the §IV-1 accuracy
metric D — a miniature of Tables III/IV.  Also breaks an evaluation
down into eigendecomposition / matrix-exponential / CLV phases, showing
*where* each engine spends its time (the paper's profile-first story).

Run:  python examples/engine_comparison.py [dataset_id] [iterations]
      dataset_id in {i, ii, iii, iv}; default iii.
"""

import os
import sys

# Fair single-core comparison, as in the paper's evaluation setup (§IV).
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

from repro import BranchSiteModelA, make_dataset, relative_difference  # noqa: E402
from repro.core.engine import make_engine  # noqa: E402
from repro.optimize.ml import fit_branch_site_test  # noqa: E402

DATASET = sys.argv[1] if len(sys.argv) > 1 else "iii"
ITERATIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 3

print(f"generating Table II stand-in dataset {DATASET!r}...")
ds = make_dataset(DATASET)
print(f"  {ds.spec.n_species} species x {ds.spec.n_codons} codons, "
      f"{ds.tree.n_branches} branches\n")

runs = {}
for name in ("codeml", "slim", "slim-v2"):
    print(f"running {name} (H0 + H1, {ITERATIONS} iterations each)...")
    engine = make_engine(name)
    test = fit_branch_site_test(
        lambda m: engine.bind(ds.tree, ds.alignment, m),
        seed=1,
        max_iterations=ITERATIONS,
    )
    runs[name] = (test, engine.stopwatch)

ref_test, _ = runs["codeml"]
print(f"\n{'engine':<10s} {'runtime (s)':>12s} {'speedup':>8s} {'lnL H1':>14s} {'D vs codeml':>12s}")
for name, (test, _) in runs.items():
    speedup = ref_test.combined_runtime / test.combined_runtime
    d = relative_difference(ref_test.h1.lnl, test.h1.lnl)
    print(f"{name:<10s} {test.combined_runtime:>12.2f} {speedup:>7.2f}x "
          f"{test.h1.lnl:>14.4f} {d:>12.2e}")

print("\nTime breakdown per engine (accumulated over both fits):")
for name, (_, stopwatch) in runs.items():
    eigh = stopwatch.total("eigh")
    expm = stopwatch.total("expm")
    clv = stopwatch.total("clv")
    total = eigh + expm + clv
    print(f"  {name:<10s} eigh {eigh:6.2f}s ({eigh/total:5.1%})  "
          f"expm {expm:6.2f}s ({expm/total:5.1%})  "
          f"clv {clv:6.2f}s ({clv/total:5.1%})")

print("\nReading: 'slim' is the paper's evaluated prototype (dsyrk expm + "
      "per-site dgemv);\n'slim-v2' adds the Eq. 12-13 symmetric propagation "
      "and the §III-B BLAS-3 bundling the paper lists as follow-up work.")
