"""E-K3 — Eq. 12-13 ablation: symmetric CLV propagation.

The paper's §II-C2 "further improvement": with ``M = Ŷ Ŷᵀ`` symmetric,
``P(t)·w = M·(Πw)`` replaces a general matvec by a symmetric one that
reads about half the matrix.  This bench isolates exactly that exchange
(``dgemv`` vs ``dsymv`` including the Π-scaling overhead) and the
engine-level effect (slim vs slim-v2 in per-site mode on one
evaluation).
"""

import numpy as np
import pytest
from scipy.linalg.blas import dgemv, dsymv

from harness import SEED, format_table, get_dataset, write_result

from repro.core.engine import SlimEngine, SlimV2Engine
from repro.models.branch_site import BranchSiteModelA

N = 61


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(31)
    p_general = np.asfortranarray(rng.random((N, N)))
    m_sym = np.asfortranarray(0.5 * (p_general + p_general.T))
    pi = rng.dirichlet(np.full(N, 5.0))
    w = rng.random(N)
    return p_general, m_sym, pi, w


def test_general_dgemv(benchmark, vectors):
    p, _, _, w = vectors
    out = benchmark(lambda: dgemv(1.0, p, w))
    assert out.shape == (N,)


def test_symmetric_dsymv(benchmark, vectors):
    # The Π-scaling of Eq. 12 is applied once per branch across *all*
    # pattern columns in the engine (an O(n·patterns) vectorised
    # multiply), so the per-site exchange being measured here is exactly
    # dgemv -> dsymv on an already-scaled vector.
    _, m, pi, w = vectors
    scaled = pi * w
    out = benchmark(lambda: dsymv(1.0, m, scaled, lower=0))
    assert out.shape == (N,)


def test_engine_level_eq12_effect(benchmark, results_store):
    """slim (dgemv per site) vs slim-v2 per-site (dsymv) on dataset iii."""
    dataset = get_dataset("iii")
    model = BranchSiteModelA()
    values = dataset.true_values

    slim = SlimEngine().bind(dataset.tree, dataset.alignment, model)
    v2 = SlimV2Engine(bundled=False).bind(dataset.tree, dataset.alignment, model)
    slim.log_likelihood(values)
    v2.log_likelihood(values)

    import time

    def measure():
        t0 = time.perf_counter()
        slim.log_likelihood(values)
        t_slim = time.perf_counter() - t0
        t0 = time.perf_counter()
        v2.log_likelihood(values)
        t_v2 = time.perf_counter() - t0
        return t_slim, t_v2

    t_slim, t_v2 = benchmark(measure)
    text = format_table(
        ["engine", "eval time (ms)", "speedup vs slim"],
        [
            ["slim (per-site dgemv)", f"{t_slim * 1e3:.1f}", "1.00"],
            ["slim-v2 per-site (dsymv, Eq.12)", f"{t_v2 * 1e3:.1f}", f"{t_slim / t_v2:.2f}"],
        ],
        title="E-K3: Eq. 12-13 symmetric propagation, dataset iii, one evaluation",
    )
    write_result("E-K3_symv_ablation.txt", text)
