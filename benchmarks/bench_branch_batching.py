"""E-BB — batched BLAS-3 evaluation: stacked operators + level-order CLVs.

Measures what the batched engine layer buys during a real branch-site
fit: for each engine (× incremental on/off) the same budgeted H0+H1
analysis runs twice — per-branch path (one operator build and one CLV
propagation per branch×class) and batched path (stacked per-ω operator
builds, level-order propagation, cross-class build dedupe) — and the
table reports

* wall clock for both paths and the speedup factor (the acceptance bar
  is ≥ 2× for slim-v2 on a full non-incremental fit),
* the BLAS-3 fraction of executed flops on both paths (the per-branch
  ``slim`` row is the paper-prototype BLAS-2 baseline the batched
  pipeline rises from),
* the log-likelihoods, which must be *bit-identical* (exact float
  equality) or the run aborts.

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_branch_batching.py --quick --assert-speedup 2.0
"""

from __future__ import annotations

import argparse
import sys
import time

from harness import SEED, format_table, get_dataset, write_result

from repro.core.engine import make_engine
from repro.core.flops import FlopCounter
from repro.models.branch_site import BranchSiteModelA
from repro.optimize.ml import fit_model

ENGINES = ("codeml", "slim", "slim-v2")


def run_pair(dataset, engine_name: str, budget: int, incremental: bool,
             batched: bool):
    """Budgeted independent H0+H1 fits (harness Table III protocol),
    returning (lnl0, lnl1, iterations, blas3_fraction, wall).

    The per-branch baseline pins ``cache_transition_matrices=False`` —
    the configuration every engine shipped with before the batched
    layer (slim-v2 now defaults the cache on, because the batched
    class-decomposition memo keeps tokens stable across gradient
    probes).  The batched side runs the engine's own defaults.  Cached
    operators are built by the same kernel from the same inputs, so
    the bit-identity check below still holds.
    """
    counter = FlopCounter()
    if batched:
        engine = make_engine(engine_name, counter=counter)
    else:
        engine = make_engine(
            engine_name, counter=counter, cache_transition_matrices=False
        )
    wall = time.perf_counter()
    h0 = fit_model(
        engine.bind(
            dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=True),
            incremental=incremental, batched=batched,
        ),
        seed=SEED,
        max_iterations=budget,
    )
    h1 = fit_model(
        engine.bind(
            dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=False),
            incremental=incremental, batched=batched,
        ),
        seed=SEED,
        max_iterations=budget,
    )
    wall = time.perf_counter() - wall
    iterations = h0.n_iterations + h1.n_iterations
    return h0.lnl, h1.lnl, iterations, counter.blas3_fraction, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: slim-v2 non-incremental only, iteration budget 2",
    )
    parser.add_argument(
        "--dataset", default="iii", choices=["i", "ii", "iii", "iv"],
        help="Table II dataset (default iii: 25 species, the branch-rich case)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="optimizer iteration budget per hypothesis (default 3; 2 in --quick)",
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None, metavar="FACTOR",
        help="exit non-zero unless the slim-v2 full-fit (non-incremental) "
             "wall speedup is at least FACTOR",
    )
    args = parser.parse_args(argv)

    budget = args.iterations if args.iterations is not None else (2 if args.quick else 3)
    engines = ("slim-v2",) if args.quick else ENGINES
    modes = (False,) if args.quick else (False, True)
    dataset = get_dataset(args.dataset)

    rows = []
    headline_speedup = None
    for name in engines:
        for incremental in modes:
            lnl0_u, lnl1_u, iters_u, frac_u, wall_u = run_pair(
                dataset, name, budget, incremental, batched=False
            )
            lnl0_b, lnl1_b, iters_b, frac_b, wall_b = run_pair(
                dataset, name, budget, incremental, batched=True
            )
            if (lnl0_u, lnl1_u) != (lnl0_b, lnl1_b):
                print(
                    f"FATAL: {name} (incremental={incremental}) batched run is "
                    f"not bit-identical: H0 {lnl0_u!r} vs {lnl0_b!r}, "
                    f"H1 {lnl1_u!r} vs {lnl1_b!r}",
                    file=sys.stderr,
                )
                return 1
            if iters_u != iters_b:
                print(
                    f"FATAL: {name} iteration counts diverged "
                    f"({iters_u} vs {iters_b})",
                    file=sys.stderr,
                )
                return 1
            speedup = wall_u / wall_b if wall_b else float("inf")
            if name == "slim-v2" and not incremental:
                headline_speedup = speedup
            rows.append([
                name,
                "yes" if incremental else "no",
                f"{wall_u:.2f}",
                f"{wall_b:.2f}",
                f"{speedup:.2f}x",
                f"{frac_u:.3f}",
                f"{frac_b:.3f}",
                "yes",
            ])

    table = format_table(
        [
            "engine", "incremental", "wall per-branch (s)", "wall batched (s)",
            "speedup", "blas3 frac per-branch", "blas3 frac batched",
            "bit-identical",
        ],
        rows,
        title=(
            f"E-BB branch/class batching — dataset {args.dataset} "
            f"({dataset.tree.n_leaves} species, {dataset.alignment.n_codons} codons), "
            f"H0+H1 budget {budget} iterations/hypothesis, seed {SEED}"
        ),
    )
    if args.quick:
        print(table)
    else:
        write_result("E-BB_branch_batching.txt", table)

    if args.assert_speedup is not None:
        if headline_speedup is None or headline_speedup < args.assert_speedup:
            shown = "n/a" if headline_speedup is None else f"{headline_speedup:.2f}x"
            print(
                f"FAIL: slim-v2 full-fit speedup {shown} is below the "
                f"required {args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
