"""Shared benchmark infrastructure: budgeted fits, speedups, result tables.

The experiment registry (DESIGN.md §3) maps each bench file to a paper
artifact.  This module centralises:

* single-threaded BLAS pinning (the paper compares against sequential
  CodeML, §IV);
* the dataset cache;
* budgeted H0+H1 runs with identical seeds per engine — the paper's
  fixed-seed fairness rule;
* the three §IV-2 speedup flavours (overall ``So``, per-iteration
  ``Si``, combined ``Sc``);
* plain-text result tables mirroring the paper's layout, written to
  ``benchmarks/results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

# Pin BLAS threads *before* numpy spins up its pools: the paper builds
# GotoBLAS2 single-threaded for a fair comparison with sequential CodeML.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

from repro.core.engine import make_engine  # noqa: E402
from repro.datasets import Dataset, make_dataset, species_sweep_dataset  # noqa: E402
from repro.models.branch_site import BranchSiteModelA  # noqa: E402
from repro.optimize.lrt import likelihood_ratio_test  # noqa: E402
from repro.optimize.ml import BranchSiteTest, fit_model  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

#: Optimizer iteration budgets per hypothesis for the Table III runs.
#: Fixed budgets make per-iteration comparisons exact; dataset i is
#: additionally run to convergence by the accuracy bench.
TABLE3_BUDGETS: Dict[str, int] = {"i": 6, "ii": 2, "iii": 3, "iv": 1}

#: Engines entering the headline comparison.  ``codeml`` is the paper's
#: comparator, ``slim`` the evaluated SlimCodeML prototype, ``slim-v2``
#: the paper's described-but-unevaluated follow-up (Eq. 12-13 + §III-B).
ENGINES = ("codeml", "slim", "slim-v2")

#: The fixed seed shared by every engine (paper §IV).
SEED = 1


_dataset_cache: Dict[str, Dataset] = {}


def get_dataset(name: str) -> Dataset:
    """Cached Table II dataset (generation is seeded, so cache is safe)."""
    if name not in _dataset_cache:
        _dataset_cache[name] = make_dataset(name)
    return _dataset_cache[name]


def get_sweep_dataset(n_species: int) -> Dataset:
    key = f"iv-{n_species}"
    if key not in _dataset_cache:
        _dataset_cache[key] = species_sweep_dataset(n_species)
    return _dataset_cache[key]


@dataclass
class RunRecord:
    """One engine × dataset × (H0+H1) run for the result tables."""

    dataset: str
    engine: str
    runtime_h0: float
    runtime_h1: float
    iterations_h0: int
    iterations_h1: int
    lnl_h0: float
    lnl_h1: float

    @property
    def runtime_combined(self) -> float:
        return self.runtime_h0 + self.runtime_h1

    @property
    def iterations_combined(self) -> int:
        return self.iterations_h0 + self.iterations_h1


@dataclass
class ResultsStore:
    """Session-wide registry the table benches fill and read."""

    table3: Dict[tuple, RunRecord] = field(default_factory=dict)
    convergence: Dict[tuple, RunRecord] = field(default_factory=dict)
    fig3: Dict[tuple, dict] = field(default_factory=dict)

    def add_table3(self, record: RunRecord) -> None:
        self.table3[(record.dataset, record.engine)] = record


def run_budgeted_test(
    dataset: Dataset, engine_name: str, max_iterations: int, seed: int = SEED
) -> BranchSiteTest:
    """One full H0+H1 branch-site analysis under an iteration budget.

    H0 and H1 are fitted as *independent* runs from their own seeded
    start values — exactly how the paper's Table III was produced (two
    CodeML invocations with ``fix_omega`` 1/0).  The production API's
    warm start + degenerate-H1 retry (``fit_branch_site_test``) is
    deliberately not used here: retries make the amount of optimizer
    work engine-dependent on knife-edge convergence, which would
    contaminate the fixed-budget comparison.
    """
    engine = make_engine(engine_name)
    h0 = fit_model(
        engine.bind(dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=True)),
        seed=seed,
        max_iterations=max_iterations,
    )
    h1 = fit_model(
        engine.bind(dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=False)),
        seed=seed,
        max_iterations=max_iterations,
    )
    return BranchSiteTest(h0=h0, h1=h1, lrt=likelihood_ratio_test(h0.lnl, h1.lnl))


def record_from_test(dataset: str, engine: str, test: BranchSiteTest) -> RunRecord:
    return RunRecord(
        dataset=dataset,
        engine=engine,
        runtime_h0=test.h0.runtime_seconds,
        runtime_h1=test.h1.runtime_seconds,
        iterations_h0=test.h0.n_iterations,
        iterations_h1=test.h1.n_iterations,
        lnl_h0=test.h0.lnl,
        lnl_h1=test.h1.lnl,
    )


# ----------------------------------------------------------------------
# §IV-2 speedup flavours (formulas unit-tested in repro.utils.speedups)
# ----------------------------------------------------------------------
from repro.utils.speedups import (  # noqa: E402
    overall_speedup as _so,
    per_iteration_speedup as _si,
)


def overall_speedup(reference: RunRecord, optimized: RunRecord, hypothesis: str) -> float:
    """``So = St1 / St2`` for one hypothesis ("h0" or "h1")."""
    return _so(
        getattr(reference, f"runtime_{hypothesis}"),
        getattr(optimized, f"runtime_{hypothesis}"),
    )


def per_iteration_speedup(reference: RunRecord, optimized: RunRecord, hypothesis: str) -> float:
    """``Si``: runtimes normalised by their iteration counts."""
    return _si(
        getattr(reference, f"runtime_{hypothesis}"),
        getattr(reference, f"iterations_{hypothesis}"),
        getattr(optimized, f"runtime_{hypothesis}"),
        getattr(optimized, f"iterations_{hypothesis}"),
    )


def combined_speedup(reference: RunRecord, optimized: RunRecord) -> float:
    """``Sc``: H0+H1 runtimes combined."""
    return _so(reference.runtime_combined, optimized.runtime_combined)


def per_iteration_combined_speedup(reference: RunRecord, optimized: RunRecord) -> float:
    return _si(
        reference.runtime_combined,
        reference.iterations_combined,
        optimized.runtime_combined,
        optimized.iterations_combined,
    )


# ----------------------------------------------------------------------
# Result table output
# ----------------------------------------------------------------------
def write_result(name: str, text: str) -> Path:
    """Write one experiment's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    path.write_text(f"# generated {stamp}\n{text}\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


def format_table(headers: List[str], rows: List[List[str]], title: str = "") -> str:
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(cell).rjust(widths[c]) for c, cell in enumerate(row))
    lines = ([title] if title else []) + [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)
