"""E-K1 — §II-C1 kernel claim: the 61×61 matrix exponential.

Benchmarks the three reconstruction paths for ``P(t) = e^{Qt}``:

* ``einsum``  — Eq. 9 with non-BLAS contraction (CodeML v4.4c comparator),
* ``gemm``    — Eq. 9 with ``dgemm`` (~2n³ flops, BLAS ablation),
* ``syrk``    — Eq. 10-11 with ``dsyrk`` (~n³ flops, SlimCodeML),

plus ``scipy.linalg.expm`` as the general-purpose reference, and checks
the analytic flop ratio (2n/(n+1) ≈ 1.97) that is the paper's headline
arithmetic claim.
"""

import numpy as np
import pytest

from harness import write_result, format_table  # noqa: F401 (thread pinning side effect)

from repro.codon.frequencies import codon_frequencies_equal
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.expm import (
    transition_matrix_einsum,
    transition_matrix_gemm,
    transition_matrix_scipy,
    transition_matrix_syrk,
)
from repro.core.flops import FlopCounter

T_BRANCH = 0.12


@pytest.fixture(scope="module")
def decomp():
    rng = np.random.default_rng(17)
    pi = rng.dirichlet(np.full(61, 5.0))
    return build_rate_matrix(2.2, 0.3, pi), decompose(build_rate_matrix(2.2, 0.3, pi))


def test_expm_einsum_codeml_comparator(benchmark, decomp):
    _, d = decomp
    p = benchmark(transition_matrix_einsum, d, T_BRANCH)
    assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)


def test_expm_gemm_eq9(benchmark, decomp):
    _, d = decomp
    p = benchmark(transition_matrix_gemm, d, T_BRANCH)
    assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)


def test_expm_syrk_eq10_slimcodeml(benchmark, decomp):
    _, d = decomp
    p = benchmark(transition_matrix_syrk, d, T_BRANCH)
    assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)


def test_expm_scipy_reference(benchmark, decomp):
    matrix, _ = decomp
    p = benchmark(transition_matrix_scipy, matrix.q, T_BRANCH)
    assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)


def test_flop_ratio_claim(benchmark, decomp):
    """The arithmetic claim itself: gemm/syrk flops = 2n/(n+1)."""
    _, d = decomp

    def measure():
        counter = FlopCounter()
        transition_matrix_gemm(d, T_BRANCH, counter=counter)
        transition_matrix_syrk(d, T_BRANCH, counter=counter)
        return counter

    counter = benchmark(measure)
    ratio = counter.by_operation["expm:dgemm"] / counter.by_operation["expm:dsyrk"]
    assert ratio == pytest.approx(2 * 61 / 62)
    write_result(
        "E-K1_expm_flops.txt",
        format_table(
            ["path", "flops"],
            [
                ["gemm (Eq. 9)", f"{counter.by_operation['expm:dgemm']:,}"],
                ["syrk (Eq. 10)", f"{counter.by_operation['expm:dsyrk']:,}"],
                ["ratio", f"{ratio:.4f} (paper claims ~2x)"],
            ],
            title="E-K1: matrix exponential flop accounting, n = 61",
        ),
    )
