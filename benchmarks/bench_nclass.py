"""E-NC — N-class site-class graph: operator dedupe as classes grow.

Two claims of the site-class-graph refactor, measured on one dataset:

* **Bit-identity**: the 4-class branch-site model A expressed as
  ``bsrel:2`` through the generic graph path yields *exactly* the
  model-A log-likelihood (float equality) — checked at fixed values and
  after a budgeted fit; any mismatch aborts the run.
* **Operator dedupe**: of the transition operators a per-class-naive
  evaluator would build (each class building every (ω, t) operator its
  own pruning pass touches), the graph-edge ledger actually builds a
  fraction — selected classes alias their base class's background
  decompositions, so the saved fraction ``1 − builds/naive`` grows with
  the class count and must stay ≥ the acceptance bar (30 %).

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_nclass.py --quick --assert-dedupe 0.3
"""

from __future__ import annotations

import argparse
import sys
import time

from harness import SEED, format_table, get_dataset, write_result

from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.models.bsrel import BSRELModel
from repro.optimize.ml import fit_model


def check_model_a_identity(dataset, engine_name: str, budget: int) -> None:
    """Abort unless bsrel:2 ≡ model A, at fixed values and after a fit."""
    values_a = {"kappa": 2.2, "omega0": 0.25, "omega2": 3.0, "p0": 0.5, "p1": 0.3}
    values_b = {"kappa": 2.2, "omega1": 0.25, "omega_fg": 3.0, "p1": 0.5, "p2": 0.3}
    for batched in (False, True):
        bound_a = make_engine(engine_name).bind(
            dataset.tree, dataset.alignment, BranchSiteModelA(), batched=batched
        )
        bound_b = make_engine(engine_name).bind(
            dataset.tree, dataset.alignment, BSRELModel(2), batched=batched
        )
        lnl_a = bound_a.log_likelihood(values_a)
        lnl_b = bound_b.log_likelihood(values_b)
        if lnl_a != lnl_b:
            raise SystemExit(
                f"FATAL: bsrel:2 is not bit-identical to model A "
                f"(batched={batched}): {lnl_a!r} vs {lnl_b!r}"
            )
    fit_a = fit_model(
        make_engine(engine_name).bind(dataset.tree, dataset.alignment, BranchSiteModelA()),
        seed=SEED, max_iterations=budget, start_values=values_a,
    )
    fit_b = fit_model(
        make_engine(engine_name).bind(dataset.tree, dataset.alignment, BSRELModel(2)),
        seed=SEED, max_iterations=budget, start_values=values_b,
    )
    if fit_a.lnl != fit_b.lnl:
        raise SystemExit(
            f"FATAL: fitted bsrel:2 diverged from fitted model A: "
            f"{fit_a.lnl!r} vs {fit_b.lnl!r}"
        )


def run_nclass(dataset, engine_name: str, k: int, budget: int):
    """Budgeted H1 fit of the 2K-class BS-REL model, batched path.

    Returns ``(n_classes, builds, naive, dedupe_fraction, lnl, wall)``
    with the dedupe fraction measured against the per-class-independent
    baseline counter the engine maintains alongside its real ledger.
    """
    engine = make_engine(engine_name)
    model = BSRELModel(k)
    wall = time.perf_counter()
    fit = fit_model(
        engine.bind(dataset.tree, dataset.alignment, model, batched=True),
        seed=SEED,
        max_iterations=budget,
    )
    wall = time.perf_counter() - wall
    stats = engine.cache_stats()
    builds = stats["operator_builds"]
    naive = stats["operator_builds_naive"]
    dedupe = 1.0 - builds / naive if naive else 0.0
    return 2 * k, builds, naive, dedupe, fit.lnl, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: K in {2, 3}, iteration budget 2",
    )
    parser.add_argument(
        "--dataset", default="iii", choices=["i", "ii", "iii", "iv"],
        help="Table II dataset (default iii: 25 species, the branch-rich case)",
    )
    parser.add_argument(
        "--engine", default="slim-v2", choices=["codeml", "slim", "slim-v2"],
        help="engine carrying the batched operator ledger (default slim-v2)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="optimizer iteration budget (default 3; 2 in --quick)",
    )
    parser.add_argument(
        "--classes", type=int, nargs="*", default=None, metavar="K",
        help="base-class counts to sweep (default 2 3 4; 2 3 in --quick)",
    )
    parser.add_argument(
        "--assert-dedupe", type=float, default=None, metavar="FRACTION",
        help="exit non-zero unless every K's operator-dedupe fraction "
             "is at least FRACTION (acceptance bar: 0.3)",
    )
    args = parser.parse_args(argv)

    budget = args.iterations if args.iterations is not None else (2 if args.quick else 3)
    ks = args.classes if args.classes else ([2, 3] if args.quick else [2, 3, 4])
    dataset = get_dataset(args.dataset)

    check_model_a_identity(dataset, args.engine, budget)
    print("model-A bit-identity through the graph path: OK", file=sys.stderr)

    rows = []
    worst = float("inf")
    for k in ks:
        n_classes, builds, naive, dedupe, lnl, wall = run_nclass(
            dataset, args.engine, k, budget
        )
        worst = min(worst, dedupe)
        rows.append([
            f"bsrel:{k}",
            str(n_classes),
            str(builds),
            str(naive),
            f"{100.0 * dedupe:.1f}%",
            f"{lnl:.4f}",
            f"{wall:.2f}",
        ])

    table = format_table(
        [
            "model", "classes", "operator builds", "naive builds",
            "dedupe", "lnL (H1)", "wall (s)",
        ],
        rows,
        title=(
            f"E-NC N-class operator dedupe — dataset {args.dataset} "
            f"({dataset.tree.n_leaves} species, {dataset.alignment.n_codons} codons), "
            f"engine {args.engine}, budget {budget} iterations, seed {SEED}"
        ),
    )
    if args.quick:
        print(table)
    else:
        write_result("E-NC_nclass.txt", table)

    if args.assert_dedupe is not None and worst < args.assert_dedupe:
        print(
            f"FAIL: operator-dedupe fraction {worst:.3f} is below the "
            f"required {args.assert_dedupe:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
