"""Ablation — fault-tolerance overhead of the batch-scan layer.

Not a paper experiment: the fault layer (per-task capture, retry
bookkeeping, JSONL journalling with per-record fsync) exists so that a
genome-scale scan survives bad genes (the gcodeml operational lesson).
This bench quantifies what that safety costs *per task* on the happy
path.  Real branch-site fits run for seconds, so the overhead is
measured with cheap synthetic tasks where it is actually visible —
against that, a journalled fsync per result is the dominant term, and
even it is orders of magnitude below one likelihood evaluation.
"""

import time

from harness import format_table, write_result

from repro.io.results_io import ResultJournal
from repro.parallel.batch import GeneResult
from repro.parallel.faults import run_tasks

N_TASKS = 500


def _identity(payload):
    return payload


def _synthetic_result(k):
    return GeneResult(
        gene_id=f"g{k:04d}", lnl0=-1234.5, lnl1=-1230.1, statistic=8.8,
        pvalue=0.003, iterations=25, runtime_seconds=0.5, n_evaluations=400,
    )


def test_inprocess_dispatch_overhead(benchmark):
    """run_tasks bookkeeping (outcome records, timers) vs. a bare loop."""
    payloads = list(range(N_TASKS))

    def dispatch():
        return run_tasks(_identity, payloads, in_process=True)

    outcomes = benchmark.pedantic(dispatch, rounds=5, iterations=1)
    assert all(o.ok for o in outcomes)
    benchmark.extra_info["n_tasks"] = N_TASKS


def test_journal_append_throughput(benchmark, tmp_path):
    """Durable (fsync-per-record) journal appends."""
    results = [_synthetic_result(k) for k in range(N_TASKS)]
    counter = [0]

    def append_all():
        counter[0] += 1
        path = tmp_path / f"bench_{counter[0]}.jsonl"
        with ResultJournal(str(path)) as journal:
            for result in results:
                journal.append(result)

    benchmark.pedantic(append_all, rounds=3, iterations=1)
    benchmark.extra_info["n_records"] = N_TASKS


def test_scan_overhead_summary(benchmark, tmp_path):
    def measure():
        timings = {}
        payloads = list(range(N_TASKS))

        t0 = time.perf_counter()
        for payload in payloads:
            _identity(payload)
        timings["bare loop"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_tasks(_identity, payloads, in_process=True)
        timings["fault layer (in-process)"] = time.perf_counter() - t0

        results = [_synthetic_result(k) for k in range(N_TASKS)]
        t0 = time.perf_counter()
        with ResultJournal(str(tmp_path / "bench.jsonl")) as journal:
            for result in results:
                journal.append(result)
        timings["journal append (fsync/record)"] = time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, f"{seconds:.4f}", f"{seconds / N_TASKS * 1e6:.1f}"]
        for name, seconds in timings.items()
    ]
    text = format_table(
        ["configuration", f"{N_TASKS} tasks (s)", "per task (us)"],
        rows,
        title="Ablation: fault-layer + journal overhead per task (synthetic tasks)",
    )
    write_result("ABL_scan_overhead.txt", text)
