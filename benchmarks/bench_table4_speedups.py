"""E-T4 — Table IV: overall, per-iteration, and combined speedups.

Derived from the E-T3 runs (same session) exactly as §IV-2 defines:

* ``So = St1/St2`` per hypothesis (overall),
* ``Si`` — runtimes normalised by iteration counts (per-iteration),
* ``Sc`` — H0+H1 combined,

for SlimCodeML (``slim``) and the extension engine (``slim-v2``), each
against the CodeML comparator.  The convergence runs from E-ACC/2
additionally provide an overall-vs-per-iteration data point where the
iteration counts are free to differ, as in the paper.
"""

import pytest

from harness import (
    combined_speedup,
    format_table,
    overall_speedup,
    per_iteration_combined_speedup,
    per_iteration_speedup,
    write_result,
)

DATASETS = ("i", "ii", "iii", "iv")


def _speedup_rows(results_store, optimized_engine):
    rows = []
    for flavor, fn in [
        ("Overall speedup H0", lambda r, o: overall_speedup(r, o, "h0")),
        ("Overall speedup H1", lambda r, o: overall_speedup(r, o, "h1")),
        ("Combined speedup H0+H1", combined_speedup),
        ("Per-iteration speedup H0", lambda r, o: per_iteration_speedup(r, o, "h0")),
        ("Per-iteration speedup H1", lambda r, o: per_iteration_speedup(r, o, "h1")),
        ("Per-iteration speedup H0+H1", per_iteration_combined_speedup),
    ]:
        row = [flavor]
        for dataset in DATASETS:
            ref = results_store.table3.get((dataset, "codeml"))
            opt = results_store.table3.get((dataset, optimized_engine))
            row.append(f"{fn(ref, opt):.1f}" if ref and opt else "-")
        rows.append(row)
    return rows


@pytest.mark.parametrize("optimized", ["slim", "slim-v2"])
def test_table4_speedups(benchmark, results_store, optimized):
    if not results_store.table3:
        pytest.skip("requires the E-T3 runs from bench_table3_runtimes.py")

    rows = benchmark.pedantic(
        _speedup_rows, args=(results_store, optimized), rounds=1, iterations=1
    )
    # The headline claim asserted hard: SlimCodeML wins on every dataset
    # on the *combined* H0+H1 runtime.  Per-hypothesis splits are
    # reported but not asserted — a budgeted fit can stop early on one
    # hypothesis for one engine (ftol knife edges), the same
    # iteration-count sensitivity the paper itself describes in §IV.
    for row in rows:
        if row[0] == "Combined speedup H0+H1":
            for cell in row[1:]:
                if cell != "-":
                    assert float(cell) > 1.0, f"{optimized} slower than codeml: {row}"
    text = format_table(
        ["speedup flavour"] + [f"dataset {d}" for d in DATASETS],
        rows,
        title=f"E-T4: Table IV analog — {optimized} vs codeml (paper: 1.6-9.4)",
    )
    write_result(f"E-T4_speedups_{optimized}.txt", text)


def test_overall_vs_per_iteration_from_convergence(benchmark, results_store):
    """Where iteration counts differ (converged fits), So != Si (paper §IV-2)."""
    ref = results_store.convergence.get(("i", "codeml"))
    opt = results_store.convergence.get(("i", "slim"))
    if ref is None or opt is None:
        pytest.skip("requires the E-ACC/2 convergence runs from bench_accuracy.py")

    def build():
        return [
            ["Overall H0", f"{overall_speedup(ref, opt, 'h0'):.2f}"],
            ["Overall H1", f"{overall_speedup(ref, opt, 'h1'):.2f}"],
            ["Per-iteration H0", f"{per_iteration_speedup(ref, opt, 'h0'):.2f}"],
            ["Per-iteration H1", f"{per_iteration_speedup(ref, opt, 'h1'):.2f}"],
            ["Iterations codeml (H0+H1)", str(ref.iterations_combined)],
            ["Iterations slim (H0+H1)", str(opt.iterations_combined)],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["quantity", "value"],
        rows,
        title="E-T4/conv: overall vs per-iteration speedups on converged dataset-i fits",
    )
    write_result("E-T4_convergence_speedups.txt", text)
