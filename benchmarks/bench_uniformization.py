"""E-UNI — uniformized kernel (rung 4): accuracy vs rung, cost, mapping overhead.

Three claims of the expm-free transition kernel, measured on the 61-state
codon chain:

* **Accuracy**: across the acceptance grid ω ∈ {1e-4, 1, 50, 500} ×
  t ∈ {1e-8, 1, 10, 100}, the uniformized ``P(t)`` stays within the
  acceptance bar of the ``scipy.linalg.expm`` reference (and the table
  records the spectral rung's deviation next to it, plus the series
  terms and squarings the Poisson truncation chose).
* **Cost**: per-call wall time for the spectral ``dsyrk`` path, scipy's
  Padé, and the uniformized series — rung 4 is the slowest rung and the
  table quantifies by how much, which is why it sits last on the ladder.
* **Mapping overhead**: a 16-draw stochastic substitution mapping
  (``scan --map``) costs a bounded multiple of one plain likelihood
  evaluation on the same bound problem.

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_uniformization.py --quick --assert-accuracy 1e-10
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from harness import format_table, write_result

from repro.alignment.simulate import simulate_alignment
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.engine import make_engine
from repro.core.expm import transition_matrix_scipy, transition_matrix_syrk
from repro.core.uniformization import UniformizedOperator
from repro.likelihood.mapping import sample_substitution_mapping
from repro.models.m0 import M0Model
from repro.trees.newick import parse_newick

OMEGAS = (1e-4, 1.0, 50.0, 500.0)
TIMES = (1e-8, 1.0, 10.0, 100.0)
M0_VALUES = {"kappa": 2.0, "omega": 0.5}


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def accuracy_grid():
    """Per-cell deviation of the evr and uniformization rungs vs expm."""
    rng = np.random.default_rng(17)
    pi = rng.dirichlet(np.full(61, 5.0))
    rows, worst = [], 0.0
    for omega in OMEGAS:
        matrix = build_rate_matrix(2.2, omega, pi)
        decomp = decompose(matrix)
        uni = UniformizedOperator(matrix.q, pi)
        for t in TIMES:
            reference = transition_matrix_scipy(matrix.q, t)
            dev_evr = float(np.abs(transition_matrix_syrk(decomp, t) - reference).max())
            dev_uni = float(np.abs(uni.transition_matrix(t) - reference).max())
            terms, squarings = uni.terms_for(t)
            rows.append(
                [f"{omega:g}", f"{t:g}", f"{dev_evr:.2e}", f"{dev_uni:.2e}",
                 str(terms), str(squarings)]
            )
            worst = max(worst, dev_uni)
    return rows, worst


def kernel_timings(repeats: int):
    """Median per-call cost of each rung's P(t) at a routine branch length."""
    rng = np.random.default_rng(17)
    pi = rng.dirichlet(np.full(61, 5.0))
    matrix = build_rate_matrix(2.2, 0.3, pi)
    decomp = decompose(matrix)
    uni = UniformizedOperator(matrix.q, pi)
    t = 0.12
    uni.transition_matrix(t)  # warm the power cache once, like the engine does
    rows = []
    for label, fn in (
        ("evr (dsyrk, Eq. 10)", lambda: transition_matrix_syrk(decomp, t)),
        ("pade (scipy expm)", lambda: transition_matrix_scipy(matrix.q, t)),
        ("uniformization (rung 4)", lambda: uni.transition_matrix(t)),
    ):
        rows.append([label, f"{_median_seconds(fn, repeats) * 1e3:.3f} ms"])
    return rows


def mapping_overhead(n_samples: int, repeats: int):
    """Wall-clock of scan --map sampling relative to one lnL evaluation."""
    tree = parse_newick("((A:0.05,B:0.05):0.05,(C:0.05,D:0.05):0.05,E:0.08);")
    sim = simulate_alignment(tree, M0Model(), M0_VALUES, 60, seed=17)
    bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
    bound.log_likelihood(M0_VALUES)  # warm decomposition + operator caches
    lnl_s = _median_seconds(lambda: bound.log_likelihood(M0_VALUES), repeats)
    map_s = _median_seconds(
        lambda: sample_substitution_mapping(bound, M0_VALUES, n_samples=n_samples, seed=1),
        repeats,
    )
    return lnl_s, map_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fewer timing repeats, skip nothing that gates",
    )
    parser.add_argument(
        "--assert-accuracy", type=float, default=None, metavar="TOL",
        help="fail unless every grid cell's uniformized P(t) is within TOL of expm",
    )
    parser.add_argument(
        "--map-samples", type=int, default=16,
        help="stochastic-mapping draws for the overhead measurement (default 16)",
    )
    args = parser.parse_args(argv)
    repeats = 5 if args.quick else 25

    grid_rows, worst = accuracy_grid()
    grid_table = format_table(
        ["omega", "t", "dev evr", "dev uniformization", "terms", "squarings"],
        grid_rows,
        title="E-UNI: |P(t) - expm| per rung on the acceptance grid, n = 61",
    )

    timing_rows = kernel_timings(repeats)
    timing_table = format_table(
        ["kernel", "median/call"],
        timing_rows,
        title=f"E-UNI: per-call P(t) cost at t = 0.12 ({repeats} repeats)",
    )

    lnl_s, map_s = mapping_overhead(args.map_samples, repeats)
    overhead_table = format_table(
        ["workload", "median", "x lnL"],
        [
            ["one lnL evaluation (M0, 5 taxa, 60 codons)", f"{lnl_s * 1e3:.2f} ms", "1.0"],
            [f"mapping, {args.map_samples} draws", f"{map_s * 1e3:.2f} ms",
             f"{map_s / lnl_s:.1f}"],
        ],
        title="E-UNI: scan --map overhead vs a plain likelihood evaluation",
    )

    write_result(
        "E-UNI_uniformization.txt",
        "\n\n".join([grid_table, timing_table, overhead_table]),
    )

    if args.assert_accuracy is not None and worst > args.assert_accuracy:
        print(
            f"FATAL: worst uniformized deviation {worst:.3e} exceeds the "
            f"acceptance bar {args.assert_accuracy:.1e}",
            file=sys.stderr,
        )
        return 1
    print(f"worst uniformized deviation across the grid: {worst:.3e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
