"""E-MAPB — batched stochastic mapping: serial-vs-batched wall clock, same bits.

Two claims of the vectorised endpoint-conditioned sampler
(``likelihood/mapping.py``), measured on Table II's dataset iii
(25 taxa, 67 codons) with a marked internal branch:

* **Bit-identity**: the batched sampler is a reordering of the serial
  reference — both consume the canonical uniform stream in the same
  order, so their expected syn/nonsyn counts (and sample variances)
  must be *exactly* equal, not merely close.  The bench aborts on any
  bit difference; there is no tolerance knob.
* **Speedup**: array-wide categorical draws, shared ``R``-power stacks
  and the ω-merged jump/intermediate stages put the 16-draw mapping at
  BLAS speed.  ``--assert-speedup`` gates CI on the floor (3× quick;
  the PR's acceptance bar is 5× measured in full mode).

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_mapping.py --quick --assert-speedup 3.0
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from harness import format_table, get_dataset, write_result

from repro.core.engine import make_engine
from repro.likelihood.mapping import sample_substitution_mapping
from repro.models.branch_site import BranchSiteModelA

BSA_VALUES = {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}


def _bound_problem(engine_name: str = "slim-v2"):
    """Dataset iii with one internal foreground branch, bound once."""
    dataset = get_dataset("iii")
    tree = dataset.tree.copy()
    internal = next(n for n in tree.nodes if not n.is_root and not n.is_leaf)
    tree.mark_foreground(internal)
    bound = make_engine(engine_name).bind(tree, dataset.alignment, BranchSiteModelA())
    bound.log_likelihood(BSA_VALUES)  # warm decompositions, like a real scan
    return bound


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_methods(bound, n_samples: int, repeats: int):
    """Time both samplers and verify exact equality of their outputs."""
    serial = sample_substitution_mapping(
        bound, BSA_VALUES, n_samples=n_samples, seed=1, method="serial"
    )
    batched = sample_substitution_mapping(
        bound, BSA_VALUES, n_samples=n_samples, seed=1, method="batched"
    )
    identical = (
        np.array_equal(serial.syn, batched.syn)
        and np.array_equal(serial.nonsyn, batched.nonsyn)
        and np.array_equal(serial.syn_var, batched.syn_var)
        and np.array_equal(serial.nonsyn_var, batched.nonsyn_var)
    )
    serial_s = _best_of(
        lambda: sample_substitution_mapping(
            bound, BSA_VALUES, n_samples=n_samples, seed=1, method="serial"
        ),
        repeats,
    )
    batched_s = _best_of(
        lambda: sample_substitution_mapping(
            bound, BSA_VALUES, n_samples=n_samples, seed=1, method="batched"
        ),
        repeats,
    )
    return serial_s, batched_s, identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: 16 draws only, fewer timing repeats",
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None, metavar="X",
        help="fail unless batched beats serial by at least X at 16 draws",
    )
    args = parser.parse_args(argv)
    repeats = 3 if args.quick else 7
    draw_grid = (16,) if args.quick else (4, 16, 64)

    bound = _bound_problem()
    rows, gate_speedup, all_identical = [], None, True
    for n_samples in draw_grid:
        serial_s, batched_s, identical = compare_methods(bound, n_samples, repeats)
        speedup = serial_s / batched_s
        all_identical = all_identical and identical
        if n_samples == 16:
            gate_speedup = speedup
        rows.append(
            [str(n_samples), f"{serial_s * 1e3:.1f} ms", f"{batched_s * 1e3:.1f} ms",
             f"{speedup:.2f}x", "yes" if identical else "NO"]
        )

    table = format_table(
        ["draws", "serial", "batched", "speedup", "bit-identical"],
        rows,
        title=(
            "E-MAPB: endpoint-conditioned mapping on dataset iii "
            f"(25 taxa, 67 codons, slim-v2, best of {repeats})"
        ),
    )
    write_result("E-MAPB_mapping.txt", table)

    if not all_identical:
        print(
            "FATAL: batched sampler diverged bitwise from the serial reference",
            file=sys.stderr,
        )
        return 1
    if args.assert_speedup is not None and gate_speedup < args.assert_speedup:
        print(
            f"FATAL: 16-draw speedup {gate_speedup:.2f}x below the "
            f"acceptance bar {args.assert_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"16-draw batched-vs-serial speedup: {gate_speedup:.2f}x (bit-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
