"""Ablation — cross-evaluation transition-matrix caching.

Not a paper experiment: CodeML v4.4c recomputes ``P(t)`` every
evaluation, and the engines default to the same behaviour so the
Table III/IV comparisons stay in the paper's cost regime.  This bench
quantifies what the (deliberately disabled) cache would buy during
finite-difference gradients, where most branch lengths are unchanged
between consecutive evaluations.
"""

import time

import pytest

from harness import format_table, get_dataset, write_result

from repro.core.engine import SlimEngine
from repro.models.branch_site import BranchSiteModelA


@pytest.mark.parametrize("cached", [False, True], ids=["cache-off", "cache-on"])
def test_gradient_like_evaluation_pattern(benchmark, cached):
    """Perturb one branch length at a time, as a numeric gradient does."""
    dataset = get_dataset("iii")
    engine = SlimEngine(cache_transition_matrices=cached)
    bound = engine.bind(dataset.tree, dataset.alignment, BranchSiteModelA())
    values = dataset.true_values
    base = bound.branch_lengths.copy()

    def gradient_sweep():
        bound.log_likelihood(values, base)
        for k in range(min(10, base.shape[0])):
            probe = base.copy()
            probe[k] += 1e-6
            bound.log_likelihood(values, probe)

    bound.log_likelihood(values)  # warm decompositions
    benchmark.pedantic(gradient_sweep, rounds=3, iterations=1)
    benchmark.extra_info["cache_transition_matrices"] = cached


def test_caching_summary(benchmark):
    dataset = get_dataset("iii")
    values = dataset.true_values

    def measure():
        timings = {}
        for cached in (False, True):
            engine = SlimEngine(cache_transition_matrices=cached)
            bound = engine.bind(dataset.tree, dataset.alignment, BranchSiteModelA())
            base = bound.branch_lengths.copy()
            bound.log_likelihood(values)
            t0 = time.perf_counter()
            for k in range(10):
                probe = base.copy()
                probe[k % base.shape[0]] += 1e-6
                bound.log_likelihood(values, probe)
            timings[cached] = time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "10 gradient probes (s)", "gain"],
        [
            ["cache off (CodeML-faithful, default)", f"{timings[False]:.3f}", "1.00"],
            ["cache on (extension)", f"{timings[True]:.3f}", f"{timings[False] / timings[True]:.2f}"],
        ],
        title="Ablation: cross-evaluation P(t) caching during gradient probes (dataset iii)",
    )
    write_result("ABL_transition_cache.txt", text)
