"""E-ACC — §IV-1 accuracy: relative differences D between engines.

Two levels, mirroring the paper:

1. *Single-evaluation* D at fixed parameters on all four datasets —
   pure kernel agreement (expected ≲ 1e-12).
2. *Converged-fit* D on dataset i: both engines run the full H0+H1
   optimisation from the same seed; D compares the maximised lnL values
   (the paper reports 0 … 5.5e-8 across datasets).  The convergence runs
   are stored for the Table IV overall-vs-per-iteration analysis.
"""

import pytest

from harness import (
    SEED,
    format_table,
    get_dataset,
    record_from_test,
    run_budgeted_test,
    write_result,
)

from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.utils.numerics import relative_difference


def test_single_evaluation_accuracy(benchmark):
    model = BranchSiteModelA()

    def measure():
        rows = []
        for name in ("i", "ii", "iii", "iv"):
            ds = get_dataset(name)
            values = ds.true_values
            lnls = {}
            for engine_name in ("codeml", "slim", "slim-v2"):
                bound = make_engine(engine_name).bind(ds.tree, ds.alignment, model)
                lnls[engine_name] = bound.log_likelihood(values)
            rows.append(
                [
                    name,
                    f"{lnls['codeml']:.6f}",
                    f"{relative_difference(lnls['codeml'], lnls['slim']):.2e}",
                    f"{relative_difference(lnls['codeml'], lnls['slim-v2']):.2e}",
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for row in rows:
        assert float(row[2]) < 1e-10, f"dataset {row[0]}: D(slim) too large"
        assert float(row[3]) < 1e-10, f"dataset {row[0]}: D(slim-v2) too large"
    text = format_table(
        ["dataset", "lnL (codeml)", "D slim", "D slim-v2"],
        rows,
        title="E-ACC/1: single-evaluation relative difference D = |lnL-lnL'|/|lnL|",
    )
    write_result("E-ACC_single_eval.txt", text)


def test_converged_fit_accuracy_dataset_i(benchmark, results_store):
    def run():
        records = {}
        tests = {}
        for engine_name in ("codeml", "slim"):
            test = run_budgeted_test(get_dataset("i"), engine_name, max_iterations=150, seed=SEED)
            records[engine_name] = record_from_test("i", engine_name, test)
            tests[engine_name] = test
        return records, tests

    records, tests = benchmark.pedantic(run, rounds=1, iterations=1)
    for engine_name, record in records.items():
        results_store.convergence[("i", engine_name)] = record

    d_h0 = relative_difference(records["codeml"].lnl_h0, records["slim"].lnl_h0)
    d_h1 = relative_difference(records["codeml"].lnl_h1, records["slim"].lnl_h1)
    # The paper reports D up to 5.5e-8 on converged fits; identical
    # optimizer/seed keeps ours in the same regime.
    assert d_h0 < 1e-6 and d_h1 < 1e-6

    rows = [
        [
            engine,
            f"{rec.lnl_h0:.6f}",
            f"{rec.lnl_h1:.6f}",
            rec.iterations_h0,
            rec.iterations_h1,
            f"{rec.runtime_combined:.2f}",
        ]
        for engine, rec in records.items()
    ]
    rows.append(["D (vs codeml)", f"{d_h0:.2e}", f"{d_h1:.2e}", "", "", ""])
    text = format_table(
        ["engine", "lnL H0", "lnL H1", "iters H0", "iters H1", "runtime H0+H1 (s)"],
        rows,
        title="E-ACC/2: converged H0+H1 fits on dataset i (same seed, both engines)",
    )
    write_result("E-ACC_converged_fit.txt", text)
