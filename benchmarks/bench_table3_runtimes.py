"""E-T3 — Table III: runtimes and iterations, datasets i-iv, H0+H1.

Each (dataset, engine) cell is one full branch-site analysis — H0 fit,
H1 fit (warm-started, CodeML style), LRT — under a fixed optimizer
iteration budget (harness.TABLE3_BUDGETS).  Fixed budgets keep the suite
tractable and make per-iteration comparisons exact; the convergence
behaviour is covered by E-ACC/2.  All engines share the seed, so they
start from identical parameter values (paper §IV).
"""

import numpy as np
import pytest

from harness import (
    ENGINES,
    TABLE3_BUDGETS,
    format_table,
    get_dataset,
    record_from_test,
    run_budgeted_test,
    write_result,
)

DATASETS = ("i", "ii", "iii", "iv")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dataset", DATASETS)
def test_full_analysis(benchmark, results_store, dataset, engine):
    budget = TABLE3_BUDGETS[dataset]
    ds = get_dataset(dataset)

    test = benchmark.pedantic(
        run_budgeted_test, args=(ds, engine, budget), rounds=1, iterations=1
    )
    record = record_from_test(dataset, engine, test)
    results_store.add_table3(record)

    assert np.isfinite(record.lnl_h0) and np.isfinite(record.lnl_h1)
    # Note: H0/H1 are *independent budgeted* runs (see harness); the
    # nesting inequality only holds for converged fits (checked by the
    # E-ACC/2 convergence run), not after 1-6 iterations.
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "engine": engine,
            "iterations_h0": record.iterations_h0,
            "iterations_h1": record.iterations_h1,
            "lnl_h1": round(record.lnl_h1, 6),
        }
    )


def test_table3_summary(benchmark, results_store):
    """Assemble the Table III analog from the runs above."""

    def build():
        rows = []
        for dataset in DATASETS:
            for engine in ENGINES:
                rec = results_store.table3.get((dataset, engine))
                if rec is None:
                    continue
                rows.append(
                    [
                        dataset,
                        engine,
                        f"{rec.runtime_combined:.2f}",
                        rec.iterations_combined,
                        f"{rec.lnl_h0:.4f}",
                        f"{rec.lnl_h1:.4f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    if not rows:
        pytest.skip("table3 runs unavailable (ran standalone?)")
    text = format_table(
        ["dataset", "engine", "runtime H0+H1 (s)", "iterations H0+H1", "lnL H0", "lnL H1"],
        rows,
        title=(
            "E-T3: Table III analog — runtimes and iterations per dataset/engine\n"
            f"(fixed iteration budgets per hypothesis: {TABLE3_BUDGETS})"
        ),
    )
    write_result("E-T3_runtimes.txt", text)
