"""E-WIRE — zero-copy data plane: binary frames + one-shot broadcast.

Quantifies what PR 6's wire rework buys over the retired
length-prefixed-pickle plane on a real branch scan:

* **wire bytes/task** — the old plane shipped one pickled dict per task
  (message type, tag, the pickled callable blob, and a self-contained
  payload embedding the marked Newick and the full alignment).  The new
  plane broadcasts batch state once (codon patterns, frequencies, the
  base tree, the callable) and dispatches index-sized task frames; the
  comparison amortises the broadcast across the batch, so it is an
  honest total-bytes-moved-per-task number, not a best case;
* **worker cold start** — per-task payload decode + alignment
  materialisation under each plane, plus the worker-measured
  ``setup_seconds`` actually observed during the scan;
* **numeric identity** — the socket scan's per-branch results must be
  exactly equal (float equality, not tolerance) to the process-pool
  scan of the same seed, or the run aborts.

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_wire.py --quick --assert-reduction 5.0

Full mode reproduces the committed ``E-WIRE_zero_copy.txt`` on dataset
iii (25 species — the branch-rich Table II case).
"""

from __future__ import annotations

import argparse
import multiprocessing
import pickle
import sys
import time

from harness import SEED, format_table, get_dataset, write_result

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import compress_patterns
from repro.codon.frequencies import estimate_codon_frequencies
from repro.parallel.batch import (
    GeneJob,
    _build_shared_context,
    _materialize_patterns,
    _run_gene,
    _run_gene_shared,
    branch_label,
    scan_branches,
)
from repro.parallel.executors import ProcessPoolBackend, SocketExecutor, wire
from repro.trees.newick import parse_newick

GENE_ID = "wirebench"

# Spawned, not forked: the bench process runs pool executors too, and
# forking a threaded parent can wedge the child (same rationale as the
# executor test suite).
_MP = multiprocessing.get_context("spawn")


def _worker_entry(host: str, port: int, name: str) -> None:
    from repro.parallel.executors.worker import run_worker

    run_worker(host, port, name=name)


def _spawn_fleet(executor: SocketExecutor, n_workers: int):
    host, port = executor.address
    procs = [
        _MP.Process(target=_worker_entry, args=(host, port, f"bw{k}"), daemon=True)
        for k in range(n_workers)
    ]
    for proc in procs:
        proc.start()
    deadline = time.monotonic() + 60.0
    while executor.n_workers() < n_workers and time.monotonic() < deadline:
        time.sleep(0.05)
    if executor.n_workers() < n_workers:
        raise RuntimeError("socket workers failed to register within 60s")
    return procs


def _reap(procs) -> None:
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)


def _candidates(dataset, internal_only: bool):
    return [
        n for n in dataset.tree.nodes
        if not n.is_root and (not internal_only or not n.is_leaf)
    ]


def _legacy_task_bytes(dataset, candidates, budget: int, seed: int):
    """Per-task frame sizes the retired pickle plane would ship.

    Reconstructed from the old protocol exactly: a 4-byte length prefix
    plus ``pickle.dumps({"type": "task", "tag": ..., "fn": <pickled
    callable>, "payload": (job, engine, seed, budget)})`` where the job
    embeds a pre-marked Newick and the full codon sequences — the fn
    blob rode along on *every* dispatch.
    """
    fn_blob = pickle.dumps(_run_gene, protocol=pickle.HIGHEST_PROTOCOL)
    sizes = []
    for k, node in enumerate(candidates):
        marked = dataset.tree.copy()
        marked.mark_foreground(marked.nodes[node.index])
        job = GeneJob.from_objects(
            f"{GENE_ID}:{branch_label(dataset.tree, node.index)}",
            marked, dataset.alignment,
        )
        message = {
            "type": "task", "tag": k, "fn": fn_blob,
            "payload": (job, "slim", seed + k, budget),
        }
        sizes.append(
            4 + len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))
        )
    return sizes


def _scan_fingerprint(scan):
    return sorted(
        (r.gene_id, r.lnl0, r.lnl1, r.statistic, r.pvalue,
         r.iterations, r.n_evaluations)
        for r in scan.gene_results
    )


def _run_socket_scan(dataset, budget, internal_only, n_workers, seed):
    executor = SocketExecutor(port=0, min_workers=n_workers, worker_wait=60.0)
    procs = _spawn_fleet(executor, n_workers)
    try:
        t0 = time.perf_counter()
        scan = scan_branches(
            GENE_ID, dataset.tree, dataset.alignment, engine="slim",
            internal_only=internal_only, seed=seed, max_iterations=budget,
            executor=executor,
        )
        wall = time.perf_counter() - t0
        stats = executor.wire_stats()
    finally:
        executor.shutdown()
        _reap(procs)
    return scan, stats, wall


def _run_pool_scan(dataset, budget, internal_only, n_workers, seed):
    executor = ProcessPoolBackend(max_workers=n_workers)
    try:
        t0 = time.perf_counter()
        scan = scan_branches(
            GENE_ID, dataset.tree, dataset.alignment, engine="slim",
            internal_only=internal_only, seed=seed, max_iterations=budget,
            executor=executor,
        )
        wall = time.perf_counter() - t0
        context_bytes = executor.context_nbytes()
    finally:
        executor.shutdown()
    return scan, context_bytes, wall


def _cold_start_bench(dataset, candidates, budget, seed, reps=5):
    """Worker-side setup cost per plane, in seconds.

    ``legacy`` is what every task paid on the old plane: unpickle the
    dispatch, parse the marked Newick, rebuild the alignment, estimate
    codon frequencies, compress patterns.  ``broadcast_decode`` is the
    new plane's once-per-worker frame decode; ``first_touch`` the
    once-per-alignment pattern materialisation; ``warm`` the steady
    state (tree parse only — patterns come from the worker cache).
    """
    node = candidates[0]
    marked = dataset.tree.copy()
    marked.mark_foreground(marked.nodes[node.index])
    job = GeneJob.from_objects(f"{GENE_ID}:cold", marked, dataset.alignment)
    fn_blob = pickle.dumps(_run_gene, protocol=pickle.HIGHEST_PROTOCOL)
    legacy_blob = pickle.dumps(
        {"type": "task", "tag": 0, "fn": fn_blob,
         "payload": (job, "slim", seed, budget)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )

    def legacy_once():
        message = pickle.loads(legacy_blob)
        task_job = message["payload"][0]
        tree = parse_newick(task_job.newick)
        aln = CodonAlignment.from_sequences(
            list(task_job.names), list(task_job.sequences)
        )
        estimate_codon_frequencies(aln.to_sequences(), method="f3x4", code=aln.code)
        compress_patterns(aln)
        return tree

    jobs = [
        GeneJob.from_objects(
            f"{GENE_ID}:{branch_label(dataset.tree, n.index)}",
            dataset.tree, dataset.alignment, fg_node=n.index,
        )
        for n in candidates
    ]
    context, _ = _build_shared_context(jobs, "slim", False, False, budget)
    flat = b"".join(
        bytes(b) for b in wire.encode_frame(
            wire.MSG_BATCH, 1,
            {"fn": wire.Pickled(pickle.dumps(
                _run_gene_shared, protocol=pickle.HIGHEST_PROTOCOL)),
             "context": context},
        )
    )

    def timed(fn):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    decoded = {}

    def decode_once():
        decoded["context"] = wire.decode_frame(flat).payload(allow_pickle=True)[
            "context"
        ]

    return {
        "legacy": timed(legacy_once),
        "broadcast_decode": timed(decode_once),
        "first_touch": timed(
            lambda: _materialize_patterns(decoded["context"]["alignments"][0])
        ),
        "warm": timed(lambda: parse_newick(context["newicks"][0])),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: dataset i, every branch, budget 1 (minutes, "
             "not tens of minutes)",
    )
    parser.add_argument(
        "--dataset", default=None, choices=["i", "ii", "iii", "iv"],
        help="Table II dataset (default: iii, or i with --quick)",
    )
    parser.add_argument(
        "--iterations", type=int, default=1,
        help="optimizer budget per hypothesis (bytes are budget-invariant; "
             "1 keeps the compute honest but short)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="socket workers / pool processes (default 2)",
    )
    parser.add_argument(
        "--assert-reduction", type=float, default=None, metavar="FACTOR",
        help="exit non-zero unless amortised wire bytes/task shrink by at "
             "least FACTOR vs the pickle baseline",
    )
    args = parser.parse_args(argv)

    dataset_name = args.dataset or ("i" if args.quick else "iii")
    internal_only = not args.quick  # quick: every branch, for amortisation
    dataset = get_dataset(dataset_name)
    candidates = _candidates(dataset, internal_only)
    budget = args.iterations

    legacy_sizes = _legacy_task_bytes(dataset, candidates, budget, SEED)
    legacy_mean = sum(legacy_sizes) / len(legacy_sizes)

    scan, stats, socket_wall = _run_socket_scan(
        dataset, budget, internal_only, args.workers, SEED
    )
    scan.raise_on_failure()
    n_tasks = int(stats["tasks_dispatched"])
    frame_mean = stats["task_bytes_mean"]
    broadcast_bytes = int(stats["broadcast_bytes"])
    amortized = (stats["task_bytes"] + broadcast_bytes) / n_tasks
    reduction = legacy_mean / amortized

    pool_scan, pool_context_bytes, pool_wall = _run_pool_scan(
        dataset, budget, internal_only, args.workers, SEED
    )
    pool_scan.raise_on_failure()
    identical = _scan_fingerprint(scan) == _scan_fingerprint(pool_scan)
    if not identical:
        print(
            "FATAL: socket and pool scans disagree — the data plane is "
            "not numerically transparent", file=sys.stderr,
        )
        return 1

    cold = _cold_start_bench(dataset, candidates, budget, SEED)
    measured_setup = sum(r.setup_seconds for r in scan.gene_results)
    n_cold = sum(1 for r in scan.gene_results if r.setup_seconds > 0.0)
    # Fleet-level cold start: the old plane paid the full rebuild on
    # every task; the new plane pays one decode + one materialisation
    # per worker and parses only the (deduplicated) tree afterwards.
    legacy_fleet = cold["legacy"] * n_tasks
    shared_fleet = (
        (cold["broadcast_decode"] + cold["first_touch"]) * args.workers
        + cold["warm"] * n_tasks
    )

    rows = [
        ["pickle plane (retired)", f"{legacy_mean:,.0f}", "-", "-",
         f"{cold['legacy'] * 1e3:.2f}", f"{legacy_fleet * 1e3:.1f}"],
        ["frame plane (this PR)", f"{frame_mean:,.0f}",
         f"{broadcast_bytes:,}", f"{amortized:,.0f}",
         f"{(cold['broadcast_decode'] + cold['first_touch']) * 1e3:.2f}"
         " (once/worker)",
         f"{shared_fleet * 1e3:.1f}"],
    ]
    table = format_table(
        ["data plane", "task B", "broadcast B", "B/task amortized",
         "setup ms", "fleet setup ms"],
        rows,
        title=(
            f"E-WIRE zero-copy data plane — dataset {dataset_name} "
            f"({dataset.tree.n_leaves} species, "
            f"{dataset.alignment.n_codons} codons), branch scan over "
            f"{n_tasks} candidates, {args.workers} workers, "
            f"budget {budget} it/hypothesis, seed {SEED}"
        ),
    )
    summary = "\n".join([
        table,
        "",
        f"wire bytes/task reduction : {reduction:.1f}x "
        f"(pickle {legacy_mean:,.0f} B -> {amortized:,.0f} B amortized; "
        f"per-task frames alone: {legacy_mean / frame_mean:.0f}x smaller)",
        f"cold start                : legacy {cold['legacy'] * 1e3:.2f} ms "
        f"on every task; broadcast decode "
        f"{cold['broadcast_decode'] * 1e3:.2f} ms + first touch "
        f"{cold['first_touch'] * 1e3:.2f} ms once per worker, then "
        f"{cold['warm'] * 1e3:.2f} ms warm "
        f"({legacy_fleet / shared_fleet:.1f}x less fleet setup; worker-"
        f"measured: {measured_setup * 1e3:.1f} ms across {n_cold} "
        f"first-touch tasks)",
        f"numeric identity          : socket == pool exactly "
        f"({len(scan.by_branch)} branches; pool shared-memory context "
        f"{pool_context_bytes:,} B)",
        f"wall clock                : socket {socket_wall:.1f} s, "
        f"pool {pool_wall:.1f} s",
    ])

    if args.quick:
        print(summary)
    else:
        write_result("E-WIRE_zero_copy.txt", summary)

    if args.assert_reduction is not None and reduction < args.assert_reduction:
        print(
            f"FAIL: wire bytes/task reduction {reduction:.2f}x is below "
            f"the required {args.assert_reduction:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
