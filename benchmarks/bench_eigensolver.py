"""§III-A step 2 ablation: the symmetric eigensolver driver.

SlimCodeML solves the symmetric eigenproblem with LAPACK ``dsyevr``
(multiple relatively robust representations), falling back to QR/QL —
the classic EISPACK-style method CodeML's own C code implements.  One
decomposition is needed per distinct ω per likelihood evaluation (at
most three for the branch-site model), so this cost is fixed per
iteration regardless of tree size.
"""

import numpy as np
import pytest

from harness import format_table, write_result

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(41)
    pi = rng.dirichlet(np.full(61, 5.0))
    return build_rate_matrix(2.2, 0.4, pi)


@pytest.mark.parametrize("driver", ["evr", "ev", "evd"])
def test_eigh_driver(benchmark, matrix, driver):
    decomp = benchmark(decompose, matrix, driver)
    assert np.allclose(decomp.reconstruct_q(), matrix.q, atol=1e-9)
    benchmark.extra_info["driver"] = driver


def test_driver_summary(benchmark, matrix):
    import time

    def measure():
        rows = []
        for driver, label in [
            ("evr", "dsyevr (MRRR — SlimCodeML, §III-A)"),
            ("ev", "dsyev (QL — CodeML-style classic)"),
            ("evd", "dsyevd (divide & conquer)"),
        ]:
            decompose(matrix, driver=driver)  # warm
            t0 = time.perf_counter()
            for _ in range(50):
                decompose(matrix, driver=driver)
            rows.append([label, f"{(time.perf_counter() - t0) / 50 * 1e6:.0f}"])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        "ABL_eigensolver.txt",
        format_table(
            ["driver", "µs per decomposition (n = 61)"],
            rows,
            title="Ablation: symmetric eigensolver drivers (≤3 calls per likelihood evaluation)",
        ),
    )
