"""E-T2 — Table II: the four evaluation datasets (synthetic stand-ins).

Benchmarks dataset generation and records the Table II analog: dataset
id, species, codons (the paper's columns) plus the derived quantities
that drive runtime — branch count (2s−3) and site-pattern count.
"""

import pytest

from harness import format_table, get_dataset, write_result

from repro.alignment.patterns import compress_patterns
from repro.datasets import TABLE2_SPECS, make_dataset

PAPER_SHAPES = {"i": (7, 299), "ii": (6, 5004), "iii": (25, 67), "iv": (95, 39)}


@pytest.mark.parametrize("name", ["i", "ii", "iii", "iv"])
def test_generate_dataset(benchmark, name):
    dataset = benchmark.pedantic(make_dataset, args=(name,), rounds=1, iterations=1)
    species, codons = PAPER_SHAPES[name]
    assert dataset.alignment.n_taxa == species
    assert dataset.alignment.n_codons == codons
    assert dataset.tree.n_branches == 2 * species - 3
    assert dataset.tree.require_single_foreground() is not None
    benchmark.extra_info["shape"] = f"{species}x{codons}"


def test_table2_summary(benchmark):
    def build():
        rows = []
        for name in ("i", "ii", "iii", "iv"):
            ds = get_dataset(name)
            pat = compress_patterns(ds.alignment)
            rows.append(
                [
                    name,
                    TABLE2_SPECS[name].paper_id,
                    ds.spec.n_species,
                    ds.spec.n_codons,
                    ds.tree.n_branches,
                    pat.n_patterns,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["id", "paper dataset (shape source)", "species", "codons", "branches", "patterns"],
        rows,
        title="E-T2: Table II stand-in datasets (simulated, fixed seeds)",
    )
    write_result("E-T2_datasets.txt", text)
