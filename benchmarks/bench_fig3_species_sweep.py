"""E-F3 — Figure 3: speedup versus number of species (dataset-iv family).

The paper sweeps dataset iv from 15 to 95 species at fixed sequence
length (39 codons) and plots SlimCodeML's speedup.  We generate the same
family of shapes and measure the per-evaluation speedup at every paper
x-coordinate (15, 25, …, 95).  Under a fixed iteration budget the
overall and per-iteration speedups coincide with the per-evaluation one
(every engine performs identical optimizer work per iteration), so the
dense sweep can use direct evaluation timing; the paper's jagged
overall curves stem from iteration-count noise, which E-T4/conv
quantifies separately.  An ASCII rendering of the figure is written to
benchmarks/results/.
"""

import time

import pytest

from harness import ENGINES, format_table, get_sweep_dataset, write_result

from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA

SPECIES = [15, 25, 35, 45, 55, 65, 75, 85, 95]
EVAL_REPS = 5


def _mean_eval_time(engine_name: str, dataset) -> float:
    engine = make_engine(engine_name)
    bound = engine.bind(dataset.tree, dataset.alignment, BranchSiteModelA())
    values = dataset.true_values
    bound.log_likelihood(values)  # warm caches
    t0 = time.perf_counter()
    for _ in range(EVAL_REPS):
        bound.log_likelihood(values)
    return (time.perf_counter() - t0) / EVAL_REPS


@pytest.mark.parametrize("n_species", SPECIES)
def test_sweep_point(benchmark, results_store, n_species):
    dataset = get_sweep_dataset(n_species)
    assert dataset.tree.n_branches == 2 * n_species - 3

    def measure():
        return {engine: _mean_eval_time(engine, dataset) for engine in ENGINES}

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup_slim = times["codeml"] / times["slim"]
    speedup_v2 = times["codeml"] / times["slim-v2"]
    assert speedup_slim > 1.0
    assert speedup_v2 > speedup_slim  # bundling must add on top
    results_store.fig3[n_species] = {
        "times": times,
        "slim": speedup_slim,
        "slim-v2": speedup_v2,
    }
    benchmark.extra_info.update(
        {"n_species": n_species, "S_slim": round(speedup_slim, 2), "S_v2": round(speedup_v2, 2)}
    )


def _ascii_plot(points, width=60, height=12, s_max=None):
    xs = sorted(points)
    series = {"slim": "o", "slim-v2": "*"}
    s_max = s_max or max(max(points[x][k] for x in xs) for k in series) * 1.1
    grid = [[" "] * width for _ in range(height)]
    for label, marker in series.items():
        for x in xs:
            col = int((x - xs[0]) / (xs[-1] - xs[0]) * (width - 1))
            row = height - 1 - int(points[x][label] / s_max * (height - 1))
            grid[max(0, min(height - 1, row))][col] = marker
    lines = [f"{s_max * (height - 1 - r) / (height - 1):5.1f} |" + "".join(row) for r, row in enumerate(grid)]
    lines.append("      +" + "-" * width)
    lines.append(f"       species {xs[0]} .. {xs[-1]}   (o = slim, * = slim-v2)")
    return "\n".join(lines)


def test_fig3_summary(benchmark, results_store):
    if len(results_store.fig3) < len(SPECIES):
        pytest.skip("requires every sweep point from this session")

    def build():
        rows = []
        for n in SPECIES:
            rec = results_store.fig3[n]
            rows.append(
                [
                    n,
                    2 * n - 3,
                    f"{rec['times']['codeml'] * 1e3:.1f}",
                    f"{rec['times']['slim'] * 1e3:.1f}",
                    f"{rec['times']['slim-v2'] * 1e3:.1f}",
                    f"{rec['slim']:.2f}",
                    f"{rec['slim-v2']:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        [
            "species",
            "branches",
            "codeml eval (ms)",
            "slim eval (ms)",
            "slim-v2 eval (ms)",
            "S slim",
            "S slim-v2",
        ],
        rows,
        title="E-F3: Figure 3 analog — speedup vs species, dataset-iv family (39 codons)",
    )
    plot = _ascii_plot(
        {n: {k: results_store.fig3[n][k] for k in ("slim", "slim-v2")} for n in SPECIES}
    )
    write_result("E-F3_species_sweep.txt", table + "\n\n" + plot)
