"""E-K2 — §III-B bundling claim: per-site matvec loop vs one BLAS-3 call.

CodeML applies ``P`` to each site's CLV separately; the paper notes that
bundling all sites into a single matrix-matrix product "would further
improve runtime performance" via BLAS level 3.  This bench measures the
four propagation strategies over pattern counts spanning the Table II
range (67 … 5004 codons).
"""

import numpy as np
import pytest
from scipy.linalg.blas import dgemm, dgemv, dsymm

from harness import format_table, write_result

N = 61
PATTERN_COUNTS = [39, 67, 299, 1062, 5004]


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(23)
    p_matrix = rng.random((N, N))
    p_matrix /= p_matrix.sum(axis=1, keepdims=True)
    m_sym = 0.5 * (p_matrix + p_matrix.T)
    clvs = {k: np.asfortranarray(rng.random((N, k))) for k in PATTERN_COUNTS}
    return p_matrix, m_sym, clvs


def _per_site_einsum(p, clv):
    out = np.empty_like(clv, order="F")
    for s in range(clv.shape[1]):
        np.einsum("ij,j->i", p, clv[:, s], out=out[:, s], optimize=False)
    return out


def _per_site_dgemv(p, clv):
    a_t = np.asfortranarray(p.T)
    out = np.empty_like(clv, order="F")
    for s in range(clv.shape[1]):
        out[:, s] = dgemv(1.0, a_t, clv[:, s], trans=1)
    return out


def _bundled_dgemm(p, clv):
    return dgemm(1.0, np.asfortranarray(p), clv)


def _bundled_dsymm(m, clv):
    return dsymm(1.0, np.asfortranarray(m), clv, side=0, lower=0)


STRATEGIES = {
    "per-site einsum (CodeML)": ("p", _per_site_einsum),
    "per-site dgemv (SlimCodeML)": ("p", _per_site_dgemv),
    "bundled dgemm (BLAS-3)": ("p", _bundled_dgemm),
    "bundled dsymm (Eq.12 + BLAS-3)": ("m", _bundled_dsymm),
}


@pytest.mark.parametrize("n_patterns", PATTERN_COUNTS)
@pytest.mark.parametrize("strategy", list(STRATEGIES), ids=lambda s: s.split(" (")[0])
def test_clv_propagation(benchmark, operands, strategy, n_patterns):
    p_matrix, m_sym, clvs = operands
    which, fn = STRATEGIES[strategy]
    operand = p_matrix if which == "p" else m_sym
    clv = clvs[n_patterns]
    out = benchmark(fn, operand, clv)
    assert out.shape == (N, n_patterns)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["n_patterns"] = n_patterns


def test_bundling_speedup_summary(benchmark, operands):
    """One explicit timing table for the result archive."""
    import time

    p_matrix, m_sym, clvs = operands

    def build():
        return _collect_rows(p_matrix, m_sym, clvs)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["patterns"] + [s.split(" (")[0] for s in STRATEGIES] + ["total gain"],
        rows,
        title="E-K2: CLV propagation strategies, µs per branch application (n = 61)",
    )
    write_result("E-K2_clv_bundling.txt", text)


def _collect_rows(p_matrix, m_sym, clvs):
    import time

    rows = []
    for k in PATTERN_COUNTS:
        clv = clvs[k]
        timings = {}
        for label, (which, fn) in STRATEGIES.items():
            operand = p_matrix if which == "p" else m_sym
            fn(operand, clv)  # warm
            reps = max(3, int(2000 / k))
            t0 = time.perf_counter()
            for _ in range(reps):
                fn(operand, clv)
            timings[label] = (time.perf_counter() - t0) / reps * 1e6
        base = timings["per-site einsum (CodeML)"]
        rows.append(
            [k]
            + [f"{timings[s]:.0f}" for s in STRATEGIES]
            + [f"{base / timings['bundled dsymm (Eq.12 + BLAS-3)']:.1f}x"]
        )
    return rows
