"""Benchmark-session fixtures.

The ``results_store`` fixture is session-scoped so the Table IV bench
can consume the Table III runs (files are collected alphabetically:
``bench_table3_*`` executes before ``bench_table4_*``).
"""

from __future__ import annotations

import pytest

from harness import ResultsStore


@pytest.fixture(scope="session")
def results_store() -> ResultsStore:
    return ResultsStore()
