"""E-INC — incremental likelihood evaluation: dirty-path CLV caching.

Measures what the incremental layer buys during a real branch-site fit:
for each engine the same budgeted H0+H1 analysis runs twice — seed path
(full re-pruning every evaluation) and incremental path (persistent
per-class CLV buffers, cross-class subtree sharing, hinted gradient
probes) — and the table reports

* branch propagations total and per optimizer iteration,
* the propagate-call reduction factor (the acceptance bar is ≥ 2×),
* wall clock for both paths,
* the log-likelihoods, which must be *bit-identical* (exact float
  equality) or the run aborts.

Standalone so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_incremental.py --quick --assert-reduction 2.0
"""

from __future__ import annotations

import argparse
import sys
import time

from harness import SEED, format_table, get_dataset, write_result

from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.optimize.ml import fit_model

ENGINES = ("codeml", "slim", "slim-v2")


def run_pair(dataset, engine_name: str, budget: int, incremental: bool):
    """Budgeted independent H0+H1 fits (harness Table III protocol),
    returning (lnl0, lnl1, iterations, propagations, reuses, wall)."""
    engine = make_engine(engine_name)
    wall = time.perf_counter()
    h0 = fit_model(
        engine.bind(
            dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=True),
            incremental=incremental,
        ),
        seed=SEED,
        max_iterations=budget,
    )
    h1 = fit_model(
        engine.bind(
            dataset.tree, dataset.alignment, BranchSiteModelA(fix_omega2=False),
            incremental=incremental,
        ),
        seed=SEED,
        max_iterations=budget,
    )
    wall = time.perf_counter() - wall
    iterations = h0.n_iterations + h1.n_iterations
    return h0.lnl, h1.lnl, iterations, engine.clv_propagations, engine.clv_reuses, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: slim engine only, iteration budget 2",
    )
    parser.add_argument(
        "--dataset", default="iii", choices=["i", "ii", "iii", "iv"],
        help="Table II dataset (default iii: 25 species, the branch-rich case)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="optimizer iteration budget per hypothesis (default 3; 2 in --quick)",
    )
    parser.add_argument(
        "--assert-reduction", type=float, default=None, metavar="FACTOR",
        help="exit non-zero unless every engine's propagate-call "
             "reduction is at least FACTOR",
    )
    args = parser.parse_args(argv)

    budget = args.iterations if args.iterations is not None else (2 if args.quick else 3)
    engines = ("slim",) if args.quick else ENGINES
    dataset = get_dataset(args.dataset)

    rows = []
    worst_reduction = float("inf")
    for name in engines:
        lnl0_f, lnl1_f, iters_f, props_f, _, wall_f = run_pair(
            dataset, name, budget, incremental=False
        )
        lnl0_i, lnl1_i, iters_i, props_i, reuses, wall_i = run_pair(
            dataset, name, budget, incremental=True
        )
        if (lnl0_f, lnl1_f) != (lnl0_i, lnl1_i):
            print(
                f"FATAL: {name} incremental run is not bit-identical: "
                f"H0 {lnl0_f!r} vs {lnl0_i!r}, H1 {lnl1_f!r} vs {lnl1_i!r}",
                file=sys.stderr,
            )
            return 1
        if iters_f != iters_i:
            print(
                f"FATAL: {name} iteration counts diverged ({iters_f} vs {iters_i})",
                file=sys.stderr,
            )
            return 1
        reduction = props_f / props_i if props_i else float("inf")
        worst_reduction = min(worst_reduction, reduction)
        rows.append([
            name,
            str(props_f),
            str(props_i),
            f"{props_f / max(1, iters_f):.0f}",
            f"{props_i / max(1, iters_i):.0f}",
            f"{reduction:.2f}x",
            f"{100.0 * reuses / (props_i + reuses):.1f}%",
            f"{wall_f:.2f}",
            f"{wall_i:.2f}",
            f"{wall_f / wall_i:.2f}x",
            "yes",
        ])

    table = format_table(
        [
            "engine", "props full", "props inc", "per-iter full", "per-iter inc",
            "reduction", "clv reuse", "wall full (s)", "wall inc (s)",
            "wall speedup", "bit-identical",
        ],
        rows,
        title=(
            f"E-INC incremental evaluation — dataset {args.dataset} "
            f"({dataset.tree.n_leaves} species, {dataset.alignment.n_codons} codons), "
            f"H0+H1 budget {budget} iterations/hypothesis, seed {SEED}"
        ),
    )
    if args.quick:
        print(table)
    else:
        write_result("E-INC_incremental.txt", table)

    if args.assert_reduction is not None and worst_reduction < args.assert_reduction:
        print(
            f"FAIL: propagate-call reduction {worst_reduction:.2f}x is below "
            f"the required {args.assert_reduction:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
