"""The paper's §IV-2 speedup definitions.

Three flavours are reported in Table IV:

* overall       ``So = St1 / St2`` — total runtimes;
* per-iteration ``Si = (St1/It1) / (St2/It2)`` — runtimes normalised by
  optimizer iteration counts (the controlled quantity when the two
  implementations converge in different numbers of iterations);
* combined      ``Sc`` — the same ratios over H0+H1 totals.

Kept in the library (rather than the benchmark harness) so the formulas
are unit-tested and reusable by downstream tooling.
"""

from __future__ import annotations

__all__ = ["overall_speedup", "per_iteration_speedup", "combined_speedup"]


def _positive(value: float, name: str) -> float:
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def overall_speedup(runtime_reference: float, runtime_optimized: float) -> float:
    """``So = St1 / St2`` (paper §IV-2)."""
    return _positive(runtime_reference, "runtime_reference") / _positive(
        runtime_optimized, "runtime_optimized"
    )


def per_iteration_speedup(
    runtime_reference: float,
    iterations_reference: int,
    runtime_optimized: float,
    iterations_optimized: int,
) -> float:
    """``Si``: per-iteration runtimes ratio (paper §IV-2).

    Iteration counts of zero are treated as one — a fit that converged
    immediately still performed one unit of work (its start evaluation
    and gradient).
    """
    it_ref = max(int(iterations_reference), 1)
    it_opt = max(int(iterations_optimized), 1)
    return (
        _positive(runtime_reference, "runtime_reference") / it_ref
    ) / (_positive(runtime_optimized, "runtime_optimized") / it_opt)


def combined_speedup(
    runtime_reference_h0: float,
    runtime_reference_h1: float,
    runtime_optimized_h0: float,
    runtime_optimized_h1: float,
) -> float:
    """``Sc``: H0+H1 totals ratio (paper §IV-2)."""
    return overall_speedup(
        runtime_reference_h0 + runtime_reference_h1,
        runtime_optimized_h0 + runtime_optimized_h1,
    )
