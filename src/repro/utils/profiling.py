"""Profiling helpers: where does a likelihood evaluation spend its time?

"No optimization without measuring" — the methodology behind the paper
(and behind this reproduction's calibration decisions).  Two levels:

* :func:`profile_call` — cProfile a callable and return the hottest
  functions as structured rows (handy in notebooks and bug reports);
* :func:`evaluation_breakdown` — the engine-level phase split
  (eigendecomposition / matrix exponential / CLV propagation) using the
  engines' built-in stopwatches, i.e. the decomposition that motivates
  each of the paper's optimizations.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = ["HotSpot", "profile_call", "evaluation_breakdown"]


@dataclass(frozen=True)
class HotSpot:
    """One row of a profile: a function and its cumulative cost."""

    function: str
    calls: int
    total_seconds: float
    cumulative_seconds: float


def profile_call(fn: Callable, *args, top: int = 10, **kwargs) -> Tuple[object, List[HotSpot]]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns
    -------
    (result, hotspots)
        The callable's return value and the ``top`` functions by
        internal time.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream).sort_stats("tottime")
    hotspots: List[HotSpot] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: -kv[1][2]
    )[:top]:
        filename, line, name = func
        label = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        hotspots.append(
            HotSpot(function=label, calls=nc, total_seconds=tt, cumulative_seconds=ct)
        )
    return result, hotspots


def evaluation_breakdown(engine, bound, values, n_evaluations: int = 3) -> Dict[str, float]:
    """Fractional time per engine phase over ``n_evaluations`` likelihood calls.

    Returns a dict with keys ``eigh``, ``expm``, ``clv`` (fractions of
    their sum) plus ``total_seconds``.  The engine's stopwatch is reset
    first so the numbers describe exactly these evaluations.
    """
    engine.stopwatch.reset()
    for _ in range(n_evaluations):
        bound.log_likelihood(values)
    phases = {label: engine.stopwatch.total(label) for label in ("eigh", "expm", "clv")}
    total = sum(phases.values())
    out = {label: (secs / total if total > 0 else 0.0) for label, secs in phases.items()}
    out["total_seconds"] = total
    return out
