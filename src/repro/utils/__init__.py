"""Shared numerical and infrastructure utilities.

Small, dependency-free helpers used across the library: a seeded RNG
policy, validation helpers, log-space arithmetic, and lightweight timers.
"""

from repro.utils.numerics import (
    logsumexp_weighted,
    relative_difference,
    validate_probability_vector,
    validate_square,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch

__all__ = [
    "Stopwatch",
    "logsumexp_weighted",
    "make_rng",
    "relative_difference",
    "spawn_rngs",
    "validate_probability_vector",
    "validate_square",
]
