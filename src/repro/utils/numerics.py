"""Log-space arithmetic and array validation helpers.

The branch-site mixture likelihood combines per-class site likelihoods
that carry independent log-scale factors (see
:mod:`repro.likelihood.mixture`), so a weighted ``logsumexp`` is the
fundamental combination primitive.  The accuracy metric used throughout
the paper's evaluation (relative difference ``D``) also lives here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "logsumexp_weighted",
    "relative_difference",
    "validate_probability_vector",
    "validate_square",
]


def logsumexp_weighted(log_values: np.ndarray, weights: np.ndarray, axis: int = 0) -> np.ndarray:
    """Compute ``log(sum_k weights[k] * exp(log_values[k]))`` stably.

    Parameters
    ----------
    log_values:
        Array of log-space terms; the reduction runs along ``axis``.
    weights:
        Non-negative weights, broadcast against ``log_values`` along
        ``axis``.  Zero weights are allowed (their terms are dropped),
        which matters for degenerate mixture proportions such as
        ``p2a = 0``.
    axis:
        Axis of ``log_values`` to reduce.

    Returns
    -------
    numpy.ndarray
        Log of the weighted sum, with ``axis`` removed.
    """
    log_values = np.asarray(log_values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0):
        raise ValueError("mixture weights must be non-negative")
    # Move the reduction axis to the front so weights broadcast cleanly.
    lv = np.moveaxis(log_values, axis, 0)
    w = weights.reshape((-1,) + (1,) * (lv.ndim - 1))
    if w.shape[0] != lv.shape[0]:
        raise ValueError(
            f"weights length {w.shape[0]} does not match reduced axis {lv.shape[0]}"
        )
    # Terms with zero weight must not poison the max (they may be -inf).
    masked = np.where(w > 0, lv, -np.inf)
    m = np.max(masked, axis=0)
    # All-zero weights would give log(0); keep that as -inf without warnings.
    safe_m = np.where(np.isfinite(m), m, 0.0)
    with np.errstate(invalid="ignore"):
        total = np.sum(w * np.exp(masked - safe_m), axis=0)
    with np.errstate(divide="ignore"):
        out = np.where(np.isfinite(m), safe_m + np.log(np.maximum(total, 0.0)), -np.inf)
    return out


def relative_difference(lnl_reference: float, lnl_other: float) -> float:
    """Paper §IV-1 accuracy metric ``D = |lnL - lnL̂| / |lnL|``.

    ``lnl_reference`` plays the role of CodeML's log-likelihood and
    ``lnl_other`` the optimized implementation's.  Returns ``0.0`` when
    both are exactly equal (including the degenerate ``lnL == 0`` case).
    """
    if lnl_reference == lnl_other:
        return 0.0
    denom = abs(lnl_reference)
    if denom == 0.0:
        return float("inf")
    return abs(lnl_reference - lnl_other) / denom


def validate_probability_vector(pi: np.ndarray, *, name: str = "pi", atol: float = 1e-8) -> np.ndarray:
    """Validate and return a probability vector as a float array.

    Raises :class:`ValueError` on negative entries or a sum far from 1.
    """
    pi = np.asarray(pi, dtype=float)
    if pi.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {pi.shape}")
    if np.any(pi < 0):
        raise ValueError(f"{name} has negative entries")
    total = float(pi.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} sums to {total!r}, expected 1.0")
    return pi


def validate_square(matrix: np.ndarray, *, name: str = "matrix") -> np.ndarray:
    """Validate and return a square 2-D float array."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
    return matrix
