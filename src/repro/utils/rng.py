"""Seeded random-number-generation policy.

The paper fixes the RNG seed so that CodeML and SlimCodeML start the
optimizer from identical tree parameter values (§IV).  Every stochastic
component in this library (tree simulation, sequence simulation, start
values) therefore takes an explicit seed or :class:`numpy.random.Generator`
and routes it through :func:`make_rng`, so a whole experiment is
reproducible from a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used by the batch driver so that parallel gene analyses are each
    reproducible and mutually independent regardless of scheduling order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator state deterministically.
        children = seed.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
    else:
        children = root.spawn(n)
    return [np.random.default_rng(c) for c in children]
