"""Wall-clock measurement helper used by the benchmark harnesses.

The paper reports total runtimes and iteration counts (Table III); the
:class:`Stopwatch` keeps named accumulators so a fit can report how much
time went to matrix exponentials versus CLV propagation, mirroring the
profile-first methodology the optimization is based on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Named wall-clock accumulators.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.measure("expm"):
    ...     pass
    >>> sw.total("expm") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def add(self, label: str, elapsed: float) -> None:
        """Record one pre-measured interval (cheaper than :meth:`measure`
        in per-call hot loops — no context-manager machinery)."""
        self.totals[label] = self.totals.get(label, 0.0) + elapsed
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Accumulated seconds for ``label`` (0.0 if never measured)."""
        return self.totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measured intervals for ``label``."""
        return self.counts.get(label, 0)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def summary(self) -> str:
        """Human-readable one-line-per-label breakdown, longest first."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1])
        return "\n".join(
            f"{label:<24s} {secs:10.4f} s  ({self.counts[label]} calls)" for label, secs in rows
        )
