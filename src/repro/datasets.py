"""Synthetic stand-ins for the paper's Table II evaluation datasets.

The paper evaluates on four Ensembl alignments curated for Selectome
(Table II).  We cannot redistribute those, and runtime behaviour depends
on the *dimensions* — species count drives the number of branches and
hence matrix exponentials; codon count drives the number of site
patterns and hence CLV work — so each dataset is replaced by a
simulated alignment with the same shape (DESIGN.md §5):

===  =======================================  =======  ========
id   paper dataset (Ensembl family)           species  codons
===  =======================================  =======  ========
i    ENSGT00390000016702.Primates.1.2         7        299
ii   ENSGT00580000081590.Primates.1.2         6        5004
iii  ENSGT00550000073950.Euteleostomi.7.2     25       67
iv   ENSGT00530000063518.Primates.1.1         95       39
===  =======================================  =======  ========

Primates datasets use shallow divergence (short branches), the
Euteleostomi one deeper divergence, matching the biology the shapes come
from.  All generation is seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.alignment.msa import CodonAlignment
from repro.alignment.simulate import simulate_alignment
from repro.models.branch_site import BranchSiteModelA
from repro.trees.simulate import simulate_yule_tree
from repro.trees.tree import Tree
from repro.utils.rng import make_rng

__all__ = ["DatasetSpec", "Dataset", "TABLE2_SPECS", "make_dataset", "species_sweep_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and generating parameters of one synthetic dataset."""

    name: str
    paper_id: str
    n_species: int
    n_codons: int
    mean_branch_length: float
    seed: int
    #: Generating branch-site parameters (ground truth).  About 25 % of
    #: sites fall in classes 2a/2b with a strong ω2, so the foreground
    #: signal survives even the short alignments (datasets iii/iv) and
    #: the H1 fit has genuine work to do beyond the H0 optimum.
    kappa: float = 2.2
    omega0: float = 0.2
    omega2: float = 6.0
    p0: float = 0.45
    p1: float = 0.3

    def true_values(self) -> Dict[str, float]:
        return {
            "kappa": self.kappa,
            "omega0": self.omega0,
            "omega2": self.omega2,
            "p0": self.p0,
            "p1": self.p1,
        }


@dataclass
class Dataset:
    """A generated dataset: tree (foreground marked), alignment, truth."""

    spec: DatasetSpec
    tree: Tree
    alignment: CodonAlignment
    true_values: Dict[str, float]
    true_site_classes: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name


#: Table II shapes.  Seeds are arbitrary fixed constants (paper §IV:
#: "we fixed the seed for the random number generator").
TABLE2_SPECS: Dict[str, DatasetSpec] = {
    "i": DatasetSpec(
        name="i",
        paper_id="ENSGT00390000016702.Primates.1.2",
        n_species=7,
        n_codons=299,
        mean_branch_length=0.06,
        seed=2012_01,
    ),
    "ii": DatasetSpec(
        name="ii",
        paper_id="ENSGT00580000081590.Primates.1.2",
        n_species=6,
        n_codons=5004,
        mean_branch_length=0.05,
        seed=2012_02,
    ),
    "iii": DatasetSpec(
        name="iii",
        paper_id="ENSGT00550000073950.Euteleostomi.7.2",
        n_species=25,
        n_codons=67,
        mean_branch_length=0.18,
        seed=2012_03,
    ),
    "iv": DatasetSpec(
        name="iv",
        paper_id="ENSGT00530000063518.Primates.1.1",
        n_species=95,
        n_codons=39,
        mean_branch_length=0.05,
        seed=2012_04,
    ),
}


def _choose_foreground(tree: Tree) -> None:
    """Mark the longest internal branch as foreground.

    A uniformly random branch can be near-zero length, in which case the
    foreground process leaves no trace and H1 degenerates to H0; real
    Selectome tests target lineages of interest, which have substance.
    Deterministic given the tree, so dataset generation stays seeded.
    """
    internals = [n for n in tree.nodes if not n.is_root and not n.is_leaf]
    candidates = internals if internals else [n for n in tree.nodes if not n.is_root]
    tree.mark_foreground(max(candidates, key=lambda n: n.length))


def _generate(spec: DatasetSpec) -> Dataset:
    rng = make_rng(spec.seed)
    tree = simulate_yule_tree(
        spec.n_species,
        seed=rng,
        mean_branch_length=spec.mean_branch_length,
        unrooted=True,
    )
    _choose_foreground(tree)
    values = spec.true_values()
    sim = simulate_alignment(
        tree,
        BranchSiteModelA(fix_omega2=False),
        values,
        n_codons=spec.n_codons,
        seed=rng,
    )
    return Dataset(
        spec=spec,
        tree=tree,
        alignment=sim.alignment,
        true_values=values,
        true_site_classes=sim.site_classes,
    )


def make_dataset(name: str) -> Dataset:
    """Generate the Table II stand-in dataset ``"i"``/``"ii"``/``"iii"``/``"iv"``."""
    try:
        spec = TABLE2_SPECS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(TABLE2_SPECS)}"
        ) from None
    return _generate(spec)


def species_sweep_dataset(n_species: int, seed: Optional[int] = None) -> Dataset:
    """Dataset-iv family member with a custom species count (paper Fig. 3).

    Figure 3 *subsamples* dataset iv from 95 down to 15 species; we do
    the same — keep the first ``n_species`` taxa of the full dataset iv
    (nested subsets, deterministic), prune the tree (path lengths
    preserved), and subset the alignment rows.  If the foreground mark
    fell inside the removed part, the longest surviving internal branch
    is re-marked, mirroring how a smaller study would choose its test
    branch.
    """
    from repro.trees.prune import prune_to_taxa

    base_spec = TABLE2_SPECS["iv"]
    if not 3 <= n_species <= base_spec.n_species:
        raise ValueError(
            f"n_species must be within [3, {base_spec.n_species}], got {n_species}"
        )
    full = make_dataset("iv") if seed is None else _generate(
        DatasetSpec(
            name="iv",
            paper_id=base_spec.paper_id,
            n_species=base_spec.n_species,
            n_codons=base_spec.n_codons,
            mean_branch_length=base_spec.mean_branch_length,
            seed=seed,
        )
    )
    keep = full.tree.leaf_names()[:n_species]
    tree = prune_to_taxa(full.tree, keep)
    if not tree.foreground_nodes():
        _choose_foreground(tree)
    elif len(tree.foreground_nodes()) > 1:
        # Merged paths can OR multiple marks together; keep one.
        tree.mark_foreground(tree.foreground_nodes()[0])
    alignment = full.alignment.subset_taxa(keep)
    spec = DatasetSpec(
        name=f"iv-{n_species}sp",
        paper_id=base_spec.paper_id,
        n_species=n_species,
        n_codons=base_spec.n_codons,
        mean_branch_length=base_spec.mean_branch_length,
        seed=base_spec.seed if seed is None else seed,
    )
    return Dataset(
        spec=spec,
        tree=tree,
        alignment=alignment,
        true_values=full.true_values,
        true_site_classes=full.true_site_classes,
    )
