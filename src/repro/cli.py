"""``slimcodeml`` command-line interface.

Mirrors CodeML's workflow: a control file (or direct flags) names the
sequence file, the tree file with its ``#1`` foreground mark, and the
options; the run fits H0 and H1 of branch-site model A, performs the
LRT, optionally computes BEB site probabilities, and writes an
``mlc``-style report.

Subcommands
-----------
``run``        one branch-site analysis (H0 + H1 + LRT [+ BEB])
``scan``       fault-tolerant branch scan of one gene (journal/resume),
               over an in-process, process-pool or socket executor
``worker``     serve tasks to a ``scan --executor socket`` on any host
``simulate``   generate a synthetic dataset (tree + alignment)
``datasets``   materialise the Table II stand-in datasets to disk
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.alignment.parsers import read_alignment, write_phylip
from repro.core.engine import make_engine
from repro.io.ctl import ControlFile, parse_ctl
from repro.io.report import format_report
from repro.optimize.beb import beb_site_probabilities
from repro.optimize.ml import fit_branch_site_test
from repro.trees.newick import parse_newick, write_newick

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slimcodeml",
        description="SlimCodeML reproduction: branch-site test for positive selection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the H0+H1 branch-site analysis")
    run.add_argument("--ctl", help="CodeML-style control file")
    run.add_argument("--seqfile", help="alignment (PHYLIP or FASTA)")
    run.add_argument("--treefile", help="Newick tree with #1 foreground mark")
    run.add_argument("--out", default="-", help="report destination ('-' = stdout)")
    run.add_argument(
        "--engine",
        default=None,
        choices=["codeml", "slim", "slim-v2"],
        help="likelihood engine (default from ctl, else slim)",
    )
    run.add_argument("--seed", type=int, default=None, help="start-value seed")
    run.add_argument("--max-iterations", type=int, default=None)
    run.add_argument("--beb", action="store_true", help="compute BEB site probabilities")
    run.add_argument(
        "--map", action="store_true",
        help="sample posterior substitution histories at the H1 MLEs "
             "(uniformization-based stochastic mapping) and report the "
             "per-branch syn/nonsyn event table next to the BEB sites",
    )
    run.add_argument("--map-samples", type=int, default=16,
                     help="posterior histories per site for --map")
    run.add_argument(
        "--map-serial", action="store_true",
        help="draw --map histories with the reference serial sampler "
             "instead of the batched one (bit-identical results; the "
             "equivalence gate)",
    )
    run.add_argument("--cleandata", action="store_true", help="drop columns with gaps")
    run.add_argument(
        "--incremental", action="store_true",
        help="enable incremental likelihood evaluation (dirty-path CLV "
             "caching + cross-class subtree sharing); bit-identical to "
             "full re-pruning",
    )
    run.add_argument(
        "--batched", dest="batched", action="store_true", default=None,
        help="force the stacked-operator / level-order evaluation path "
             "(default: engine choice — on for slim-v2, off elsewhere); "
             "bit-identical to the per-branch path",
    )
    run.add_argument(
        "--no-batched", dest="batched", action="store_false",
        help="force the per-branch evaluation path",
    )

    scan = sub.add_parser(
        "scan",
        help="test every candidate branch of one gene (fault-tolerant, resumable)",
    )
    scan.add_argument("--seqfile", required=True, help="alignment (PHYLIP or FASTA)")
    scan.add_argument("--treefile", required=True, help="Newick tree (marks are ignored)")
    scan.add_argument("--gene-id", default=None, help="task-id prefix (default: seqfile stem)")
    scan.add_argument(
        "--engine", default="slim", choices=["codeml", "slim", "slim-v2"],
        help="likelihood engine",
    )
    scan.add_argument("--internal-only", action="store_true",
                      help="scan internal branches only")
    scan.add_argument(
        "--model", default=None,
        help="site-class model spec: 'branch-site-A' (default) or "
             "'bsrel:K' for the 2K-class BS-REL family (e.g. bsrel:3)",
    )
    scan.add_argument(
        "--survey", action="store_true",
        help="emit the all-branches survey report: per-branch LRT with "
             "Holm-corrected p-values (family-wise error control over "
             "the whole scan)",
    )
    scan.add_argument("--alpha", type=float, default=0.05,
                      help="family-wise significance level for --survey")
    scan.add_argument(
        "--map", action="store_true",
        help="per tested branch, sample posterior substitution histories "
             "at the H1 MLEs (uniformization-based stochastic mapping) "
             "and report per-branch syn/nonsyn event tables",
    )
    scan.add_argument("--map-samples", type=int, default=16,
                      help="posterior histories per site for --map")
    scan.add_argument(
        "--map-serial", action="store_true",
        help="draw --map histories with the reference serial sampler "
             "instead of the batched one (bit-identical results; the "
             "equivalence gate)",
    )
    scan.add_argument("--processes", type=int, default=1,
                      help="worker processes (1 = in-process)")
    scan.add_argument("--seed", type=int, default=1, help="start-value seed")
    scan.add_argument("--max-iterations", type=int, default=50)
    scan.add_argument("--timeout", type=float, default=None,
                      help="per-branch wall-clock budget in seconds (needs --processes > 1)")
    scan.add_argument("--retries", type=int, default=0,
                      help="retries per failed branch task")
    scan.add_argument("--backoff", type=float, default=0.5,
                      help="base retry backoff in seconds (doubles per retry)")
    scan.add_argument("--journal", default=None,
                      help="JSONL checkpoint; finished branches stream here")
    scan.add_argument("--resume", action="store_true",
                      help="skip branches already successful in --journal")
    scan.add_argument("--out", default="-", help="report destination ('-' = stdout)")
    scan.add_argument("--quiet", action="store_true", help="suppress per-branch progress")
    scan.add_argument(
        "--no-recover", dest="recover", action="store_false", default=True,
        help="disable the numerical self-healing layer (eigensolver fallback "
             "ladder, P(t) guards, optimizer restarts); disabled runs are "
             "bit-identical to the historical unguarded code",
    )
    scan.add_argument(
        "--no-incremental", dest="incremental", action="store_false", default=True,
        help="disable incremental likelihood evaluation (dirty-path CLV "
             "caching + cross-class subtree sharing); incremental runs "
             "are bit-identical to full re-pruning",
    )
    scan.add_argument(
        "--batched", dest="batched", action="store_true", default=None,
        help="force the stacked-operator / level-order evaluation path "
             "(default: engine choice — on for slim-v2, off elsewhere); "
             "bit-identical to the per-branch path",
    )
    scan.add_argument(
        "--no-batched", dest="batched", action="store_false",
        help="force the per-branch evaluation path",
    )
    scan.add_argument(
        "--executor", default=None, choices=["inline", "pool", "socket"],
        help="execution substrate (default: inline for --processes 1, else pool)",
    )
    scan.add_argument("--bind", default="127.0.0.1:0",
                      help="host:port the socket executor listens on "
                           "(port 0 = ephemeral, printed at startup)")
    scan.add_argument("--min-workers", type=int, default=1,
                      help="socket executor: workers to wait for before scanning")
    scan.add_argument("--worker-wait", type=float, default=30.0,
                      help="socket executor: seconds to wait for --min-workers")

    wrk = sub.add_parser(
        "worker",
        help="serve scan tasks from a 'scan --executor socket' coordinator",
    )
    wrk.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="coordinator address (the scan's --bind)")
    wrk.add_argument("--name", default=None, help="worker identity in scan metrics")
    wrk.add_argument("--idle-timeout", type=float, default=60.0,
                     help="exit after this many seconds of coordinator "
                          "silence (the coordinator pings every ~2s while "
                          "idle; 0 waits forever)")
    wrk.add_argument("--max-tasks", type=int, default=None,
                     help="exit after this many tasks (default: serve until shutdown)")

    sim = sub.add_parser("simulate", help="simulate a dataset under branch-site model A")
    sim.add_argument("--species", type=int, default=12)
    sim.add_argument("--codons", type=int, default=300)
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--omega2", type=float, default=3.0)
    sim.add_argument("--prefix", required=True, help="output prefix (.phy and .nwk written)")

    data = sub.add_parser("datasets", help="write the Table II stand-in datasets")
    data.add_argument("--outdir", required=True)
    data.add_argument(
        "--only", nargs="*", default=None, help="subset of dataset ids (i ii iii iv)"
    )

    bench = sub.add_parser(
        "bench", help="quick engine comparison on one dataset (Table IV in miniature)"
    )
    bench.add_argument("--dataset", default="iii", choices=["i", "ii", "iii", "iv"])
    bench.add_argument("--iterations", type=int, default=2)
    bench.add_argument(
        "--engines", nargs="*", default=["codeml", "slim", "slim-v2"],
        choices=["codeml", "slim", "slim-v2"],
    )
    return parser


def _read_tree(treefile: str):
    """Parse a Newick tree file (context-managed: no leaked handles)."""
    with open(treefile, encoding="utf-8") as handle:
        return parse_newick(handle.read())


def _cmd_run(args: argparse.Namespace) -> int:
    if args.ctl:
        ctl = parse_ctl(args.ctl)
    else:
        if not (args.seqfile and args.treefile):
            print("error: provide --ctl or both --seqfile and --treefile", file=sys.stderr)
            return 2
        ctl = ControlFile(seqfile=args.seqfile, treefile=args.treefile)
    seqfile = args.seqfile or ctl.seqfile
    treefile = args.treefile or ctl.treefile
    engine_name = args.engine or ctl.engine
    seed = args.seed if args.seed is not None else ctl.seed
    max_iterations = (
        args.max_iterations if args.max_iterations is not None else ctl.max_iterations
    )

    alignment = read_alignment(seqfile)
    if args.cleandata or ctl.cleandata:
        alignment = alignment.drop_incomplete_columns()
    tree = _read_tree(treefile)
    tree.require_single_foreground()

    engine = make_engine(engine_name)
    test = fit_branch_site_test(
        lambda model: engine.bind(
            tree, alignment, model,
            freq_method=ctl.freq_method,
            incremental=args.incremental,
            batched=args.batched,
        ),
        seed=seed,
        max_iterations=max_iterations,
        start_overrides={"kappa": ctl.kappa},
        fixed_params={"kappa"} if ctl.fix_kappa else None,
    )
    sites = None
    if args.beb:
        bound = engine.bind(
            tree, alignment, _h1_model(), freq_method=ctl.freq_method,
            batched=args.batched,
        )
        sites = beb_site_probabilities(bound, test.h1.values, test.h1.branch_lengths)
    mapping = None
    if args.map:
        from repro.likelihood.mapping import sample_substitution_mapping

        bound = engine.bind(
            tree, alignment, _h1_model(), freq_method=ctl.freq_method,
            batched=args.batched,
        )
        mapping = sample_substitution_mapping(
            bound, test.h1.values, branch_lengths=test.h1.branch_lengths,
            n_samples=args.map_samples, seed=seed,
            method="serial" if args.map_serial else "batched",
        ).to_payload()

    report = format_report(test, tree=tree, sites=sites, dataset_name=seqfile,
                           mapping=mapping)
    if args.out == "-":
        print(report)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.parallel.batch import scan_branches
    from repro.parallel.faults import FaultPolicy

    from repro.parallel.executors import make_executor

    from repro.models.registry import resolve_model_spec

    try:
        # Fail a typo'd spec before any work is scheduled.
        model_spec = resolve_model_spec(args.model).spec if args.model else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    alignment = read_alignment(args.seqfile)
    tree = _read_tree(args.treefile)
    gene_id = args.gene_id or os.path.splitext(os.path.basename(args.seqfile))[0]
    policy = FaultPolicy(
        task_timeout=args.timeout,
        max_retries=args.retries,
        retry_backoff=args.backoff,
    )
    if args.timeout is not None and args.processes == 1 and args.executor in (None, "inline"):
        print(
            "warning: --timeout needs worker processes (--processes > 1, or "
            "--executor pool/socket); in-process tasks cannot be interrupted "
            "and the timeout will not be enforced",
            file=sys.stderr,
        )

    executor = None
    if args.executor is not None:
        try:
            bind_host, bind_port = args.bind.rsplit(":", 1)
            executor = make_executor(
                args.executor,
                max_workers=args.processes,
                bind=bind_host,
                port=int(bind_port),
                min_workers=args.min_workers,
                worker_wait=args.worker_wait,
            )
        except (ValueError, OSError) as exc:
            print(f"error: cannot set up --executor {args.executor}: {exc}",
                  file=sys.stderr)
            return 2
        if args.executor == "socket":
            host, port = executor.address
            print(
                f"socket executor listening on {host}:{port} — start workers "
                f"with: slimcodeml worker --connect {host}:{port}",
                file=sys.stderr,
            )
    if args.resume and not args.journal:
        print(
            "warning: --resume has no effect without --journal; "
            "every branch will be recomputed",
            file=sys.stderr,
        )

    n_candidates = sum(
        1 for n in tree.nodes
        if not n.is_root and (not args.internal_only or not n.is_leaf)
    )

    computed_ids = set()

    def progress(k: int, res) -> None:
        # Fires only for tasks actually run this invocation — resumed
        # results are loaded from the journal without passing through.
        computed_ids.add(res.gene_id)
        if args.quiet:
            return
        state = "FAILED" if res.failed else "ok"
        detail = res.failure.describe() if res.failed and res.failure else (
            f"2*delta={res.statistic:.3f} in {res.runtime_seconds:.1f}s"
        )
        print(f"  [{k + 1}/{n_candidates}] {res.gene_id}: {state} ({detail})",
              file=sys.stderr)

    # With --survey --map, mapping is deferred: tasks keep their H1 MLEs
    # instead of sampling, and the coordinator maps only the branches
    # that survive Holm selection — in one pass over one shared engine.
    survey_map = args.survey and args.map
    start = time.perf_counter()
    try:
        scan = scan_branches(
            gene_id,
            tree,
            alignment,
            engine=args.engine,
            internal_only=args.internal_only,
            seed=args.seed,
            max_iterations=args.max_iterations,
            processes=args.processes,
            policy=policy,
            journal=args.journal,
            resume=args.resume,
            on_result=progress,
            executor=executor,
            recover=args.recover,
            incremental=args.incremental,
            batched=args.batched,
            model=model_spec,
            map_samples=None if survey_map else (args.map_samples if args.map else None),
            map_serial=args.map_serial,
            keep_mles=survey_map,
        )
    except RuntimeError as exc:
        # e.g. the socket executor never saw its --min-workers register.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if executor is not None:
            executor.shutdown()

    if survey_map:
        from repro.io.results_io import ResultJournal
        from repro.parallel.batch import map_survey_candidates

        significant = scan.holm_significant(args.alpha)
        if significant and not args.quiet:
            print(
                f"  mapping {len(significant)} Holm-significant branch"
                f"{'es' if len(significant) != 1 else ''} (one pass, "
                f"shared kernels)...",
                file=sys.stderr,
            )
        if significant:
            payloads = map_survey_candidates(
                gene_id,
                tree,
                alignment,
                scan,
                significant,
                engine=args.engine,
                map_samples=args.map_samples,
                seed=args.seed,
                model=model_spec,
                batched=args.batched,
                method="serial" if args.map_serial else "batched",
                internal_only=args.internal_only,
            )
            by_id = {f"{gene_id}:{label}": p for label, p in payloads.items()}
            updated = [r for r in scan.gene_results if r.gene_id in by_id]
            for res in updated:
                res.mapping = by_id[res.gene_id]
            if args.journal and updated:
                # Re-journal the mapped results: completed() keeps the
                # latest successful record per id, so the upsert wins on
                # resume without rewriting the file.
                with ResultJournal(args.journal) as sink:
                    for res in updated:
                        sink.append(res)
    wall = time.perf_counter() - start

    resumed = [r.gene_id for r in scan.gene_results if r.gene_id not in computed_ids]

    if args.survey:
        from repro.io.report import format_survey_report

        lines = [format_survey_report(
            scan,
            dataset_name=args.seqfile,
            alpha=args.alpha,
            model_spec=model_spec or "branch-site-A",
        )]
    else:
        lines = [f"branch scan: {gene_id} ({scan.n_candidates} candidate branches)"]
        lines.append("")
        lines.append(f"{'branch':<16s} {'2*delta':>9s} {'p (chi2_1)':>12s}  verdict")
        for label, lrt in sorted(scan.by_branch.items(), key=lambda kv: kv[1].pvalue_chi2):
            verdict = "**SELECTED**" if lrt.significant() else ""
            lines.append(
                f"{label:<16s} {lrt.statistic:>9.3f} {lrt.pvalue_chi2:>12.4g}  {verdict}"
            )
        for label, failure in sorted(scan.failures.items()):
            lines.append(f"{label:<16s} {'FAILED':>9s}  {failure.describe()}")
    recovered = [r for r in scan.gene_results if getattr(r, "recovered", False)]
    if recovered:
        from repro.core.recovery import FitDiagnostics

        lines.append("")
        lines.append("numerical recovery (per branch):")
        for res in recovered:
            diag = FitDiagnostics.from_dict(res.diagnostics)
            lines.append(f"  {res.gene_id}: {diag.describe()}")
    mapped = [r for r in scan.gene_results if getattr(r, "mapping", None)]
    if mapped:
        from repro.io.report import format_mapping_block

        lines.append("")
        lines.append(
            "substitution mapping (Holm-significant branches, one pass):"
            if survey_map
            else "substitution mapping (per tested branch):"
        )
        for res in mapped:
            lines.append(f"  {res.gene_id}:")
            lines.append(format_mapping_block(res.mapping, indent="    "))
    lines.append("")
    summary = scan.summary(wall_seconds=wall, resumed_ids=resumed)
    if executor is not None and hasattr(executor, "wire_stats"):
        # Counters survive shutdown: report data-plane traffic (bytes per
        # task vs the one-shot broadcast) alongside the compute metrics.
        summary.wire = executor.wire_stats()
    lines.append(summary.format())
    if args.journal:
        lines.append(f"journal    : {args.journal}"
                     + (" (resumed)" if args.resume else ""))
    report = "\n".join(lines)
    if args.out == "-":
        print(report)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    return 0 if scan.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.parallel.executors.worker import parse_address, run_worker

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        done = run_worker(host, port, name=args.name, max_tasks=args.max_tasks,
                          idle_timeout=args.idle_timeout)
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot serve {args.connect}: {exc}", file=sys.stderr)
        return 1
    print(f"worker done: {done} task{'s' if done != 1 else ''} served",
          file=sys.stderr)
    return 0


def _h1_model():
    from repro.models.branch_site import BranchSiteModelA

    return BranchSiteModelA(fix_omega2=False)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.alignment.simulate import simulate_alignment
    from repro.models.branch_site import BranchSiteModelA
    from repro.trees.simulate import random_foreground, simulate_yule_tree

    tree = simulate_yule_tree(args.species, seed=args.seed)
    random_foreground(tree, seed=args.seed + 1, internal_only=args.species >= 5)
    values = {"kappa": 2.2, "omega0": 0.2, "omega2": args.omega2, "p0": 0.5, "p1": 0.35}
    sim = simulate_alignment(
        tree, BranchSiteModelA(), values, n_codons=args.codons, seed=args.seed + 2
    )
    write_phylip(sim.alignment, f"{args.prefix}.phy")
    with open(f"{args.prefix}.nwk", "w", encoding="utf-8") as handle:
        handle.write(write_newick(tree) + "\n")
    print(f"wrote {args.prefix}.phy and {args.prefix}.nwk "
          f"({args.species} species x {args.codons} codons)")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    import os

    from repro.datasets import TABLE2_SPECS, make_dataset

    names = args.only if args.only else sorted(TABLE2_SPECS)
    os.makedirs(args.outdir, exist_ok=True)
    for name in names:
        ds = make_dataset(name)
        prefix = os.path.join(args.outdir, f"dataset_{name}")
        write_phylip(ds.alignment, f"{prefix}.phy")
        with open(f"{prefix}.nwk", "w", encoding="utf-8") as handle:
            handle.write(write_newick(ds.tree) + "\n")
        n_pos = int(np.sum(ds.true_site_classes >= 2))
        print(
            f"dataset {name}: {ds.spec.n_species} species x {ds.spec.n_codons} codons, "
            f"{n_pos} positively-selected sites -> {prefix}.phy/.nwk"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.datasets import make_dataset
    from repro.optimize.ml import fit_branch_site_test
    from repro.utils.numerics import relative_difference

    print(f"generating dataset {args.dataset!r}...")
    ds = make_dataset(args.dataset)
    print(
        f"  {ds.spec.n_species} species x {ds.spec.n_codons} codons, "
        f"{ds.tree.n_branches} branches; {args.iterations} optimizer "
        "iterations per hypothesis\n"
    )
    runs = {}
    for name in args.engines:
        engine = make_engine(name)
        runs[name] = fit_branch_site_test(
            lambda m: engine.bind(ds.tree, ds.alignment, m),
            seed=1,
            max_iterations=args.iterations,
        )
    reference = runs[args.engines[0]]
    print(f"{'engine':<10s} {'H0+H1 (s)':>10s} {'speedup':>8s} {'lnL H1':>14s} {'D':>10s}")
    for name, test in runs.items():
        speedup = reference.combined_runtime / test.combined_runtime
        d = relative_difference(reference.h1.lnl, test.h1.lnl)
        print(
            f"{name:<10s} {test.combined_runtime:>10.2f} {speedup:>7.2f}x "
            f"{test.h1.lnl:>14.4f} {d:>10.2e}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (returns the process exit code)."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
