"""SlimCodeML reproduction: optimized branch-site codon-model likelihoods.

A from-scratch Python implementation of the system described in
*SlimCodeML: An Optimized Version of CodeML for the Branch-Site Model*
(Schabauer et al., IEEE IPDPSW 2012): the branch-site codon model A, the
full CodeML-style maximum-likelihood pipeline around it, and the paper's
optimized likelihood kernels (symmetrised ``dsyrk`` matrix exponential,
symmetric CLV propagation, BLAS-3 bundling) next to a faithful
CodeML-v4.4c-style comparator.

Quick start::

    from repro import (
        BranchSiteModelA, make_engine, fit_branch_site_test,
        simulate_yule_tree, simulate_alignment,
    )
    tree = simulate_yule_tree(8, seed=1)
    tree.mark_foreground(tree.leaves[0])
    truth = {"kappa": 2.0, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
    sim = simulate_alignment(tree, BranchSiteModelA(), truth, n_codons=300, seed=2)
    engine = make_engine("slim")
    test = fit_branch_site_test(lambda m: engine.bind(tree, sim.alignment, m), seed=1)
    print(test.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.alignment.distances import nei_gojobori
from repro.alignment.msa import CodonAlignment
from repro.alignment.parsers import read_alignment, read_fasta, read_phylip
from repro.alignment.patterns import compress_patterns
from repro.alignment.simulate import simulate_alignment
from repro.codon.frequencies import estimate_codon_frequencies
from repro.codon.genetic_code import UNIVERSAL, get_genetic_code
from repro.codon.matrix import build_rate_matrix
from repro.core.engine import (
    BaselineEngine,
    BoundLikelihood,
    LikelihoodEngine,
    SlimEngine,
    SlimV2Engine,
    make_engine,
)
from repro.core.expm import (
    transition_matrix_einsum,
    transition_matrix_gemm,
    transition_matrix_syrk,
)
from repro.datasets import make_dataset, species_sweep_dataset
from repro.likelihood.ancestral import marginal_reconstruction
from repro.models.branch import TwoRatioModel
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.models.sites import M1aModel, M2aModel
from repro.optimize.beb import beb_site_probabilities, neb_site_probabilities
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import fit_branch_site_test, fit_model, fit_sites_test
from repro.trees.newick import parse_newick, write_newick
from repro.trees.prune import prune_to_taxa
from repro.trees.simulate import simulate_yule_tree
from repro.trees.tree import Node, Tree
from repro.utils.numerics import relative_difference

__version__ = "1.0.0"

__all__ = [
    "BaselineEngine",
    "BoundLikelihood",
    "BranchSiteModelA",
    "CodonAlignment",
    "LikelihoodEngine",
    "M0Model",
    "M1aModel",
    "M2aModel",
    "Node",
    "SlimEngine",
    "SlimV2Engine",
    "Tree",
    "TwoRatioModel",
    "UNIVERSAL",
    "__version__",
    "beb_site_probabilities",
    "build_rate_matrix",
    "compress_patterns",
    "estimate_codon_frequencies",
    "fit_branch_site_test",
    "fit_model",
    "fit_sites_test",
    "get_genetic_code",
    "likelihood_ratio_test",
    "make_dataset",
    "make_engine",
    "marginal_reconstruction",
    "neb_site_probabilities",
    "nei_gojobori",
    "parse_newick",
    "prune_to_taxa",
    "read_alignment",
    "read_fasta",
    "read_phylip",
    "relative_difference",
    "simulate_alignment",
    "simulate_yule_tree",
    "species_sweep_dataset",
    "transition_matrix_einsum",
    "transition_matrix_gemm",
    "transition_matrix_syrk",
    "write_newick",
]
