"""Random phylogenies for the synthetic evaluation datasets.

The paper's Table II datasets come with Ensembl gene trees we do not
have; runtime behaviour depends only on the tree's *size* (number of
branches) and branch-length scale, so we substitute Yule (pure-birth)
trees with exponentially distributed branch lengths — the standard
null model for species trees — and mark a random internal branch as
foreground, mimicking a Selectome per-branch test.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trees.tree import Node, Tree
from repro.utils.rng import RngLike, make_rng

__all__ = ["simulate_yule_tree", "random_foreground"]


def simulate_yule_tree(
    n_species: int,
    seed: RngLike = None,
    mean_branch_length: float = 0.08,
    name_prefix: str = "S",
    unrooted: bool = True,
) -> Tree:
    """Simulate a Yule topology with exponential branch lengths.

    Parameters
    ----------
    n_species:
        Number of extant taxa (≥ 3 when ``unrooted``; ≥ 2 otherwise).
    seed:
        Seed or generator; fixed seeds make datasets reproducible, the
        same policy the paper applies to its RNG (§IV).
    mean_branch_length:
        Mean of the exponential branch-length distribution, in expected
        substitutions per codon.  The Selectome alignments are within-
        vertebrate, so the default is a typical short divergence.
    name_prefix:
        Taxa are named ``{prefix}1 .. {prefix}n``.
    unrooted:
        Collapse the root into a trifurcation (2s−3 branches, the count
        the paper quotes) — what CodeML analyses.

    Returns
    -------
    Tree
        Freshly indexed tree; no foreground branch is marked yet.
    """
    if n_species < (3 if unrooted else 2):
        raise ValueError(f"need at least {3 if unrooted else 2} species, got {n_species}")
    rng = make_rng(seed)

    # Yule process: start from a cherry, repeatedly split a random tip.
    root = Node()
    tips = [root.add_child(Node()), root.add_child(Node())]
    while len(tips) < n_species:
        chosen = tips.pop(int(rng.integers(len(tips))))
        tips.append(chosen.add_child(Node()))
        tips.append(chosen.add_child(Node()))
    for i, tip in enumerate(tips, start=1):
        tip.name = f"{name_prefix}{i}"

    tree = Tree(root)
    for node in tree.nodes:
        if not node.is_root:
            node.length = float(rng.exponential(mean_branch_length))
    if unrooted:
        tree.unroot()
    tree.validate_branch_lengths()
    return tree


def random_foreground(tree: Tree, seed: RngLike = None, internal_only: bool = False) -> Node:
    """Mark a uniformly random branch as foreground and return its node.

    ``internal_only`` restricts the choice to internal branches, which is
    the common genome-scan configuration (testing ancestral lineages).
    """
    rng = make_rng(seed)
    candidates = [
        n
        for n in tree.nodes
        if not n.is_root and (not internal_only or not n.is_leaf)
    ]
    if not candidates:
        raise ValueError("tree has no eligible branch to mark")
    chosen = candidates[int(rng.integers(len(candidates)))]
    tree.mark_foreground(chosen)
    return chosen
