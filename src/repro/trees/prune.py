"""Pruning a tree down to a taxon subset.

Figure 3 of the paper subsamples dataset iv from 95 down to 15 species
and re-runs the analysis at every size.  Restricting a tree to a taxon
subset requires removing the other leaves, then *suppressing* the
resulting unifurcate nodes (merging their two incident branches, summing
lengths and OR-ing foreground marks) so the tree stays strictly binary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.trees.tree import Node, Tree

__all__ = ["prune_to_taxa"]


def prune_to_taxa(tree: Tree, keep: Sequence[str]) -> Tree:
    """Return a new tree restricted to the taxa in ``keep``.

    Branch lengths along suppressed paths are summed, so patristic
    distances between kept taxa are preserved exactly.  A foreground
    mark anywhere on a merged path marks the merged branch.  The root is
    collapsed to the standard trifurcation when the restriction leaves
    it with two children (and at least three taxa remain).

    Raises
    ------
    ValueError
        If ``keep`` contains unknown or duplicate names, or fewer than
        two taxa.
    """
    keep_list = list(keep)
    if len(set(keep_list)) != len(keep_list):
        raise ValueError("duplicate taxa in keep list")
    known = set(tree.leaf_names())
    missing = [name for name in keep_list if name not in known]
    if missing:
        raise ValueError(f"taxa not in tree: {missing}")
    if len(keep_list) < 2:
        raise ValueError("need at least two taxa to keep")
    keep_set = set(keep_list)

    def rebuild(node: Node) -> Node | None:
        """Copy the subtree containing kept taxa; None when empty."""
        if node.is_leaf:
            if node.name not in keep_set:
                return None
            return Node(name=node.name, length=node.length, foreground=node.foreground)
        surviving = [child for child in map(rebuild, node.children) if child is not None]
        if not surviving:
            return None
        if len(surviving) == 1:
            # Unifurcation: merge this node's branch into the child's.
            child = surviving[0]
            child.length += node.length
            child.foreground = child.foreground or node.foreground
            return child
        fresh = Node(name=node.name, length=node.length, foreground=node.foreground)
        for child in surviving:
            fresh.add_child(child)
        return fresh

    new_root = rebuild(tree.root)
    if new_root is None or new_root.is_leaf:
        raise ValueError("pruning removed the entire tree structure")
    new_root.length = 0.0
    new_root.foreground = False
    new_root.parent = None
    pruned = Tree(new_root)
    if len(pruned.root.children) == 2 and pruned.n_leaves >= 3:
        pruned.unroot()
    return pruned
