"""Ordinary-least-squares branch lengths on a fixed topology.

Given a matrix of pairwise distances (here: NG86 total divergences from
:mod:`repro.alignment.distances`), the branch lengths minimising
``Σ (path_length(a,b) − d(a,b))²`` solve a linear least-squares problem
over the leaf-pair × branch incidence matrix.  This is the classical
Fitch–Margoliash/OLS construction; CodeML uses pairwise distances the
same way to seed its optimiser, and :func:`repro.optimize.ml.fit_model`
accepts the result as a data-driven start (``start_lengths="ng86"``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.trees.tree import Tree

__all__ = ["branch_incidence_matrix", "least_squares_branch_lengths"]


def branch_incidence_matrix(tree: Tree) -> np.ndarray:
    """0/1 matrix: rows = leaf pairs (i<j by leaf index), cols = branches.

    Entry (pair, branch) is 1 when the branch lies on the path between
    the pair's two leaves.  Branch columns follow the
    :meth:`Tree.branch_lengths` ordering (non-root nodes by index).
    """
    leaves = tree.leaves
    n_leaves = len(leaves)
    non_root = [node for node in tree.nodes if not node.is_root]
    col_of = {node.index: c for c, node in enumerate(non_root)}

    # Leaf sets under each branch (child side); a branch is on the i-j
    # path iff it separates i from j.
    below: Dict[int, frozenset] = {}
    for node in tree.postorder():
        if node.is_leaf:
            below[node.index] = frozenset([node.index])
        else:
            below[node.index] = frozenset().union(*(below[c.index] for c in node.children))

    n_pairs = n_leaves * (n_leaves - 1) // 2
    a = np.zeros((n_pairs, len(non_root)))
    row = 0
    for i in range(n_leaves):
        for j in range(i + 1, n_leaves):
            for node in non_root:
                side = below[node.index]
                if (leaves[i].index in side) != (leaves[j].index in side):
                    a[row, col_of[node.index]] = 1.0
            row += 1
    return a


def least_squares_branch_lengths(
    tree: Tree,
    distances: np.ndarray,
    min_length: float = 1e-6,
    incidence: Optional[np.ndarray] = None,
) -> np.ndarray:
    """OLS branch lengths fitting the pairwise ``distances``.

    Parameters
    ----------
    tree:
        Topology; only its structure is used.
    distances:
        Symmetric ``(n_leaves, n_leaves)`` matrix ordered like
        ``tree.leaves``.
    min_length:
        Solutions are clipped below at this value — OLS can go slightly
        negative on noisy distances, and downstream code requires
        non-negative lengths.
    incidence:
        Precomputed :func:`branch_incidence_matrix` (recomputed when
        omitted).

    Returns
    -------
    numpy.ndarray
        Branch lengths in :meth:`Tree.branch_lengths` order.
    """
    n_leaves = tree.n_leaves
    distances = np.asarray(distances, dtype=float)
    if distances.shape != (n_leaves, n_leaves):
        raise ValueError(
            f"distance matrix shape {distances.shape} does not match {n_leaves} leaves"
        )
    if not np.allclose(distances, distances.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    a = incidence if incidence is not None else branch_incidence_matrix(tree)
    d = np.array(
        [distances[i, j] for i in range(n_leaves) for j in range(i + 1, n_leaves)]
    )
    solution, *_ = np.linalg.lstsq(a, d, rcond=None)
    return np.maximum(solution, min_length)
