"""Rooted phylogenetic trees with foreground-branch marks.

Each :class:`Node` owns the branch *above* it (connecting it to its
parent): ``length`` is that branch's length and ``foreground`` marks it
as the branch-site model's foreground branch.  The root has no branch.

The likelihood engines consume trees through :meth:`Tree.postorder` and
the flat :meth:`Tree.branch_table`, so they never walk the linked
structure in their hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Node", "Tree"]


@dataclass
class Node:
    """One tree node plus the branch connecting it to its parent.

    Attributes
    ----------
    name:
        Leaf/taxon label; internal nodes may be unnamed (``""``).
    length:
        Length of the branch above this node, in expected substitutions
        per codon; ``0.0`` and unset are both represented by the value
        (the root's length is ignored).
    foreground:
        True when the branch above this node is the foreground branch.
    children:
        Child nodes, in input order.
    """

    name: str = ""
    length: float = 0.0
    foreground: bool = False
    children: List["Node"] = field(default_factory=list)
    parent: Optional["Node"] = field(default=None, repr=False, compare=False)
    #: Stable index assigned by :class:`Tree` (leaves first, then
    #: internal nodes in post-order); -1 until the tree indexes it.
    index: int = field(default=-1, compare=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def add_child(self, child: "Node") -> "Node":
        """Attach ``child`` (re-parenting it) and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def postorder(self) -> Iterator["Node"]:
        """Iterative post-order traversal of the subtree rooted here."""
        stack: List[Tuple[Node, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def preorder(self) -> Iterator["Node"]:
        """Iterative pre-order traversal of the subtree rooted here."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                stack.append(child)


class Tree:
    """A rooted tree with stable node indexing and foreground bookkeeping.

    Indexing: leaves receive indices ``0 .. n_leaves-1`` in post-order
    encounter order; internal nodes continue from ``n_leaves`` in
    post-order, so every child index is smaller than its parent's — the
    property Felsenstein pruning relies on to run as a flat loop.
    """

    def __init__(self, root: Node) -> None:
        if root.parent is not None:
            raise ValueError("the tree root must not have a parent")
        self.root = root
        self._reindex()

    # ------------------------------------------------------------------
    # Structure and indexing
    # ------------------------------------------------------------------
    def _reindex(self) -> None:
        leaves = [n for n in self.root.postorder() if n.is_leaf]
        internals = [n for n in self.root.postorder() if not n.is_leaf]
        self._nodes: List[Node] = leaves + internals
        for i, node in enumerate(self._nodes):
            node.index = i
        names = [leaf.name for leaf in leaves]
        if any(not name for name in names):
            raise ValueError("every leaf must be named")
        if len(set(names)) != len(names):
            raise ValueError("duplicate leaf names in tree")
        self._leaves = leaves

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes, leaves first then internal nodes in post-order."""
        return tuple(self._nodes)

    @property
    def leaves(self) -> Sequence[Node]:
        return tuple(self._leaves)

    @property
    def n_leaves(self) -> int:
        return len(self._leaves)

    @property
    def n_branches(self) -> int:
        """Number of branches (every node except the root owns one)."""
        return len(self._nodes) - 1

    def postorder(self) -> Iterator[Node]:
        return self.root.postorder()

    def preorder(self) -> Iterator[Node]:
        return self.root.preorder()

    def leaf_names(self) -> List[str]:
        return [leaf.name for leaf in self._leaves]

    def find(self, name: str) -> Node:
        """Return the unique node with the given name."""
        matches = [n for n in self._nodes if n.name == name]
        if not matches:
            raise KeyError(f"no node named {name!r}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous node name {name!r}")
        return matches[0]

    def is_binary(self) -> bool:
        """True when every internal node has 2 children (root may have 2-3)."""
        for node in self.root.postorder():
            if node.is_leaf:
                continue
            limit = 3 if node.is_root else 2
            if not (2 <= len(node.children) <= limit):
                return False
        return True

    def validate_branch_lengths(self) -> None:
        """Raise :class:`ValueError` on negative or non-finite lengths."""
        for node in self._nodes:
            if node.is_root:
                continue
            if not (node.length >= 0.0) or node.length != node.length:
                raise ValueError(
                    f"branch above {node.name or f'node#{node.index}'} has invalid "
                    f"length {node.length!r}"
                )

    # ------------------------------------------------------------------
    # Foreground-branch bookkeeping (paper Fig. 1, Table I)
    # ------------------------------------------------------------------
    def foreground_nodes(self) -> List[Node]:
        """Nodes whose parent branch is marked as foreground."""
        return [n for n in self._nodes if n.foreground and not n.is_root]

    def mark_foreground(self, target: "Node | str", *, clear: bool = True) -> Node:
        """Mark the branch above ``target`` (a node or node name) as foreground.

        With ``clear`` (default) any previous marks are removed first, so
        the tree has exactly one foreground branch afterwards — the
        branch-site test examines one branch at a time (§I-A).
        """
        node = self.find(target) if isinstance(target, str) else target
        if node.is_root:
            raise ValueError("the root has no branch to mark as foreground")
        if clear:
            for n in self._nodes:
                n.foreground = False
        node.foreground = True
        return node

    def require_single_foreground(self) -> Node:
        """Return the unique foreground branch or raise :class:`ValueError`."""
        marked = self.foreground_nodes()
        if len(marked) != 1:
            raise ValueError(
                f"branch-site model A requires exactly one foreground branch, found {len(marked)}"
            )
        return marked[0]

    # ------------------------------------------------------------------
    # Flat views for the engines
    # ------------------------------------------------------------------
    def branch_table(self) -> List[Tuple[int, int, float, bool]]:
        """Flat branch list: ``(child_index, parent_index, length, foreground)``.

        Ordered so child rows appear before any row whose child is their
        parent (post-order), ready for a loop-based pruning pass.
        """
        rows = []
        for node in self.root.postorder():
            if node.is_root:
                continue
            rows.append((node.index, node.parent.index, float(node.length), node.foreground))
        return rows

    def branch_lengths(self) -> List[float]:
        """Branch lengths ordered by child-node index (root excluded)."""
        return [n.length for n in self._nodes if not n.is_root]

    def set_branch_lengths(self, lengths: Sequence[float]) -> None:
        """Inverse of :meth:`branch_lengths`; validates count and values."""
        targets = [n for n in self._nodes if not n.is_root]
        if len(lengths) != len(targets):
            raise ValueError(f"expected {len(targets)} branch lengths, got {len(lengths)}")
        for node, length in zip(targets, lengths):
            length = float(length)
            if not length >= 0.0:
                raise ValueError(f"negative branch length {length}")
            node.length = length

    def total_tree_length(self) -> float:
        return sum(n.length for n in self._nodes if not n.is_root)

    # ------------------------------------------------------------------
    # Rerooting / copying
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Deep structural copy (marks and lengths preserved)."""

        def clone(node: Node) -> Node:
            fresh = Node(name=node.name, length=node.length, foreground=node.foreground)
            for child in node.children:
                fresh.add_child(clone(child))
            return fresh

        return Tree(clone(self.root))

    def unroot(self) -> "Tree":
        """Collapse a bifurcating root into a trifurcation (in place).

        Time-reversible models make the likelihood invariant to root
        placement (the pulley principle), so CodeML analyses unrooted
        trees; a 2-child root over-parameterises the two root branches.
        The two root-adjacent branches are merged: the child with more
        descendants absorbs the other's length and an OR of the marks.
        No-op when the root already has ≥3 children.
        """
        if len(self.root.children) != 2:
            return self
        left, right = self.root.children
        # Absorb into the internal child so leaves keep their own branch.
        keep, fold = (left, right) if not left.is_leaf else (right, left)
        if keep.is_leaf:
            raise ValueError("cannot unroot a two-leaf tree")
        fold.length += keep.length
        fold.foreground = fold.foreground or keep.foreground
        keep.parent = None
        keep.name = keep.name or self.root.name
        keep.length = 0.0
        keep.foreground = False
        self.root.children = []
        keep.add_child(fold)
        self.root = keep
        self._reindex()
        return self

    def __repr__(self) -> str:
        return f"Tree(n_leaves={self.n_leaves}, n_branches={self.n_branches})"


def map_branches(tree: Tree, fn: Callable[[Node], float]) -> None:
    """Apply ``fn`` to every non-root node and assign its branch length."""
    for node in tree.nodes:
        if not node.is_root:
            node.length = float(fn(node))
