"""Tree statistics: patristic distances, depths, imbalance.

Shared analytical helpers used by tests, examples, and the dataset
generator diagnostics — notably the patristic distance matrix, which is
the quantity the OLS branch-length fit (:mod:`repro.trees.least_squares`)
inverts and the quantity :func:`repro.trees.prune.prune_to_taxa`
guarantees to preserve.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.trees.tree import Node, Tree

__all__ = ["patristic_distance_matrix", "leaf_depths", "colless_index"]


def patristic_distance_matrix(tree: Tree) -> np.ndarray:
    """Pairwise leaf path-length matrix ordered like ``tree.leaves``.

    Computed in one post-order pass: when a node joins subtrees, every
    cross-subtree leaf pair's path goes through it, with distances
    ``depth_a + depth_b`` relative to the node.
    """
    n = tree.n_leaves
    dist = np.zeros((n, n))
    # For each node: map leaf index -> distance from that leaf up to node.
    below: Dict[int, Dict[int, float]] = {}
    for node in tree.postorder():
        if node.is_leaf:
            below[node.index] = {node.index: 0.0}
            continue
        merged: Dict[int, float] = {}
        child_maps = []
        for child in node.children:
            child_map = {
                leaf: d + child.length for leaf, d in below.pop(child.index).items()
            }
            child_maps.append(child_map)
        for i, map_a in enumerate(child_maps):
            for map_b in child_maps[i + 1 :]:
                for leaf_a, da in map_a.items():
                    for leaf_b, db in map_b.items():
                        dist[leaf_a, leaf_b] = dist[leaf_b, leaf_a] = da + db
            merged.update(map_a)
        below[node.index] = merged
    return dist


def leaf_depths(tree: Tree) -> np.ndarray:
    """Root-to-leaf path lengths, ordered like ``tree.leaves``."""
    depths = np.zeros(tree.n_leaves)

    def walk(node: Node, acc: float) -> None:
        if node.is_leaf:
            depths[node.index] = acc
            return
        for child in node.children:
            walk(child, acc + child.length)

    walk(tree.root, 0.0)
    return depths


def colless_index(tree: Tree) -> int:
    """Colless imbalance: Σ |left − right| leaf counts over binary splits.

    0 for perfectly balanced trees; (n−1)(n−2)/2 for caterpillars.
    Nodes with other than two children (the unrooted root trifurcation)
    contribute the pairwise sum of absolute differences.
    """
    sizes: Dict[int, int] = {}
    total = 0
    for node in tree.postorder():
        if node.is_leaf:
            sizes[node.index] = 1
            continue
        counts = [sizes[c.index] for c in node.children]
        sizes[node.index] = sum(counts)
        for i in range(len(counts)):
            for j in range(i + 1, len(counts)):
                total += abs(counts[i] - counts[j])
    return total
