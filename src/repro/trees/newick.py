"""Newick parsing and writing with PAML branch/clade labels.

CodeML identifies the branch to test with a ``#1`` suffix in the Newick
string (paper Fig. 1), e.g. ``((A,B) #1, C);``; a ``$1`` suffix marks an
entire clade (every branch inside it, plus its stem).  Both are parsed
here; the writer emits ``#1`` on foreground branches so parse→write is a
round trip.

Grammar (tolerant of whitespace and ``[...]`` comments)::

    tree    := subtree ";"
    subtree := leaf | "(" subtree ("," subtree)+ ")" [name]
    suffix  := [name] [":" length] ["#" int | "$" int]

Quoted labels (``'...'``) are supported; underscores inside unquoted
labels are kept verbatim (no space conversion).
"""

from __future__ import annotations

from typing import List, Optional

from repro.trees.tree import Node, Tree

__all__ = ["parse_newick", "write_newick", "NewickError"]


class NewickError(ValueError):
    """Raised on malformed Newick input, with position information."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at character {position})")
        self.position = position


class _Tokenizer:
    """Character cursor over a Newick string, skipping comments/whitespace."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip_irrelevant(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "[":
                end = self.text.find("]", self.pos)
                if end == -1:
                    raise NewickError("unterminated [comment]", self.pos)
                self.pos = end + 1
            else:
                return

    def peek(self) -> str:
        self._skip_irrelevant()
        if self.pos >= len(self.text):
            raise NewickError("unexpected end of input", self.pos)
        return self.text[self.pos]

    def at_end(self) -> bool:
        self._skip_irrelevant()
        return self.pos >= len(self.text)

    def take(self, expected: str) -> None:
        ch = self.peek()
        if ch != expected:
            raise NewickError(f"expected {expected!r}, found {ch!r}", self.pos)
        self.pos += 1

    def read_label(self) -> str:
        self._skip_irrelevant()
        if self.pos < len(self.text) and self.text[self.pos] == "'":
            end = self.text.find("'", self.pos + 1)
            if end == -1:
                raise NewickError("unterminated quoted label", self.pos)
            label = self.text[self.pos + 1 : end]
            self.pos = end + 1
            return label
        start = self.pos
        stop_chars = set("():,;#$[]'")
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in stop_chars or ch.isspace():
                break
            self.pos += 1
        return self.text[start:self.pos]

    def read_number(self) -> float:
        self._skip_irrelevant()
        start = self.pos
        allowed = set("0123456789+-.eE")
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        token = self.text[start:self.pos]
        try:
            return float(token)
        except ValueError:
            raise NewickError(f"invalid number {token!r}", start) from None

    def read_int(self) -> int:
        self._skip_irrelevant()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        token = self.text[start:self.pos]
        if not token:
            raise NewickError("expected an integer label", start)
        return int(token)


def _parse_subtree(tok: _Tokenizer, clade_marks: List[Node]) -> Node:
    if tok.peek() == "(":
        tok.take("(")
        node = Node()
        node.add_child(_parse_subtree(tok, clade_marks))
        while tok.peek() == ",":
            tok.take(",")
            node.add_child(_parse_subtree(tok, clade_marks))
        tok.take(")")
        node.name = tok.read_label()
    else:
        name = tok.read_label()
        if not name:
            raise NewickError("expected a taxon label", tok.pos)
        node = Node(name=name)
    # Suffix items — ":length" and "#k"/"$k" marks — in either order,
    # since PAML writes both "(A,B)#1:0.1" and "(A,B):0.1 #1".
    seen_length = seen_mark = False
    while not tok.at_end() and tok.peek() in ":#$":
        item = tok.peek()
        if item == ":":
            if seen_length:
                raise NewickError("duplicate branch length", tok.pos)
            seen_length = True
            tok.take(":")
            node.length = tok.read_number()
            if node.length < 0:
                raise NewickError(f"negative branch length {node.length}", tok.pos)
        else:
            if seen_mark:
                raise NewickError("duplicate branch mark", tok.pos)
            seen_mark = True
            tok.take(item)
            label = tok.read_int()
            if label > 0:
                if item == "#":
                    node.foreground = True
                else:
                    clade_marks.append(node)
    return node


def parse_newick(text: str) -> Tree:
    """Parse a Newick string (PAML ``#``/``$`` labels understood) into a Tree.

    ``$k`` clade marks are expanded to foreground marks on the stem
    branch and every branch within the clade, matching PAML semantics.
    """
    tok = _Tokenizer(text)
    clade_marks: List[Node] = []
    root = _parse_subtree(tok, clade_marks)
    if tok.at_end():
        raise NewickError("missing terminating ';'", tok.pos)
    tok.take(";")
    if not tok.at_end():
        raise NewickError("trailing characters after ';'", tok.pos)
    for clade_root in clade_marks:
        for node in clade_root.postorder():
            node.foreground = True
    tree = Tree(root)
    tree.root.foreground = False  # the root owns no branch
    return tree


def _format_length(length: float) -> str:
    return f"{length:.6g}"


def _write_subtree(node: Node, *, lengths: bool, marks: bool) -> str:
    if node.is_leaf:
        out = node.name
    else:
        inner = ",".join(_write_subtree(c, lengths=lengths, marks=marks) for c in node.children)
        out = f"({inner}){node.name}"
    if lengths and node.parent is not None:
        out += f":{_format_length(node.length)}"
    if marks and node.foreground and node.parent is not None:
        out += " #1"
    return out


def write_newick(tree: Tree, *, lengths: bool = True, marks: bool = True) -> str:
    """Serialise a tree to Newick, optionally with lengths and ``#1`` marks."""
    return _write_subtree(tree.root, lengths=lengths, marks=marks) + ";"
