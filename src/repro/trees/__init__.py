"""Phylogenetic tree substrate: structures, Newick I/O, simulation.

CodeML's input is a tree in Newick format with the branch to test for
positive selection marked ``#1`` (paper Fig. 1).  This subpackage
provides the tree data structure with foreground-branch marks, a Newick
parser/writer that understands PAML's ``#`` (branch) and ``$`` (clade)
labels, and Yule/birth–death tree simulation used to build the synthetic
Table II datasets.
"""

from repro.trees.newick import parse_newick, write_newick
from repro.trees.prune import prune_to_taxa
from repro.trees.simulate import simulate_yule_tree
from repro.trees.stats import colless_index, leaf_depths, patristic_distance_matrix
from repro.trees.tree import Node, Tree

__all__ = [
    "Node",
    "Tree",
    "colless_index",
    "leaf_depths",
    "parse_newick",
    "patristic_distance_matrix",
    "prune_to_taxa",
    "simulate_yule_tree",
    "write_newick",
]
