"""Genetic codes and the sense-codon state space.

Codon models operate on the *sense* codons only (stop codons are excluded
from the state space): 61 states under the universal code, which is where
the paper's ``61 × 61`` substitution matrix comes from.  We follow PAML's
nucleotide ordering ``T, C, A, G`` so codon indices match CodeML's
internal numbering (codon ``i`` has index ``16*n1 + 4*n2 + n3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

#: Nucleotide alphabet in PAML order; index(T)=0, C=1, A=2, G=3.
NUCLEOTIDES = "TCAG"

_NUC_INDEX = {nuc: i for i, nuc in enumerate(NUCLEOTIDES)}

#: Purines / pyrimidines for the transition-transversion distinction.
PURINES = frozenset("AG")
PYRIMIDINES = frozenset("TC")

# NCBI translation table 1 (standard) expressed over the TCAG ordering.
_UNIVERSAL_AA = (
    "FFLLSSSSYY**CC*W"  # TTT..TGG
    "LLLLPPPPHHQQRRRR"  # CTT..CGG
    "IIIMTTTTNNKKSSRR"  # ATT..AGG
    "VVVVAAAADDEEGGGG"  # GTT..GGG
)

# NCBI translation table 2 (vertebrate mitochondrial): AGA/AGG are stops,
# ATA codes Met, TGA codes Trp -> 60 sense codons.
_VERT_MITO_AA = (
    "FFLLSSSSYY**CCWW"
    "LLLLPPPPHHQQRRRR"
    "IIMMTTTTNNKKSS**"
    "VVVVAAAADDEEGGGG"
)


def _all_codons() -> Tuple[str, ...]:
    return tuple(a + b + c for a in NUCLEOTIDES for b in NUCLEOTIDES for c in NUCLEOTIDES)


@dataclass(frozen=True, eq=False)
class GeneticCode:
    """A genetic code: the map codon → amino acid, and the sense-codon space.

    Instances compare (and hash) by identity: codes are module-level
    singletons, and identity semantics keep them usable as ``lru_cache``
    keys despite holding a dict.

    Attributes
    ----------
    name:
        Human-readable code name, e.g. ``"universal"``.
    ncbi_table:
        NCBI translation table number (1 = standard, 2 = vertebrate mito).
    codon_to_aa:
        Map from all 64 codon strings to one-letter amino acids, with
        ``"*"`` for stop codons.
    """

    name: str
    ncbi_table: int
    codon_to_aa: Dict[str, str] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.codon_to_aa) != 64:
            raise ValueError(f"genetic code must define all 64 codons, got {len(self.codon_to_aa)}")

    @property
    def sense_codons(self) -> Tuple[str, ...]:
        """Sense codons in TCAG order (61 for the universal code)."""
        return _sense_codons_cached(self)

    @property
    def stop_codons(self) -> Tuple[str, ...]:
        return tuple(c for c in _all_codons() if self.codon_to_aa[c] == "*")

    @property
    def n_states(self) -> int:
        """Dimension of the codon state space (61 for the universal code)."""
        return len(self.sense_codons)

    @property
    def codon_index(self) -> Dict[str, int]:
        """Map sense codon → state index in ``[0, n_states)``."""
        return _codon_index_cached(self)

    def is_stop(self, codon: str) -> bool:
        try:
            return self.codon_to_aa[codon.upper()] == "*"
        except KeyError:
            raise ValueError(f"not a codon: {codon!r}") from None

    def translate(self, codon: str) -> str:
        """One-letter amino acid for ``codon`` (``"*"`` for stops)."""
        try:
            return self.codon_to_aa[codon.upper()]
        except KeyError:
            raise ValueError(f"not a codon: {codon!r}") from None

    def translate_sequence(self, seq: str) -> str:
        """Translate a nucleotide string whose length is a multiple of 3."""
        seq = seq.upper().replace("U", "T")
        if len(seq) % 3 != 0:
            raise ValueError(f"sequence length {len(seq)} is not a multiple of 3")
        return "".join(self.translate(seq[i : i + 3]) for i in range(0, len(seq), 3))

    def synonymous(self, codon_a: str, codon_b: str) -> bool:
        """True if the two sense codons encode the same amino acid."""
        aa, ab = self.translate(codon_a), self.translate(codon_b)
        if "*" in (aa, ab):
            raise ValueError("synonymy is undefined for stop codons")
        return aa == ab


@lru_cache(maxsize=8)
def _sense_codons_cached(code: GeneticCode) -> Tuple[str, ...]:
    return tuple(c for c in _all_codons() if code.codon_to_aa[c] != "*")


@lru_cache(maxsize=8)
def _codon_index_cached(code: GeneticCode) -> Dict[str, int]:
    return {c: i for i, c in enumerate(code.sense_codons)}


def _make_code(name: str, ncbi_table: int, aa_string: str) -> GeneticCode:
    codons = _all_codons()
    if len(aa_string) != 64:
        raise ValueError("amino acid string must have 64 entries")
    return GeneticCode(name=name, ncbi_table=ncbi_table, codon_to_aa=dict(zip(codons, aa_string)))


#: The standard genetic code (NCBI table 1); 61 sense codons.
UNIVERSAL = _make_code("universal", 1, _UNIVERSAL_AA)

#: Vertebrate mitochondrial code (NCBI table 2); 60 sense codons.
VERTEBRATE_MITOCHONDRIAL = _make_code("vertebrate-mitochondrial", 2, _VERT_MITO_AA)

_CODES = {
    "universal": UNIVERSAL,
    "standard": UNIVERSAL,
    "vertebrate-mitochondrial": VERTEBRATE_MITOCHONDRIAL,
    "vertmt": VERTEBRATE_MITOCHONDRIAL,
}


def get_genetic_code(name: str = "universal") -> GeneticCode:
    """Look up a genetic code by name (``"universal"`` or ``"vertmt"``)."""
    try:
        return _CODES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown genetic code {name!r}; available: {sorted(set(_CODES))}"
        ) from None


@lru_cache(maxsize=None)
def nucleotide_diff_positions(codon_a: str, codon_b: str) -> Tuple[int, ...]:
    """Positions (0-2) at which two codons differ."""
    if len(codon_a) != 3 or len(codon_b) != 3:
        raise ValueError("codons must have length 3")
    return tuple(k for k in range(3) if codon_a[k] != codon_b[k])


def is_transition(nuc_a: str, nuc_b: str) -> bool:
    """True if ``nuc_a → nuc_b`` is a transition (purine↔purine or pyr↔pyr)."""
    if nuc_a == nuc_b:
        raise ValueError("identical nucleotides have no substitution type")
    if nuc_a not in _NUC_INDEX or nuc_b not in _NUC_INDEX:
        raise ValueError(f"not nucleotides: {nuc_a!r}, {nuc_b!r}")
    return (nuc_a in PURINES) == (nuc_b in PURINES)


def codon_index_array(code: GeneticCode) -> np.ndarray:
    """Indices of the sense codons within the full 64-codon TCAG grid.

    Useful for mapping 64-long per-position frequency products down to
    the sense-codon state space (see F1x4/F3x4 estimators).
    """
    all64 = _all_codons()
    sense = set(code.sense_codons)
    return np.array([i for i, c in enumerate(all64) if c in sense], dtype=np.intp)
