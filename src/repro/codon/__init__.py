"""Codon machinery: genetic codes, substitution classification, frequencies, Q matrices.

This subpackage is the model substrate underneath the branch-site model:
it defines the 61-state codon alphabet (universal code), classifies
single-nucleotide codon changes as transitions/transversions and
synonymous/non-synonymous (paper Eq. 1), estimates equilibrium codon
frequencies from an alignment (CodeML's ``CodonFreq`` options), and
assembles the reversible instantaneous rate matrix ``Q = S Π``.
"""

from repro.codon.classify import CodonPairClass, PairKind, classify_pair, classification_table
from repro.codon.frequencies import (
    codon_frequencies_equal,
    codon_frequencies_f1x4,
    codon_frequencies_f3x4,
    codon_frequencies_f61,
    estimate_codon_frequencies,
)
from repro.codon.genetic_code import (
    GeneticCode,
    NUCLEOTIDES,
    UNIVERSAL,
    VERTEBRATE_MITOCHONDRIAL,
    get_genetic_code,
)
from repro.codon.matrix import CodonRateMatrix, build_rate_matrix, exchangeability_matrix

__all__ = [
    "CodonPairClass",
    "CodonRateMatrix",
    "GeneticCode",
    "NUCLEOTIDES",
    "PairKind",
    "UNIVERSAL",
    "VERTEBRATE_MITOCHONDRIAL",
    "build_rate_matrix",
    "classification_table",
    "classify_pair",
    "codon_frequencies_equal",
    "codon_frequencies_f1x4",
    "codon_frequencies_f3x4",
    "codon_frequencies_f61",
    "estimate_codon_frequencies",
    "exchangeability_matrix",
    "get_genetic_code",
]
