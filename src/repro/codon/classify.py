"""Classification of codon pairs for the rate matrix of paper Eq. 1.

Codon models in CodeML only allow substitutions that change a single
nucleotide; such a change is either a *transition* or a *transversion*,
and either *synonymous* or *non-synonymous*.  The instantaneous rate from
codon ``i`` to ``j`` is then::

    q_ij = 0                          (≥2 nucleotide differences)
         = pi_j                       (synonymous transversion)
         = kappa * pi_j               (synonymous transition)
         = omega * pi_j               (non-synonymous transversion)
         = omega * kappa * pi_j       (non-synonymous transition)

This module precomputes, for a genetic code, the full classification
table used by :mod:`repro.codon.matrix` to assemble ``Q`` vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

import numpy as np

from repro.codon.genetic_code import (
    GeneticCode,
    is_transition,
    nucleotide_diff_positions,
)

__all__ = ["PairKind", "CodonPairClass", "classify_pair", "classification_table"]


class PairKind(Enum):
    """The five Eq. 1 cases for an ordered codon pair ``(i, j)``, ``i != j``."""

    MULTIPLE = "multiple"  # two or more nucleotide differences: rate 0
    SYN_TRANSVERSION = "syn_tv"
    SYN_TRANSITION = "syn_ts"
    NONSYN_TRANSVERSION = "nonsyn_tv"
    NONSYN_TRANSITION = "nonsyn_ts"


@dataclass(frozen=True)
class CodonPairClass:
    """Full classification of one ordered pair of sense codons."""

    kind: PairKind
    #: Position (0-2) of the single differing nucleotide; None for MULTIPLE.
    position: int | None
    #: True when the change is a transition; None for MULTIPLE.
    transition: bool | None
    #: True when the change is synonymous; None for MULTIPLE.
    synonymous: bool | None

    @property
    def needs_kappa(self) -> bool:
        return bool(self.transition)

    @property
    def needs_omega(self) -> bool:
        return self.synonymous is False


def classify_pair(codon_a: str, codon_b: str, code: GeneticCode) -> CodonPairClass:
    """Classify the ordered sense-codon pair ``codon_a → codon_b``.

    Raises :class:`ValueError` for identical codons or stop codons — those
    never appear as off-diagonal Q entries.
    """
    codon_a, codon_b = codon_a.upper(), codon_b.upper()
    if codon_a == codon_b:
        raise ValueError("classify_pair requires two distinct codons")
    if code.is_stop(codon_a) or code.is_stop(codon_b):
        raise ValueError("stop codons are outside the codon-model state space")
    diffs = nucleotide_diff_positions(codon_a, codon_b)
    if len(diffs) != 1:
        return CodonPairClass(PairKind.MULTIPLE, None, None, None)
    pos = diffs[0]
    ts = is_transition(codon_a[pos], codon_b[pos])
    syn = code.synonymous(codon_a, codon_b)
    if syn and ts:
        kind = PairKind.SYN_TRANSITION
    elif syn:
        kind = PairKind.SYN_TRANSVERSION
    elif ts:
        kind = PairKind.NONSYN_TRANSITION
    else:
        kind = PairKind.NONSYN_TRANSVERSION
    return CodonPairClass(kind, pos, ts, syn)


@lru_cache(maxsize=8)
def classification_table(code: GeneticCode) -> "PairTable":
    """Precompute boolean masks over the ``n × n`` sense-codon grid.

    The masks drive vectorized Q assembly; they are cached per genetic
    code because they never change.
    """
    codons = code.sense_codons
    n = len(codons)
    single = np.zeros((n, n), dtype=bool)
    transition = np.zeros((n, n), dtype=bool)
    synonymous = np.zeros((n, n), dtype=bool)
    for i, ci in enumerate(codons):
        for j, cj in enumerate(codons):
            if i == j:
                continue
            cls = classify_pair(ci, cj, code)
            if cls.kind is PairKind.MULTIPLE:
                continue
            single[i, j] = True
            transition[i, j] = bool(cls.transition)
            synonymous[i, j] = bool(cls.synonymous)
    return PairTable(single=single, transition=transition, synonymous=synonymous)


@dataclass(frozen=True)
class PairTable:
    """Boolean masks over ordered sense-codon pairs (diagonal excluded).

    ``transition`` and ``synonymous`` are only meaningful where ``single``
    is True.  All three matrices are symmetric — substitution *type* does
    not depend on direction — which is what makes ``Q = S Π`` reversible
    by construction (paper Eq. 2).
    """

    single: np.ndarray
    transition: np.ndarray
    synonymous: np.ndarray

    def __post_init__(self) -> None:
        for name in ("single", "transition", "synonymous"):
            m = getattr(self, name)
            if not np.array_equal(m, m.T):
                raise ValueError(f"pair table mask {name!r} must be symmetric")

    @property
    def n_states(self) -> int:
        return self.single.shape[0]

    def count(self, kind: PairKind) -> int:
        """Number of ordered pairs of the given kind."""
        if kind is PairKind.MULTIPLE:
            n = self.n_states
            return n * (n - 1) - int(self.single.sum())
        if kind is PairKind.SYN_TRANSITION:
            mask = self.single & self.transition & self.synonymous
        elif kind is PairKind.SYN_TRANSVERSION:
            mask = self.single & ~self.transition & self.synonymous
        elif kind is PairKind.NONSYN_TRANSITION:
            mask = self.single & self.transition & ~self.synonymous
        else:
            mask = self.single & ~self.transition & ~self.synonymous
        return int(mask.sum())
