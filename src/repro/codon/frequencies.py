"""Equilibrium codon frequency estimators (CodeML's ``CodonFreq`` options).

The paper determines the codon frequencies ``pi_i`` "empirically from the
MSA" (§II-A).  CodeML offers four estimators, all reproduced here:

* ``equal``  — ``CodonFreq = 0``: uniform over sense codons.
* ``F1x4``   — ``CodonFreq = 1``: products of overall nucleotide
  frequencies.
* ``F3x4``   — ``CodonFreq = 2``: products of position-specific
  nucleotide frequencies (CodeML's default for codon models, and what
  Selectome uses).
* ``F61``    — ``CodonFreq = 3``: observed codon proportions.

Stop codons are excluded and the vector renormalised; zero frequencies
are floored at a small pseudo-frequency because the symmetrising
transform ``Π^{±1/2}`` (paper Eq. 2) requires strictly positive ``pi``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.codon.genetic_code import NUCLEOTIDES, GeneticCode, UNIVERSAL

__all__ = [
    "codon_frequencies_equal",
    "codon_frequencies_f1x4",
    "codon_frequencies_f3x4",
    "codon_frequencies_f61",
    "frequencies_from_counts",
]

#: Floor applied to empirical frequencies so that Π is invertible.
MIN_FREQUENCY = 1e-10


def _codon_columns(sequences: Sequence[str]) -> Iterable[str]:
    """Yield every codon (3-mer) from every sequence, skipping gaps/ambiguity."""
    for seq in sequences:
        seq = seq.upper().replace("U", "T")
        if len(seq) % 3 != 0:
            raise ValueError(f"sequence length {len(seq)} is not a multiple of 3")
        for k in range(0, len(seq), 3):
            codon = seq[k : k + 3]
            if all(base in NUCLEOTIDES for base in codon):
                yield codon


def _normalize(freqs: np.ndarray) -> np.ndarray:
    freqs = np.maximum(np.asarray(freqs, dtype=float), MIN_FREQUENCY)
    return freqs / freqs.sum()


def codon_frequencies_equal(code: GeneticCode = UNIVERSAL) -> np.ndarray:
    """Uniform frequencies over the sense codons (``CodonFreq = 0``)."""
    n = code.n_states
    return np.full(n, 1.0 / n)


def _nucleotide_counts(sequences: Sequence[str], by_position: bool) -> np.ndarray:
    """Counts of T/C/A/G, either pooled (shape (4,)) or per codon position (3, 4)."""
    counts = np.zeros((3, 4)) if by_position else np.zeros(4)
    nuc_index = {n: i for i, n in enumerate(NUCLEOTIDES)}
    seen = False
    for codon in _codon_columns(sequences):
        seen = True
        for pos, base in enumerate(codon):
            if by_position:
                counts[pos, nuc_index[base]] += 1
            else:
                counts[nuc_index[base]] += 1
    if not seen:
        raise ValueError("no unambiguous codons found in the alignment")
    return counts


def _product_frequencies(nuc_freqs: np.ndarray, code: GeneticCode) -> np.ndarray:
    """Build sense-codon frequencies from per-position nucleotide frequencies.

    ``nuc_freqs`` has shape (3, 4): a distribution over TCAG per codon
    position (F1x4 passes the same row three times).
    """
    sense = code.sense_codons
    nuc_index = {n: i for i, n in enumerate(NUCLEOTIDES)}
    freqs = np.array(
        [
            nuc_freqs[0, nuc_index[c[0]]]
            * nuc_freqs[1, nuc_index[c[1]]]
            * nuc_freqs[2, nuc_index[c[2]]]
            for c in sense
        ]
    )
    return _normalize(freqs)


def codon_frequencies_f1x4(sequences: Sequence[str], code: GeneticCode = UNIVERSAL) -> np.ndarray:
    """F1x4 (``CodonFreq = 1``): overall nucleotide frequency products."""
    counts = _nucleotide_counts(sequences, by_position=False)
    nuc_freqs = counts / counts.sum()
    return _product_frequencies(np.tile(nuc_freqs, (3, 1)), code)


def codon_frequencies_f3x4(sequences: Sequence[str], code: GeneticCode = UNIVERSAL) -> np.ndarray:
    """F3x4 (``CodonFreq = 2``): position-specific nucleotide frequency products."""
    counts = _nucleotide_counts(sequences, by_position=True)
    row_sums = counts.sum(axis=1, keepdims=True)
    if np.any(row_sums == 0):
        raise ValueError("a codon position has no observed nucleotides")
    return _product_frequencies(counts / row_sums, code)


def codon_frequencies_f61(sequences: Sequence[str], code: GeneticCode = UNIVERSAL) -> np.ndarray:
    """F61 (``CodonFreq = 3``): observed sense-codon proportions."""
    counter: Counter[str] = Counter()
    for codon in _codon_columns(sequences):
        if not code.is_stop(codon):
            counter[codon] += 1
    if not counter:
        raise ValueError("no sense codons found in the alignment")
    counts = np.array([counter.get(c, 0) for c in code.sense_codons], dtype=float)
    return frequencies_from_counts(counts)


def frequencies_from_counts(counts: np.ndarray) -> np.ndarray:
    """Normalise raw sense-codon counts into a floored frequency vector."""
    counts = np.asarray(counts, dtype=float)
    if np.any(counts < 0):
        raise ValueError("codon counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError("cannot normalise an all-zero count vector")
    return _normalize(counts / counts.sum())


ESTIMATORS = {
    "equal": lambda seqs, code: codon_frequencies_equal(code),
    "f1x4": codon_frequencies_f1x4,
    "f3x4": codon_frequencies_f3x4,
    "f61": codon_frequencies_f61,
}


def estimate_codon_frequencies(
    sequences: Sequence[str], method: str = "f3x4", code: GeneticCode = UNIVERSAL
) -> np.ndarray:
    """Dispatch to one of the four estimators by CodeML-style name."""
    try:
        estimator = ESTIMATORS[method.lower()]
    except KeyError:
        raise ValueError(
            f"unknown CodonFreq method {method!r}; available: {sorted(ESTIMATORS)}"
        ) from None
    return estimator(sequences, code)
