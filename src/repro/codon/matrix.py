"""Assembly of the reversible codon instantaneous rate matrix ``Q`` (Eq. 1).

The model factorises as ``Q = S Π`` where ``Π = diag(pi)`` and ``S`` is
symmetric — the property the whole SlimCodeML optimization rests on
(paper Eq. 2-5).  We therefore build ``S`` first (the *exchangeability*
matrix: ``kappa``/``omega`` factors over single-nucleotide codon pairs)
and derive ``Q``, keeping both so the engines can symmetrise without
re-deriving ``S`` from ``Q``.

Rate normalisation
------------------
Branch lengths are measured in expected substitutions per codon, so ``Q``
must be scaled to unit mean rate ``-sum_i pi_i q_ii = 1``.  For mixture
models (the branch-site model) CodeML applies a *single* scale factor
across all site-class matrices — computed from the class proportions — so
that a branch length means the same thing in every class.  Both modes are
supported via the ``scale`` argument of :func:`build_rate_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.codon.classify import classification_table
from repro.codon.genetic_code import GeneticCode, UNIVERSAL
from repro.utils.numerics import validate_probability_vector

__all__ = [
    "CodonRateMatrix",
    "build_rate_matrix",
    "exchangeability_matrix",
    "mean_rate",
    "mixture_scale_factor",
]


def exchangeability_matrix(
    kappa: float, omega: float, code: GeneticCode = UNIVERSAL
) -> np.ndarray:
    """Symmetric exchangeability factors ``R`` with ``q_ij = R_ij * pi_j``.

    ``R_ij`` is 0 for multi-nucleotide changes and otherwise the product
    of ``kappa`` (if the single change is a transition) and ``omega`` (if
    non-synonymous) per paper Eq. 1.  The diagonal is left at zero; it is
    fixed up when building ``Q``.
    """
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    if omega < 0:
        raise ValueError(f"omega must be non-negative, got {omega}")
    table = classification_table(code)
    rate = np.zeros_like(table.single, dtype=float)
    rate[table.single] = 1.0
    rate[table.single & table.transition] *= kappa
    rate[table.single & ~table.synonymous] *= omega
    return rate


def mean_rate(q_unscaled: np.ndarray, pi: np.ndarray) -> float:
    """Expected substitution rate ``-sum_i pi_i q_ii`` of an unscaled Q."""
    return float(-np.dot(pi, np.diag(q_unscaled)))


def mixture_scale_factor(rates: Sequence[float], proportions: Sequence[float]) -> float:
    """Common 1/scale for a mixture: weighted mean of per-class raw rates.

    ``rates`` are the unscaled per-class mean rates, ``proportions`` the
    site-class probabilities.  Dividing every class Q by the returned
    value makes the *average* rate across classes equal to one, which is
    how CodeML defines branch lengths for site and branch-site models.
    """
    rates = np.asarray(rates, dtype=float)
    proportions = np.asarray(proportions, dtype=float)
    if rates.shape != proportions.shape:
        raise ValueError("rates and proportions must have matching shapes")
    if np.any(proportions < 0) or not np.isclose(proportions.sum(), 1.0):
        raise ValueError("proportions must be a probability vector")
    factor = float(np.dot(rates, proportions))
    if factor <= 0:
        raise ValueError("mixture mean rate must be positive")
    return factor


@dataclass(frozen=True)
class CodonRateMatrix:
    """A built codon rate matrix together with its reversible factorisation.

    Attributes
    ----------
    q:
        The (possibly rescaled) instantaneous rate matrix, rows summing
        to zero.
    s:
        Symmetric matrix with ``Q = S Π`` (including the diagonal).
    pi:
        Equilibrium codon frequencies.
    kappa, omega:
        The Eq. 1 parameters this matrix was built from.
    scale:
        The factor the raw matrix was divided by (1.0 when unscaled).
    """

    q: np.ndarray
    s: np.ndarray
    pi: np.ndarray
    kappa: float
    omega: float
    scale: float

    @property
    def n_states(self) -> int:
        return self.q.shape[0]

    def raw_mean_rate(self) -> float:
        """Mean rate of the *unscaled* matrix (``scale`` × current rate)."""
        return mean_rate(self.q, self.pi) * self.scale

    def check_reversibility(self, atol: float = 1e-10) -> None:
        """Assert detailed balance ``pi_i q_ij = pi_j q_ji``; raises on failure."""
        flux = self.pi[:, None] * self.q
        if not np.allclose(flux, flux.T, atol=atol):
            raise AssertionError("detailed balance violated: Q is not reversible wrt pi")


def build_rate_matrix(
    kappa: float,
    omega: float,
    pi: np.ndarray,
    code: GeneticCode = UNIVERSAL,
    scale: float | str = "per_matrix",
) -> CodonRateMatrix:
    """Build the Eq. 1 rate matrix for given ``kappa``, ``omega``, ``pi``.

    Parameters
    ----------
    scale:
        ``"per_matrix"`` rescales so this matrix alone has unit mean rate;
        ``"none"`` leaves raw rates; a positive float divides Q by that
        factor (used for the shared mixture normalisation of the
        branch-site model).
    """
    pi = validate_probability_vector(pi, name="pi")
    if pi.shape[0] != code.n_states:
        raise ValueError(
            f"pi has {pi.shape[0]} entries but the genetic code has {code.n_states} sense codons"
        )
    if np.any(pi <= 0):
        raise ValueError("pi must be strictly positive for the reversible factorisation")

    r = exchangeability_matrix(kappa, omega, code)
    q = r * pi[None, :]
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))

    if scale == "per_matrix":
        factor = mean_rate(q, pi)
        if factor <= 0:
            raise ValueError("degenerate rate matrix: zero mean rate")
    elif scale == "none":
        factor = 1.0
    elif isinstance(scale, (int, float)):
        factor = float(scale)
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {scale}")
    else:
        raise ValueError(f"unknown scale mode {scale!r}")

    q = q / factor
    # S = Q Π^{-1}: off-diagonal S_ij = R_ij / factor, diagonal q_ii / pi_i.
    s = q / pi[None, :]
    return CodonRateMatrix(q=q, s=s, pi=pi, kappa=kappa, omega=omega, scale=factor)
