"""Fault policy and the backend-agnostic task driver.

gcodeml (Moretti et al., 2012) showed that at Selectome scale the
binding constraint on a genome-wide branch-site scan is *fault
handling*: grid tasks crash, hang, and must be retried without losing
the rest of the batch.  This module is the policy layer the batch
drivers (:mod:`repro.parallel.batch`) delegate to.

Since the executor refactor, :func:`run_tasks` is a pure *policy
driver*: it owns per-task attempt accounting, bounded retries with
(optionally jittered) exponential backoff, quarantine-based crash
attribution and the restart budget — while the execution substrate
lives behind the :class:`~repro.parallel.executors.base.Executor`
protocol (inline, process pool, or a TCP worker fleet).  The driver
sees only structured events (``ok`` / ``error`` / ``timeout`` /
``crash``), so every backend inherits identical fault semantics:

* a worker exception is retried up to ``max_retries`` times, then
  reported as an ``error`` failure;
* a hung attempt is reported as a ``timeout`` failure (retried only
  when ``retry_timeouts`` is set);
* an *attributed* crash (the backend knows which task killed its
  vehicle) is charged to that task like an error, but reported with
  kind ``pool``;
* an *unattributed* crash (a shared process pool lost every in-flight
  task at once) triggers a quarantine round — each lost task is
  replayed in isolation, which pins the blame on the culprit while its
  victims complete unharmed; only rounds that find *no* culprit
  (environment-level faults) consume ``max_pool_restarts``.

Failures never raise out of :func:`run_tasks`; they come back as
structured :class:`TaskFailure` records alongside the successes, in
input order, so one poisoned task cannot mask a thousand finished ones.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.parallel.executors.base import Executor, ExecutorEvent
from repro.parallel.executors.wire import register_struct

__all__ = ["FaultPolicy", "TaskFailure", "TaskOutcome", "run_tasks"]

#: Failure classes a task can end in (``TaskFailure.kind``).
FAILURE_KINDS = ("error", "timeout", "pool")

#: Floor for event-wait polling so a just-expired deadline cannot spin.
_MIN_WAIT = 0.02


@dataclass(frozen=True)
class FaultPolicy:
    """How the batch layer treats a misbehaving task.

    Parameters
    ----------
    task_timeout:
        Per-attempt wall-clock budget in seconds; ``None`` disables the
        timeout.  Only enforceable by backends that can abandon a hung
        vehicle (the inline executor cannot interrupt a hung call).
    max_retries:
        Retries *after* the first attempt, so a task runs at most
        ``max_retries + 1`` times.
    retry_backoff:
        Sleep before retry ``k`` is ``retry_backoff *
        backoff_multiplier**(k-1)`` seconds; 0 retries immediately.
    backoff_multiplier:
        Exponential growth factor for successive backoffs.
    jitter:
        Full-jitter fraction in ``[0, 1]``: each backoff is drawn
        uniformly from ``[base * (1 - jitter), base]``.  The default 0
        keeps backoffs deterministic (test reproducibility); set e.g.
        ``jitter=1.0`` when a batch of simultaneous failures would
        otherwise retry in lockstep and stampede a shared backend.
    jitter_seed:
        Seed for the jitter RNG, so even jittered schedules are
        reproducible run-to-run.
    retry_timeouts:
        Whether a timed-out attempt is retried like an error.  Off by
        default: hung tasks are usually deterministically hung, and each
        retry costs another full ``task_timeout``.
    max_pool_restarts:
        How many *unattributed* crash recoveries to attempt before
        declaring every remaining task a ``pool`` failure.  An
        unattributed crash (a shared pool died with several tasks in
        flight) triggers a quarantine round that re-runs each lost task
        in isolation — the culprit crashes its private vehicle (and is
        charged an attempt) while its victims complete unharmed; only
        rounds that *cannot* attribute the crash to a task
        (environment-level faults) consume this budget.  Timeout
        abandonments never do (they are bounded by the task count
        already).
    """

    task_timeout: Optional[float] = None
    max_retries: int = 0
    retry_backoff: float = 0.5
    backoff_multiplier: float = 2.0
    jitter: float = 0.0
    jitter_seed: Optional[int] = None
    retry_timeouts: bool = False
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")
        # The RNG rides outside the frozen-field set: it is scheduling
        # state, not policy identity (eq/hash ignore it).
        object.__setattr__(self, "_rng", random.Random(self.jitter_seed))

    def backoff_seconds(self, failed_attempt: int) -> float:
        """Sleep before re-running a task whose attempt ``k`` (1-based) failed."""
        if self.retry_backoff <= 0:
            return 0.0
        base = self.retry_backoff * self.backoff_multiplier ** (failed_attempt - 1)
        if self.jitter <= 0:
            return base
        return base * (1.0 - self.jitter * self._rng.random())  # type: ignore[attr-defined]


@register_struct
@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task's terminal failure.

    ``kind`` is ``"error"`` (the worker raised), ``"timeout"`` (the
    attempt exceeded ``FaultPolicy.task_timeout``) or ``"pool"`` (the
    execution vehicle died — a worker process crash or a dead socket
    worker — or the substrate gave out entirely).
    """

    task_id: str
    kind: str
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass
class TaskOutcome:
    """Terminal state of one task: a worker result or a :class:`TaskFailure`.

    ``worker`` is the backend's identity string for whichever worker
    produced the terminal attempt (``None`` when the backend cannot
    attribute work to a worker).
    """

    index: int
    task_id: str
    result: Optional[object]
    failure: Optional[TaskFailure]
    attempts: int
    runtime_seconds: float
    worker: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_tasks(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    task_ids: Optional[Sequence[str]] = None,
    policy: Optional[FaultPolicy] = None,
    max_workers: Optional[int] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    in_process: bool = False,
    executor: Optional[Executor] = None,
    context: object = None,
) -> List[TaskOutcome]:
    """Run ``fn`` over ``payloads`` under ``policy``, never raising per-task.

    Results come back in input order.  ``on_outcome`` fires once per
    task *in completion order* as soon as its terminal state is known —
    the hook the batch layer uses to stream results to a journal.

    ``context`` is the batch's shared read-only state.  It is shipped
    to workers once per batch (socket broadcast frame / pool
    shared-memory segment) instead of per task, and when present the
    callable is invoked as ``fn(payload, context)`` rather than
    ``fn(payload)``.

    ``executor`` selects the execution substrate (see
    :mod:`repro.parallel.executors`); a caller-provided executor is
    started and drained but *not* shut down, so a connected worker
    fleet can serve several batches.  Without one, the driver builds
    its own: an :class:`~repro.parallel.executors.inline.InlineExecutor`
    when ``in_process`` is set (sequential, hermetic; timeouts are not
    enforceable there and ``task_timeout`` is ignored), else a
    :class:`~repro.parallel.executors.pool.ProcessPoolBackend` over
    ``max_workers`` processes.
    """
    policy = policy if policy is not None else FaultPolicy()
    ids = list(task_ids) if task_ids is not None else [f"task-{i}" for i in range(len(payloads))]
    if len(ids) != len(payloads):
        raise ValueError(f"{len(payloads)} payloads but {len(ids)} task ids")

    owns_executor = executor is None
    if executor is None:
        if in_process or len(payloads) == 0:
            from repro.parallel.executors.inline import InlineExecutor

            executor = InlineExecutor()
        else:
            from repro.parallel.executors.pool import ProcessPoolBackend

            executor = ProcessPoolBackend(max_workers=max_workers)

    driver = _PolicyDriver(fn, payloads, ids, policy, executor, on_outcome,
                           context=context)
    try:
        return driver.run()
    finally:
        if owns_executor:
            executor.shutdown()


class _PolicyDriver:
    """One batch's fault-policy state machine over an Executor."""

    def __init__(
        self,
        fn: Callable[[object], object],
        payloads: Sequence[object],
        ids: Sequence[str],
        policy: FaultPolicy,
        executor: Executor,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
        context: object = None,
    ) -> None:
        self.fn = fn
        self.payloads = payloads
        self.ids = ids
        self.policy = policy
        self.executor = executor
        self.on_outcome = on_outcome
        self.context = context

        n = len(payloads)
        self.outcomes: List[Optional[TaskOutcome]] = [None] * n
        # Attempt-elapsed accumulators so retried tasks report total runtime.
        self.elapsed: List[float] = [0.0] * n
        self.workers: List[Optional[str]] = [None] * n

        self.pending: deque = deque((i, 1, False) for i in range(n))  # (index, attempt, isolated)
        self.retry_at: List[Tuple[float, int, int, bool]] = []  # (ready, index, attempt, isolated)
        self.in_flight: Dict[int, Tuple[int, int, bool]] = {}  # tag -> (index, attempt, isolated)
        self.lost_unattributed: List[Tuple[int, int]] = []  # crash victims awaiting quarantine
        self.next_tag = 0
        self.restarts = 0

    # -- terminal bookkeeping -----------------------------------------
    def _finish(
        self,
        index: int,
        attempts: int,
        result: Optional[object] = None,
        failure: Optional[TaskFailure] = None,
    ) -> None:
        outcome = TaskOutcome(
            index, self.ids[index], result, failure, attempts,
            self.elapsed[index], worker=self.workers[index],
        )
        self.outcomes[index] = outcome
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _fail(self, index: int, attempts: int, kind: str, error_type: str, message: str) -> None:
        self._finish(
            index,
            attempts,
            failure=TaskFailure(self.ids[index], kind, error_type, message, attempts),
        )

    # -- submission ----------------------------------------------------
    def _submit(self, index: int, attempt: int, isolated: bool) -> int:
        tag = self.next_tag
        self.next_tag += 1
        self.in_flight[tag] = (index, attempt, isolated)
        self.executor.submit(
            tag,
            self.payloads[index],
            timeout=self.policy.task_timeout,
            isolated=isolated,
        )
        return tag

    # -- event handling ------------------------------------------------
    def _handle_event(self, ev: ExecutorEvent) -> None:
        if ev.tag not in self.in_flight:
            return  # stale event from an abandoned attempt
        index, attempt, _isolated = self.in_flight.pop(ev.tag)
        self.elapsed[index] += ev.elapsed
        if ev.worker is not None:
            self.workers[index] = ev.worker
        policy = self.policy
        if ev.kind == "ok":
            self._finish(index, attempt, result=ev.result)
        elif ev.kind == "error":
            if attempt <= policy.max_retries:
                self._schedule_retry(index, attempt, isolated=False)
            else:
                self._fail(index, attempt, "error", ev.error_type, ev.message)
        elif ev.kind == "timeout":
            if policy.retry_timeouts and attempt <= policy.max_retries:
                self._schedule_retry(index, attempt, isolated=False)
            else:
                self._fail(index, attempt, "timeout", ev.error_type or "TaskTimeout", ev.message)
        elif ev.kind == "crash":
            if ev.attributed:
                if attempt <= policy.max_retries:
                    # Crash-prone tasks retry in isolation so a repeat
                    # crash stays attributable.
                    self._schedule_retry(index, attempt, isolated=True)
                else:
                    self._fail(index, attempt, "pool",
                               ev.error_type or "BrokenProcessPool", ev.message)
            else:
                # Victim or culprit — unknowable here; quarantine replays
                # it in isolation at the *same* attempt (no attempt cost
                # for victims).
                self.lost_unattributed.append((index, attempt))
        else:  # pragma: no cover - defensive against misbehaved backends
            self._fail(index, attempt, "error", "ProtocolError",
                       f"backend emitted unknown event kind {ev.kind!r}")

    def _schedule_retry(self, index: int, failed_attempt: int, isolated: bool) -> None:
        ready = time.monotonic() + self.policy.backoff_seconds(failed_attempt)
        self.retry_at.append((ready, index, failed_attempt + 1, isolated))

    # -- quarantine ----------------------------------------------------
    def _quarantine_round(self, lost: Sequence[Tuple[int, int]]) -> bool:
        """Replay tasks lost to an unattributed crash, one at a time, in
        isolation.

        Isolation makes crash attribution exact: a task that kills its
        private vehicle *is* the culprit (charged an attempt, retried or
        failed per policy) while the victims simply complete.  Returns
        whether any culprit was identified — if not, the crash was
        environmental and counts against ``max_pool_restarts``.
        """
        policy = self.policy
        culprit_found = False
        queue: deque = deque(lost)
        while queue:
            index, attempt = queue.popleft()
            tag = self._submit(index, attempt, isolated=True)
            event: Optional[ExecutorEvent] = None
            while event is None:
                for ev in self.executor.drain(timeout=None):
                    if ev.tag == tag:
                        event = ev
                    else:
                        # Foreign completions (e.g. socket tasks still on
                        # other workers) are handled normally; any further
                        # unattributed losses join the next round.
                        self._handle_event(ev)
            self.in_flight.pop(tag, None)
            self.elapsed[index] += event.elapsed
            if event.worker is not None:
                self.workers[index] = event.worker
            if event.kind == "ok":
                self._finish(index, attempt, result=event.result)
            elif event.kind == "crash":
                culprit_found = True
                if attempt <= policy.max_retries:
                    time.sleep(policy.backoff_seconds(attempt))
                    queue.append((index, attempt + 1))
                else:
                    self._fail(index, attempt, "pool",
                               event.error_type or "BrokenProcessPool", event.message)
            elif event.kind == "timeout":
                if policy.retry_timeouts and attempt <= policy.max_retries:
                    time.sleep(policy.backoff_seconds(attempt))
                    queue.append((index, attempt + 1))
                else:
                    self._fail(index, attempt, "timeout",
                               event.error_type or "TaskTimeout", event.message)
            else:  # error
                if attempt <= policy.max_retries:
                    time.sleep(policy.backoff_seconds(attempt))
                    queue.append((index, attempt + 1))
                else:
                    self._fail(index, attempt, "error", event.error_type, event.message)
        return culprit_found

    def _drain_to_pool_failure(self, message: str) -> None:
        """Terminal substrate fault: everything unfinished becomes ``pool``."""
        for tag, (index, attempt, _iso) in list(self.in_flight.items()):
            self._fail(index, attempt, "pool", "BrokenProcessPool", message)
        self.in_flight.clear()
        for index, attempt in [(i, a) for i, a, _ in self.pending] + [
            (e[1], e[2]) for e in self.retry_at
        ] + list(self.lost_unattributed):
            self._fail(index, attempt, "pool", "BrokenProcessPool", message)
        self.pending.clear()
        self.retry_at.clear()
        self.lost_unattributed.clear()

    # -- main loop -----------------------------------------------------
    def run(self) -> List[TaskOutcome]:
        if not self.payloads:
            return []
        self.executor.start(self.fn, len(self.payloads), context=self.context)
        while self.pending or self.in_flight or self.retry_at or self.lost_unattributed:
            if self.lost_unattributed:
                lost, self.lost_unattributed = self.lost_unattributed, []
                culprit_found = self._quarantine_round(lost)
                if not culprit_found:
                    self.restarts += 1
                    if self.restarts > self.policy.max_pool_restarts:
                        self._drain_to_pool_failure(
                            "unattributed pool crashes exhausted the restart budget"
                        )
                        break
                continue

            now = time.monotonic()
            for entry in [e for e in self.retry_at if e[0] <= now]:
                self.retry_at.remove(entry)
                self.pending.append((entry[1], entry[2], entry[3]))

            # Keep in-flight ≤ capacity so backend clocks start at
            # dispatch time without counting queue wait.
            while self.pending and len(self.in_flight) < self.executor.capacity():
                index, attempt, isolated = self.pending.popleft()
                self._submit(index, attempt, isolated)

            if not self.in_flight:
                if self.retry_at:  # only backoff sleeps remain
                    time.sleep(max(0.0, min(e[0] for e in self.retry_at) - time.monotonic()))
                continue

            wait = None
            if self.retry_at:
                wait = max(_MIN_WAIT, min(e[0] for e in self.retry_at) - time.monotonic())
            for ev in self.executor.drain(timeout=wait):
                self._handle_event(ev)

        assert all(o is not None for o in self.outcomes)
        return self.outcomes  # type: ignore[return-value]
