"""Retry/timeout policy and fault-tolerant task execution.

gcodeml (Moretti et al., 2012) showed that at Selectome scale the
binding constraint on a genome-wide branch-site scan is *fault
handling*: grid tasks crash, hang, and must be retried without losing
the rest of the batch.  This module is the policy layer the batch
drivers (:mod:`repro.parallel.batch`) delegate to:

* per-task attempt accounting with bounded retries and exponential
  backoff;
* a per-task wall-clock timeout — a hung worker is abandoned (its
  process terminated) and the surviving task set moves to a fresh pool;
* :class:`~concurrent.futures.process.BrokenProcessPool` recovery — a
  worker crash (segfault, OOM-kill, ``os._exit``) poisons every
  in-flight future, so the runner re-submits the surviving tasks to a
  fresh pool instead of killing the whole batch.

Failures never raise out of :func:`run_tasks`; they come back as
structured :class:`TaskFailure` records alongside the successes, in
input order, so one poisoned task cannot mask a thousand finished ones.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultPolicy", "TaskFailure", "TaskOutcome", "run_tasks"]

#: Failure classes a task can end in (``TaskFailure.kind``).
FAILURE_KINDS = ("error", "timeout", "pool")

#: Floor for pool-wait polling so a just-expired deadline cannot spin.
_MIN_WAIT = 0.02


@dataclass(frozen=True)
class FaultPolicy:
    """How the batch layer treats a misbehaving task.

    Parameters
    ----------
    task_timeout:
        Per-attempt wall-clock budget in seconds; ``None`` disables the
        timeout.  Only enforceable when tasks run in worker processes
        (the in-process fallback cannot interrupt a hung call).
    max_retries:
        Retries *after* the first attempt, so a task runs at most
        ``max_retries + 1`` times.
    retry_backoff:
        Sleep before retry ``k`` is ``retry_backoff *
        backoff_multiplier**(k-1)`` seconds; 0 retries immediately.
    backoff_multiplier:
        Exponential growth factor for successive backoffs.
    retry_timeouts:
        Whether a timed-out attempt is retried like an error.  Off by
        default: hung tasks are usually deterministically hung, and each
        retry costs another full ``task_timeout``.
    max_pool_restarts:
        How many *unattributed* :class:`BrokenProcessPool` recoveries to
        attempt before declaring every remaining task a ``pool``
        failure.  A pool crash triggers a quarantine round that re-runs
        each lost task in its own single-worker pool — the culprit
        breaks its private pool (and is charged an attempt) while its
        victims complete unharmed; only crashes quarantine *cannot*
        attribute to a task (environment-level faults) consume this
        budget.  Timeout abandonments never do (they are bounded by the
        task count already).
    """

    task_timeout: Optional[float] = None
    max_retries: int = 0
    retry_backoff: float = 0.5
    backoff_multiplier: float = 2.0
    retry_timeouts: bool = False
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")

    def backoff_seconds(self, failed_attempt: int) -> float:
        """Sleep before re-running a task whose attempt ``k`` (1-based) failed."""
        if self.retry_backoff <= 0:
            return 0.0
        return self.retry_backoff * self.backoff_multiplier ** (failed_attempt - 1)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task's terminal failure.

    ``kind`` is ``"error"`` (the worker raised), ``"timeout"`` (the
    attempt exceeded ``FaultPolicy.task_timeout``) or ``"pool"`` (the
    worker process died, or the pool could not be rebuilt).
    """

    task_id: str
    kind: str
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass
class TaskOutcome:
    """Terminal state of one task: a worker result or a :class:`TaskFailure`."""

    index: int
    task_id: str
    result: Optional[object]
    failure: Optional[TaskFailure]
    attempts: int
    runtime_seconds: float

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_tasks(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    task_ids: Optional[Sequence[str]] = None,
    policy: Optional[FaultPolicy] = None,
    max_workers: Optional[int] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    in_process: bool = False,
) -> List[TaskOutcome]:
    """Run ``fn`` over ``payloads`` under ``policy``, never raising per-task.

    Results come back in input order.  ``on_outcome`` fires once per
    task *in completion order* as soon as its terminal state is known —
    the hook the batch layer uses to stream results to a journal.

    ``in_process`` runs everything sequentially in the calling process
    (deterministic, hermetic for tests); timeouts are not enforceable
    there and ``task_timeout`` is ignored.
    """
    policy = policy if policy is not None else FaultPolicy()
    ids = list(task_ids) if task_ids is not None else [f"task-{i}" for i in range(len(payloads))]
    if len(ids) != len(payloads):
        raise ValueError(f"{len(payloads)} payloads but {len(ids)} task ids")
    if in_process or len(payloads) == 0:
        return _run_inline(fn, payloads, ids, policy, on_outcome)
    return _run_pool(fn, payloads, ids, policy, max_workers, on_outcome)


# ----------------------------------------------------------------------
# Sequential fallback
# ----------------------------------------------------------------------
def _run_inline(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    ids: Sequence[str],
    policy: FaultPolicy,
    on_outcome: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    outcomes: List[TaskOutcome] = []
    for i, payload in enumerate(payloads):
        attempt = 1
        elapsed = 0.0
        while True:
            start = time.perf_counter()
            try:
                result = fn(payload)
            except Exception as exc:  # noqa: BLE001 - faults become data
                elapsed += time.perf_counter() - start
                if attempt <= policy.max_retries:
                    time.sleep(policy.backoff_seconds(attempt))
                    attempt += 1
                    continue
                failure = TaskFailure(
                    task_id=ids[i],
                    kind="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempt,
                )
                outcome = TaskOutcome(i, ids[i], None, failure, attempt, elapsed)
                break
            elapsed += time.perf_counter() - start
            outcome = TaskOutcome(i, ids[i], result, None, attempt, elapsed)
            break
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
    return outcomes


# ----------------------------------------------------------------------
# Process-pool path
# ----------------------------------------------------------------------
def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, terminating any stuck workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()


def _quarantine(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    ids: Sequence[str],
    policy: FaultPolicy,
    lost: Sequence[Tuple[int, int]],
    elapsed: List[float],
    finish: Callable,
    fail: Callable,
) -> bool:
    """Re-run tasks lost to a pool crash, one per single-worker pool.

    Isolation makes crash attribution exact: a task that breaks its
    private pool *is* the culprit (charged an attempt, retried or
    failed per policy) while the victims simply complete.  Returns
    whether any culprit was identified — if not, the crash was
    environmental and counts against ``max_pool_restarts``.
    """
    culprit_found = False
    queue = deque(lost)
    while queue:
        i, attempt = queue.popleft()
        qpool = ProcessPoolExecutor(max_workers=1)
        started = time.monotonic()
        future = qpool.submit(fn, payloads[i])
        try:
            result = future.result(timeout=policy.task_timeout)
        except BrokenProcessPool:
            culprit_found = True
            elapsed[i] += time.monotonic() - started
            if attempt <= policy.max_retries:
                time.sleep(policy.backoff_seconds(attempt))
                queue.append((i, attempt + 1))
            else:
                fail(
                    i, attempt, "pool", "BrokenProcessPool",
                    "worker process died (isolated in quarantine)",
                )
        except FuturesTimeout:
            elapsed[i] += time.monotonic() - started
            if policy.retry_timeouts and attempt <= policy.max_retries:
                time.sleep(policy.backoff_seconds(attempt))
                queue.append((i, attempt + 1))
            else:
                fail(
                    i, attempt, "timeout", "TaskTimeout",
                    f"exceeded task_timeout={policy.task_timeout:g}s",
                )
        except Exception as exc:  # noqa: BLE001 - faults become data
            elapsed[i] += time.monotonic() - started
            if attempt <= policy.max_retries:
                time.sleep(policy.backoff_seconds(attempt))
                queue.append((i, attempt + 1))
            else:
                fail(i, attempt, "error", type(exc).__name__, str(exc))
        else:
            elapsed[i] += time.monotonic() - started
            finish(i, attempt, result=result)
        finally:
            _abandon_pool(qpool)
    return culprit_found


def _run_pool(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    ids: Sequence[str],
    policy: FaultPolicy,
    max_workers: Optional[int],
    on_outcome: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    n = len(payloads)
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, n))
    outcomes: List[Optional[TaskOutcome]] = [None] * n
    # Attempt-elapsed accumulators so retried tasks report total runtime.
    elapsed: List[float] = [0.0] * n

    def finish(
        index: int,
        attempts: int,
        result: Optional[object] = None,
        failure: Optional[TaskFailure] = None,
    ) -> None:
        outcome = TaskOutcome(index, ids[index], result, failure, attempts, elapsed[index])
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    def fail(index: int, attempts: int, kind: str, error_type: str, message: str) -> None:
        finish(
            index,
            attempts,
            failure=TaskFailure(ids[index], kind, error_type, message, attempts),
        )

    pending: deque = deque((i, 1) for i in range(n))  # (index, attempt)
    retry_at: List[Tuple[float, int, int]] = []  # (ready_time, index, attempt)
    in_flight: Dict[Future, Tuple[int, int, float]] = {}  # fut -> (index, attempt, started)
    restarts = 0
    pool = ProcessPoolExecutor(max_workers=workers)

    def drain_to_pool_failure(message: str) -> None:
        """Terminal pool fault: everything unfinished becomes a ``pool`` failure."""
        for fut, (i, attempt, started) in list(in_flight.items()):
            elapsed[i] += time.monotonic() - started
            fail(i, attempt, "pool", "BrokenProcessPool", message)
        in_flight.clear()
        for i, attempt in list(pending) + [(e[1], e[2]) for e in retry_at]:
            fail(i, attempt, "pool", "BrokenProcessPool", message)
        pending.clear()
        retry_at.clear()

    try:
        while pending or in_flight or retry_at:
            now = time.monotonic()
            for entry in [e for e in retry_at if e[0] <= now]:
                retry_at.remove(entry)
                pending.append((entry[1], entry[2]))

            # Keep in-flight ≤ workers so the per-task clock starts at
            # submission time without counting queue wait.
            while pending and len(in_flight) < workers:
                i, attempt = pending.popleft()
                future = pool.submit(fn, payloads[i])
                in_flight[future] = (i, attempt, time.monotonic())

            if not in_flight:
                if retry_at:  # only backoff sleeps remain
                    time.sleep(max(0.0, min(e[0] for e in retry_at) - time.monotonic()))
                continue

            timeout = None
            if policy.task_timeout is not None:
                nearest = min(s + policy.task_timeout for _, _, s in in_flight.values())
                timeout = max(_MIN_WAIT, nearest - time.monotonic())
            if retry_at:
                ripe = max(_MIN_WAIT, min(e[0] for e in retry_at) - time.monotonic())
                timeout = ripe if timeout is None else min(timeout, ripe)

            done, _ = wait(set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in done:
                i, attempt, started = in_flight.pop(future)
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    # The whole pool is poisoned; handle below with the
                    # rest of the in-flight set.
                    pool_broken = True
                    in_flight[future] = (i, attempt, started)
                    continue
                elapsed[i] += time.monotonic() - started
                if exc is None:
                    finish(i, attempt, result=future.result())
                elif attempt <= policy.max_retries:
                    retry_at.append(
                        (time.monotonic() + policy.backoff_seconds(attempt), i, attempt + 1)
                    )
                else:
                    fail(i, attempt, "error", type(exc).__name__, str(exc))

            if pool_broken or getattr(pool, "_broken", False):
                # Every in-flight task was lost with the pool.  The
                # crash-triggering task is indistinguishable from its
                # victims here, so run a quarantine round: each lost
                # task gets its own single-worker pool, which pins the
                # crash on the culprit while the victims finish.
                lost = [(i, attempt) for i, attempt, _ in in_flight.values()]
                for i, attempt, started in in_flight.values():
                    elapsed[i] += time.monotonic() - started
                in_flight.clear()
                _abandon_pool(pool)
                culprit_found = _quarantine(
                    fn, payloads, ids, policy, lost, elapsed, finish, fail
                )
                if not culprit_found:
                    restarts += 1
                    if restarts > policy.max_pool_restarts:
                        drain_to_pool_failure(
                            "unattributed pool crashes exhausted the restart budget"
                        )
                        break
                pool = ProcessPoolExecutor(max_workers=workers)
                continue

            if policy.task_timeout is not None:
                now = time.monotonic()
                expired = [
                    (fut, meta)
                    for fut, meta in in_flight.items()
                    if now - meta[2] > policy.task_timeout
                ]
                if expired:
                    # A stuck worker cannot be cancelled: abandon the
                    # pool, terminate its processes, and move every
                    # *surviving* in-flight task to a fresh pool at no
                    # attempt cost.
                    for fut, (i, attempt, started) in expired:
                        del in_flight[fut]
                        elapsed[i] += now - started
                        if policy.retry_timeouts and attempt <= policy.max_retries:
                            retry_at.append(
                                (now + policy.backoff_seconds(attempt), i, attempt + 1)
                            )
                        else:
                            fail(
                                i, attempt, "timeout", "TaskTimeout",
                                f"exceeded task_timeout={policy.task_timeout:g}s",
                            )
                    survivors = list(in_flight.values())
                    in_flight.clear()
                    _abandon_pool(pool)
                    for i, attempt, started in survivors:
                        elapsed[i] += now - started
                        pending.appendleft((i, attempt))
                    pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        _abandon_pool(pool)

    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]
