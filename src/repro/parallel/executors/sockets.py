"""TCP work-queue executor: ``slimcodeml worker`` processes pull tasks.

The scan process hosts a small TCP server.  Worker processes — started
by the operator on any host that can reach it, via ``slimcodeml worker
--connect host:port`` — register, heartbeat, pull pickled tasks one at
a time, and stream results back.  Because a worker holds at most one
task, every worker death is *attributable*: the backend emits
``crash`` events with ``attributed=True`` and the driver's quarantine
machinery never needs to run (the ``isolated`` submit flag is a no-op
here).

Fault taxonomy mapping (onto :class:`repro.parallel.faults.FaultPolicy`):

* worker raises              → ``error`` event (retried per policy);
* worker killed / vanishes   → ``crash`` event (EOF or stale
  heartbeat), surfaced as a ``pool``-kind :class:`TaskFailure`;
* task exceeds its deadline  → ``timeout`` event; the worker is
  disconnected (it may be wedged) and gets no further tasks;
* every worker gone and none → queued tasks fail as crashes after a
  reconnects within the grace   ``worker_wait`` grace period, so the
                                batch always terminates.

Trust model: frames are pickled (see :mod:`.wire`) — only run workers
you control, on networks you control, exactly as you would with
``multiprocessing`` across hosts.
"""

from __future__ import annotations

import pickle
import queue
import select
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel.executors.base import Executor, ExecutorEvent
from repro.parallel.executors.wire import WireError, recv_msg, send_msg

__all__ = ["SocketExecutor"]

#: How often idle connection handlers poll for tasks / consume heartbeats.
_POLL = 0.2


@dataclass
class _Task:
    tag: int
    payload: object
    timeout: Optional[float]


class _WorkerConn:
    """Server-side state for one connected worker."""

    def __init__(self, conn: socket.socket, addr: Tuple[str, int], worker_id: str):
        self.conn = conn
        self.addr = addr
        self.worker_id = worker_id
        self.last_seen = time.monotonic()


class SocketExecutor(Executor):
    """Distributed work-queue backend behind the fault-policy driver.

    Parameters
    ----------
    bind, port:
        Listen address.  ``port=0`` picks an ephemeral port; read it
        back from :attr:`address` before launching workers.
    min_workers:
        How many registered workers :meth:`start` waits for before the
        batch begins.
    worker_wait:
        Seconds to wait in :meth:`start` for ``min_workers``, and the
        grace period before a batch with *zero* connected workers
        fails its queued tasks rather than stalling forever.
    heartbeat_timeout:
        A busy worker silent for this long (no result, no heartbeat)
        is declared dead — covers network partitions and frozen hosts;
        a killed local worker is caught faster via EOF.
    """

    name = "socket"

    def __init__(
        self,
        bind: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        worker_wait: float = 30.0,
        heartbeat_timeout: float = 15.0,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        self.min_workers = min_workers
        self.worker_wait = worker_wait
        self.heartbeat_timeout = heartbeat_timeout

        self._fn_blob: Optional[bytes] = None
        self._lock = threading.Lock()
        self._task_cond = threading.Condition(self._lock)
        self._tasks: deque = deque()  # undispatched _Task records
        self._events: "queue.Queue[ExecutorEvent]" = queue.Queue()
        self._workers: Dict[str, _WorkerConn] = {}
        self._n_registered = 0
        self._last_worker_change = time.monotonic()
        self._shutdown = False

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((bind, port))
        self._server.listen()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="slimcodeml-accept", daemon=True
        )
        self._accept_thread.start()

    # -- public surface ------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` workers should connect to."""
        return self._server.getsockname()[:2]

    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def start(self, fn: Callable[[object], object], n_tasks: int) -> None:
        self._fn_blob = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        deadline = time.monotonic() + self.worker_wait
        while self.n_workers() < self.min_workers:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"socket executor: {self.min_workers} worker(s) required but "
                    f"only {self.n_workers()} connected within {self.worker_wait:g}s "
                    f"(start them with: slimcodeml worker --connect "
                    f"{self.address[0]}:{self.address[1]})"
                )
            time.sleep(0.05)

    def capacity(self) -> int:
        # One task per worker keeps the dispatch clock honest (a task's
        # deadline starts when a worker picks it up, and the queue
        # never hides more work than the fleet can start immediately).
        return max(1, self.n_workers())

    def submit(
        self,
        tag: int,
        payload: object,
        timeout: Optional[float] = None,
        isolated: bool = False,
    ) -> None:
        # ``isolated`` is a no-op: one task per worker means every
        # dispatch is already crash-attributable.
        with self._task_cond:
            self._tasks.append(_Task(tag, payload, timeout))
            self._task_cond.notify()

    def drain(self, timeout: Optional[float] = None) -> List[ExecutorEvent]:
        deadline = None if timeout is None else time.monotonic() + timeout
        events: List[ExecutorEvent] = []
        while True:
            try:
                # Bounded slices so the no-worker grace check runs even
                # when the driver asked for an unbounded drain.
                slice_ = _POLL if deadline is None else max(
                    0.0, min(_POLL, deadline - time.monotonic())
                )
                events.append(self._events.get(timeout=slice_))
                break
            except queue.Empty:
                events.extend(self._fail_orphans_if_deserted())
                if events:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    return events
        while True:  # sweep whatever else already landed
            try:
                events.append(self._events.get_nowait())
            except queue.Empty:
                return events

    def shutdown(self) -> None:
        with self._task_cond:
            self._shutdown = True
            self._task_cond.notify_all()
        try:
            self._server.close()
        except OSError:
            pass

    # -- internals -----------------------------------------------------
    def _fail_orphans_if_deserted(self) -> List[ExecutorEvent]:
        """Fail queued tasks once no worker has been around for a while."""
        with self._lock:
            if self._workers or not self._tasks:
                return []
            if time.monotonic() - self._last_worker_change < self.worker_wait:
                return []
            orphans = list(self._tasks)
            self._tasks.clear()
        return [
            ExecutorEvent(
                tag=task.tag,
                kind="crash",
                error_type="NoWorkers",
                message=(
                    "no connected workers "
                    f"(none reconnected within {self.worker_wait:g}s)"
                ),
                attributed=True,
            )
            for task in orphans
        ]

    def _accept_loop(self) -> None:
        while not self._shutdown:
            try:
                conn, addr = self._server.accept()
            except OSError:
                return  # server socket closed by shutdown
            threading.Thread(
                target=self._serve_worker, args=(conn, addr),
                name=f"slimcodeml-worker-conn-{addr[1]}", daemon=True,
            ).start()

    def _register(self, conn: socket.socket, addr: Tuple[str, int]) -> Optional[_WorkerConn]:
        try:
            conn.settimeout(self.heartbeat_timeout)
            hello = recv_msg(conn)
        except (OSError, WireError):
            conn.close()
            return None
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            conn.close()
            return None
        with self._lock:
            self._n_registered += 1
            base = hello.get("worker") or f"{addr[0]}:{addr[1]}"
            worker_id = f"{base}#{self._n_registered}"
            worker = _WorkerConn(conn, addr, worker_id)
            self._workers[worker_id] = worker
            self._last_worker_change = time.monotonic()
        return worker

    def _unregister(self, worker: _WorkerConn) -> None:
        with self._lock:
            self._workers.pop(worker.worker_id, None)
            self._last_worker_change = time.monotonic()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _claim_task(self) -> Optional[_Task]:
        with self._task_cond:
            if self._tasks:
                return self._tasks.popleft()
        return None

    def _requeue(self, task: _Task) -> None:
        with self._task_cond:
            self._tasks.appendleft(task)
            self._task_cond.notify()

    def _serve_worker(self, conn: socket.socket, addr: Tuple[str, int]) -> None:
        worker = self._register(conn, addr)
        if worker is None:
            return
        try:
            while not self._shutdown:
                task = self._claim_task()
                if task is None:
                    # Idle: consume heartbeats and notice an EOF (a
                    # worker killed between tasks) without holding a task.
                    readable, _, _ = select.select([conn], [], [], _POLL)
                    if readable:
                        try:
                            # A heartbeat frame that arrives in pieces
                            # must not count its slow tail as a dead
                            # worker; allow the full heartbeat window.
                            conn.settimeout(self.heartbeat_timeout)
                            msg = recv_msg(conn)
                        except (OSError, WireError):
                            return
                        if msg is None:
                            return  # worker left while idle: no task lost
                    continue
                if not self._run_one(worker, task):
                    return
            try:
                send_msg(conn, {"type": "shutdown"})
            except OSError:
                pass
        finally:
            self._unregister(worker)

    def _run_one(self, worker: _WorkerConn, task: _Task) -> bool:
        """Dispatch one task and await its terminal message.

        Returns False when the connection must be dropped (dead or
        wedged worker); the corresponding event has been emitted.
        """
        conn = worker.conn
        started = time.monotonic()
        try:
            send_msg(conn, {
                "type": "task",
                "tag": task.tag,
                "fn": self._fn_blob,
                "payload": task.payload,
            })
        except OSError:
            # Worker died before dispatch: the task never ran, so give
            # it back to the queue instead of charging it an attempt.
            self._requeue(task)
            return False
        worker.last_seen = time.monotonic()
        while True:
            now = time.monotonic()
            if task.timeout is not None and now - started > task.timeout:
                self._events.put(ExecutorEvent(
                    tag=task.tag,
                    kind="timeout",
                    error_type="TaskTimeout",
                    message=f"exceeded task_timeout={task.timeout:g}s",
                    elapsed=now - started,
                    worker=worker.worker_id,
                ))
                return False  # wedged worker: disconnect, no more tasks
            if now - worker.last_seen > self.heartbeat_timeout:
                self._events.put(self._crash_event(task, worker, started,
                                                   "heartbeat lost"))
                return False
            try:
                readable, _, _ = select.select([conn], [], [], _POLL)
                if not readable:
                    continue
                # A frame can land in pieces under load; reading its
                # tail with a short timeout would desync the stream,
                # so give it the full heartbeat window per chunk.
                conn.settimeout(self.heartbeat_timeout)
                msg = recv_msg(conn)
            except (OSError, WireError):
                self._events.put(self._crash_event(task, worker, started,
                                                   "connection reset"))
                return False
            if msg is None:
                self._events.put(self._crash_event(task, worker, started,
                                                   "connection closed"))
                return False
            worker.last_seen = time.monotonic()
            if msg.get("type") == "heartbeat":
                continue
            if msg.get("type") == "result" and msg.get("tag") == task.tag:
                if msg.get("ok"):
                    self._events.put(ExecutorEvent(
                        tag=task.tag,
                        kind="ok",
                        result=msg.get("result"),
                        elapsed=float(msg.get("elapsed", time.monotonic() - started)),
                        worker=worker.worker_id,
                    ))
                else:
                    self._events.put(ExecutorEvent(
                        tag=task.tag,
                        kind="error",
                        error_type=msg.get("error_type", "Error"),
                        message=msg.get("message", ""),
                        elapsed=float(msg.get("elapsed", time.monotonic() - started)),
                        worker=worker.worker_id,
                    ))
                return True
            # Unknown / stale message: ignore and keep waiting.

    def _crash_event(
        self, task: _Task, worker: _WorkerConn, started: float, why: str
    ) -> ExecutorEvent:
        return ExecutorEvent(
            tag=task.tag,
            kind="crash",
            error_type="WorkerDied",
            message=f"worker {worker.worker_id} died mid-task ({why})",
            elapsed=time.monotonic() - started,
            worker=worker.worker_id,
            attributed=True,
        )
