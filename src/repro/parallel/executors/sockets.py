"""TCP work-queue executor: ``slimcodeml worker`` processes pull tasks.

The scan process hosts a small TCP server.  Worker processes — started
by the operator on any host that can reach it, via ``slimcodeml worker
--connect host:port`` — register, heartbeat, pull tasks one at a time,
and stream results back.  Because a worker holds at most one task,
every worker death is *attributable*: the backend emits ``crash``
events with ``attributed=True`` and the driver's quarantine machinery
never needs to run (the ``isolated`` submit flag is a no-op here).

Data plane (see :mod:`.wire` for the frame layout): at :meth:`start`
the server encodes **one** ``BATCH`` frame — the pickled task callable
(explicit, checksummed) plus the batch's shared read-only context —
and broadcasts it to each worker exactly once per batch, at hello or
before its first dispatch.  Task frames then carry only the small
per-task payload (for the scan layer: integer indices into the
broadcast state), and array data in either direction travels as raw
buffers, not pickles.

Fault taxonomy mapping (onto :class:`repro.parallel.faults.FaultPolicy`):

* worker raises              → ``error`` event (retried per policy);
* worker killed / vanishes   → ``crash`` event (EOF or stale
  heartbeat), surfaced as a ``pool``-kind :class:`TaskFailure`;
* task exceeds its deadline  → ``timeout`` event; the worker is
  disconnected (it may be wedged) and gets no further tasks;
* a dispatch that stalls mid-send → ``crash`` event: part of the frame
  may already be with the worker, so the stream is desynced and the
  connection is dropped — the task is *charged an attempt*, never
  silently requeued, so it cannot execute on two workers at once;
* every worker gone and none reconnects within the grace period →
  queued tasks fail as crashes, so the batch always terminates.

Trust model: the only frame a worker will unpickle is the batch
broadcast's explicitly framed, checksummed callable blob — task frames
decode strictly (plain data + raw buffers).  Run workers on hosts and
networks you control, as you would with ``multiprocessing`` — but a
task or heartbeat frame can no longer smuggle arbitrary code.
"""

from __future__ import annotations

import pickle
import queue
import select
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel.executors.base import Executor, ExecutorEvent
from repro.parallel.executors import wire
from repro.parallel.executors.wire import WireError

__all__ = ["SocketExecutor"]

#: How often idle connection handlers poll for tasks / consume heartbeats.
_POLL = 0.2

#: How often an idle server pings each worker (lets workers detect a
#: hung — not dead — coordinator and exit instead of blocking forever).
_PING_INTERVAL = 2.0


@dataclass
class _Task:
    tag: int
    payload: object
    timeout: Optional[float]


class _WorkerConn:
    """Server-side state for one connected worker."""

    def __init__(self, conn: socket.socket, addr: Tuple[str, int], worker_id: str):
        self.conn = conn
        self.addr = addr
        self.worker_id = worker_id
        self.last_seen = time.monotonic()
        self.last_sent = 0.0
        #: Batch epoch whose broadcast this worker has received.
        self.epoch = 0


class SocketExecutor(Executor):
    """Distributed work-queue backend behind the fault-policy driver.

    Parameters
    ----------
    bind, port:
        Listen address.  ``port=0`` picks an ephemeral port; read it
        back from :attr:`address` before launching workers.
    min_workers:
        How many registered workers :meth:`start` waits for before the
        batch begins.
    worker_wait:
        Seconds to wait in :meth:`start` for ``min_workers``, and the
        grace period before a batch with *zero* connected workers
        fails its queued tasks rather than stalling forever.
    heartbeat_timeout:
        A busy worker silent for this long (no result, no heartbeat)
        is declared dead — covers network partitions and frozen hosts;
        a killed local worker is caught faster via EOF.  Also bounds
        how long one framed read or one task dispatch may stall.
    """

    name = "socket"

    def __init__(
        self,
        bind: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        worker_wait: float = 30.0,
        heartbeat_timeout: float = 15.0,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        self.min_workers = min_workers
        self.worker_wait = worker_wait
        self.heartbeat_timeout = heartbeat_timeout

        self._batch_buffers: Optional[List[object]] = None
        self._batch_epoch = 0
        self._lock = threading.Lock()
        self._task_cond = threading.Condition(self._lock)
        self._tasks: deque = deque()  # undispatched _Task records
        self._events: "queue.Queue[ExecutorEvent]" = queue.Queue()
        self._workers: Dict[str, _WorkerConn] = {}
        self._n_registered = 0
        self._last_worker_change = time.monotonic()
        self._shutdown = False
        self._wire_lock = threading.Lock()
        self._wire: Dict[str, int] = {
            "bytes_sent": 0, "bytes_received": 0,
            "frames_sent": 0, "frames_received": 0,
            "broadcasts": 0, "broadcast_bytes": 0,
            "tasks_dispatched": 0, "task_bytes": 0,
            "results_received": 0, "result_bytes": 0,
        }

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((bind, port))
        self._server.listen()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="slimcodeml-accept", daemon=True
        )
        self._accept_thread.start()

    # -- public surface ------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` workers should connect to."""
        return self._server.getsockname()[:2]

    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def wire_stats(self) -> Dict[str, float]:
        """Data-plane counters (bytes/frames, broadcast vs per-task)."""
        with self._wire_lock:
            stats: Dict[str, float] = dict(self._wire)
        tasks = stats["tasks_dispatched"]
        stats["task_bytes_mean"] = stats["task_bytes"] / tasks if tasks else 0.0
        return stats

    def start(
        self,
        fn: Callable[[object], object],
        n_tasks: int,
        context: object = None,
    ) -> None:
        # One broadcast frame per batch: the (explicit, checksummed)
        # callable blob plus the shared read-only context, encoded once
        # and replayed to each worker — including late joiners.
        blob = wire.Pickled(pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL))
        with self._lock:
            self._batch_epoch += 1
            epoch = self._batch_epoch
        self._batch_buffers = wire.encode_frame(
            wire.MSG_BATCH, epoch, {"fn": blob, "context": context}
        )
        deadline = time.monotonic() + self.worker_wait
        while self.n_workers() < self.min_workers:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"socket executor: {self.min_workers} worker(s) required but "
                    f"only {self.n_workers()} connected within {self.worker_wait:g}s "
                    f"(start them with: slimcodeml worker --connect "
                    f"{self.address[0]}:{self.address[1]})"
                )
            time.sleep(0.05)

    def capacity(self) -> int:
        # One task per worker keeps the dispatch clock honest (a task's
        # deadline starts when a worker picks it up, and the queue
        # never hides more work than the fleet can start immediately).
        return max(1, self.n_workers())

    def submit(
        self,
        tag: int,
        payload: object,
        timeout: Optional[float] = None,
        isolated: bool = False,
    ) -> None:
        # ``isolated`` is a no-op: one task per worker means every
        # dispatch is already crash-attributable.
        with self._task_cond:
            self._tasks.append(_Task(tag, payload, timeout))
            self._task_cond.notify()

    def drain(self, timeout: Optional[float] = None) -> List[ExecutorEvent]:
        deadline = None if timeout is None else time.monotonic() + timeout
        events: List[ExecutorEvent] = []
        while True:
            try:
                # Bounded slices so the no-worker grace check runs even
                # when the driver asked for an unbounded drain.
                slice_ = _POLL if deadline is None else max(
                    0.0, min(_POLL, deadline - time.monotonic())
                )
                events.append(self._events.get(timeout=slice_))
                break
            except queue.Empty:
                events.extend(self._fail_orphans_if_deserted())
                if events:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    return events
        while True:  # sweep whatever else already landed
            try:
                events.append(self._events.get_nowait())
            except queue.Empty:
                return events

    def shutdown(self) -> None:
        with self._task_cond:
            self._shutdown = True
            self._task_cond.notify_all()
        try:
            self._server.close()
        except OSError:
            pass

    # -- wire accounting -----------------------------------------------
    def _count(self, **deltas: int) -> None:
        with self._wire_lock:
            for key, value in deltas.items():
                self._wire[key] += value

    # -- internals -----------------------------------------------------
    def _fail_orphans_if_deserted(self) -> List[ExecutorEvent]:
        """Fail queued tasks once no worker has been around for a while."""
        with self._lock:
            if self._workers or not self._tasks:
                return []
            if time.monotonic() - self._last_worker_change < self.worker_wait:
                return []
            orphans = list(self._tasks)
            self._tasks.clear()
        return [
            ExecutorEvent(
                tag=task.tag,
                kind="crash",
                error_type="NoWorkers",
                message=(
                    "no connected workers "
                    f"(none reconnected within {self.worker_wait:g}s)"
                ),
                attributed=True,
            )
            for task in orphans
        ]

    def _accept_loop(self) -> None:
        while not self._shutdown:
            try:
                conn, addr = self._server.accept()
            except OSError:
                return  # server socket closed by shutdown
            threading.Thread(
                target=self._serve_worker, args=(conn, addr),
                name=f"slimcodeml-worker-conn-{addr[1]}", daemon=True,
            ).start()

    def _recv(self, conn: socket.socket) -> Optional[wire.Frame]:
        """One framed read under the heartbeat window; the connection's
        own (blocking) timeout is restored afterwards by recv_frame."""
        frame = wire.recv_frame(conn, timeout=self.heartbeat_timeout)
        if frame is not None:
            self._count(bytes_received=frame.nbytes, frames_received=1)
        return frame

    def _register(self, conn: socket.socket, addr: Tuple[str, int]) -> Optional[_WorkerConn]:
        try:
            hello = self._recv(conn)
        except (OSError, WireError):
            conn.close()
            return None
        if hello is None or hello.msg_type != wire.MSG_HELLO:
            conn.close()
            return None
        try:
            meta = hello.payload()
        except WireError:
            conn.close()
            return None
        if not isinstance(meta, dict):
            conn.close()
            return None
        with self._lock:
            self._n_registered += 1
            base = meta.get("worker") or f"{addr[0]}:{addr[1]}"
            worker_id = f"{base}#{self._n_registered}"
            worker = _WorkerConn(conn, addr, worker_id)
            self._workers[worker_id] = worker
            self._last_worker_change = time.monotonic()
        return worker

    def _unregister(self, worker: _WorkerConn) -> None:
        with self._lock:
            self._workers.pop(worker.worker_id, None)
            self._last_worker_change = time.monotonic()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _claim_task(self) -> Optional[_Task]:
        with self._task_cond:
            if self._tasks:
                return self._tasks.popleft()
        return None

    def _requeue(self, task: _Task) -> None:
        with self._task_cond:
            self._tasks.appendleft(task)
            self._task_cond.notify()

    def _send_timed(self, worker: _WorkerConn, buffers: List[object]) -> int:
        """Send one frame under the heartbeat window, restoring the
        connection's previous timeout whatever happens.

        A dead peer cannot stall the server forever, and — the PR 6
        dispatch fix — the window is set *explicitly here*, never
        inherited from whatever a previous framed read left behind.
        """
        conn = worker.conn
        prev = conn.gettimeout()
        conn.settimeout(self.heartbeat_timeout)
        try:
            sent = wire.send_buffers(conn, buffers)
        finally:
            try:
                conn.settimeout(prev)
            except OSError:
                pass
        worker.last_sent = time.monotonic()
        self._count(bytes_sent=sent, frames_sent=1)
        return sent

    def _ensure_batch(self, worker: _WorkerConn) -> bool:
        """Broadcast the current batch frame to this worker if it has
        not seen it yet.  Returns False when the connection is gone
        (no task has been dispatched, so nothing is lost)."""
        buffers = self._batch_buffers
        if buffers is None or worker.epoch == self._batch_epoch:
            return True
        try:
            sent = self._send_timed(worker, buffers)
        except OSError:
            return False
        worker.epoch = self._batch_epoch
        self._count(broadcasts=1, broadcast_bytes=sent,
                    frames_sent=0, bytes_sent=0)
        return True

    def _serve_worker(self, conn: socket.socket, addr: Tuple[str, int]) -> None:
        worker = self._register(conn, addr)
        if worker is None:
            return
        # Greet with the active batch immediately (the one-shot
        # broadcast at hello); a worker that joins between batches gets
        # it lazily before its first dispatch instead.
        if not self._ensure_batch(worker):
            self._unregister(worker)
            return
        try:
            while not self._shutdown:
                task = self._claim_task()
                if task is None:
                    # Idle: consume heartbeats, notice EOF (a worker
                    # killed between tasks) and ping so the worker can
                    # tell a hung coordinator from a quiet one.
                    now = time.monotonic()
                    if now - worker.last_sent >= _PING_INTERVAL:
                        try:
                            self._send_timed(worker, _PING_BUFFERS)
                        except OSError:
                            return
                    readable, _, _ = select.select([conn], [], [], _POLL)
                    if readable:
                        try:
                            msg = self._recv(conn)
                        except (OSError, WireError):
                            return
                        if msg is None:
                            return  # worker left while idle: no task lost
                    continue
                if not self._ensure_batch(worker):
                    self._requeue(task)
                    return
                if not self._run_one(worker, task):
                    return
            try:
                self._send_timed(worker, _SHUTDOWN_BUFFERS)
            except OSError:
                pass
        finally:
            self._unregister(worker)

    def _run_one(self, worker: _WorkerConn, task: _Task) -> bool:
        """Dispatch one task and await its terminal message.

        Returns False when the connection must be dropped (dead or
        wedged worker); the corresponding event has been emitted.
        """
        conn = worker.conn
        started = time.monotonic()
        try:
            buffers = wire.encode_frame(wire.MSG_TASK, task.tag, task.payload,
                                        allow_pickle=False)
        except TypeError as exc:
            # Nothing touched the socket: fail the task, keep the worker.
            self._events.put(ExecutorEvent(
                tag=task.tag,
                kind="error",
                error_type="WireEncodeError",
                message=str(exc),
                worker=worker.worker_id,
            ))
            return True
        try:
            sent = self._send_timed(worker, buffers)
        except socket.timeout:
            # Mid-send stall: part of the frame may already be with the
            # worker, so the stream is desynced.  Treating this as "the
            # task never ran" and requeueing could execute it twice —
            # charge the attempt as a crash and drop the connection.
            self._events.put(self._crash_event(
                task, worker, started,
                f"dispatch stalled mid-send after {self.heartbeat_timeout:g}s",
            ))
            return False
        except OSError:
            # Connection-level failure (reset/broken pipe): the kernel
            # has torn the stream down, so the worker can never read a
            # complete task frame — safe to give the task back.
            self._requeue(task)
            return False
        self._count(tasks_dispatched=1, task_bytes=sent,
                    frames_sent=0, bytes_sent=0)
        worker.last_seen = time.monotonic()
        while True:
            now = time.monotonic()
            if task.timeout is not None and now - started > task.timeout:
                self._events.put(ExecutorEvent(
                    tag=task.tag,
                    kind="timeout",
                    error_type="TaskTimeout",
                    message=f"exceeded task_timeout={task.timeout:g}s",
                    elapsed=now - started,
                    worker=worker.worker_id,
                ))
                return False  # wedged worker: disconnect, no more tasks
            if now - worker.last_seen > self.heartbeat_timeout:
                self._events.put(self._crash_event(task, worker, started,
                                                   "heartbeat lost"))
                return False
            try:
                readable, _, _ = select.select([conn], [], [], _POLL)
                if not readable:
                    continue
                # A frame can land in pieces under load; recv_frame
                # reads its tail under the heartbeat window and then
                # restores the connection's blocking behaviour.
                msg = self._recv(conn)
            except (OSError, WireError):
                self._events.put(self._crash_event(task, worker, started,
                                                   "connection reset"))
                return False
            if msg is None:
                self._events.put(self._crash_event(task, worker, started,
                                                   "connection closed"))
                return False
            worker.last_seen = time.monotonic()
            if msg.msg_type == wire.MSG_HEARTBEAT:
                continue
            if msg.msg_type == wire.MSG_RESULT and msg.tag == task.tag:
                try:
                    # Results come from the callable this server itself
                    # shipped, so the explicit-pickle fallback (exotic
                    # return types) is acceptable here.
                    reply = msg.payload(allow_pickle=True)
                except WireError as exc:
                    self._events.put(self._crash_event(
                        task, worker, started, f"undecodable result ({exc})"))
                    return False
                self._count(results_received=1, result_bytes=msg.nbytes)
                if not isinstance(reply, dict):
                    self._events.put(self._crash_event(
                        task, worker, started, "malformed result frame"))
                    return False
                if reply.get("ok"):
                    self._events.put(ExecutorEvent(
                        tag=task.tag,
                        kind="ok",
                        result=reply.get("result"),
                        elapsed=float(reply.get("elapsed", time.monotonic() - started)),
                        worker=worker.worker_id,
                    ))
                else:
                    self._events.put(ExecutorEvent(
                        tag=task.tag,
                        kind="error",
                        error_type=reply.get("error_type", "Error"),
                        message=reply.get("message", ""),
                        elapsed=float(reply.get("elapsed", time.monotonic() - started)),
                        worker=worker.worker_id,
                    ))
                return True
            # Unknown / stale message: ignore and keep waiting.

    def _crash_event(
        self, task: _Task, worker: _WorkerConn, started: float, why: str
    ) -> ExecutorEvent:
        return ExecutorEvent(
            tag=task.tag,
            kind="crash",
            error_type="WorkerDied",
            message=f"worker {worker.worker_id} died mid-task ({why})",
            elapsed=time.monotonic() - started,
            worker=worker.worker_id,
            attributed=True,
        )


#: Control frames are constant: encode them once at import.
_PING_BUFFERS = wire.encode_frame(wire.MSG_PING, with_payload=False)
_SHUTDOWN_BUFFERS = wire.encode_frame(wire.MSG_SHUTDOWN, with_payload=False)
