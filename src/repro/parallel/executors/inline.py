"""Serial in-process executor (tests, debugging, tiny batches)."""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.parallel.executors.base import Executor, ExecutorEvent

__all__ = ["InlineExecutor"]


class InlineExecutor(Executor):
    """Runs each task synchronously in the calling process.

    Deterministic and hermetic: no worker processes, no scheduling
    nondeterminism.  Crashes cannot occur (a segfault would take the
    driver down too) and timeouts are unenforceable — a hung call
    cannot be interrupted from the same thread — so the ``timeout``
    argument is accepted and ignored, mirroring the documented
    behaviour of the old ``in_process`` path.
    """

    name = "inline"

    def __init__(self) -> None:
        self._fn: Optional[Callable[..., object]] = None
        self._context: object = None
        self._events: List[ExecutorEvent] = []

    def start(
        self,
        fn: Callable[..., object],
        n_tasks: int,
        context: object = None,
    ) -> None:
        self._fn = fn
        self._context = context
        self._events = []

    def capacity(self) -> int:
        return 1

    def submit(
        self,
        tag: int,
        payload: object,
        timeout: Optional[float] = None,
        isolated: bool = False,
    ) -> None:
        assert self._fn is not None, "submit before start"
        started = time.perf_counter()
        try:
            if self._context is None:
                result = self._fn(payload)
            else:
                result = self._fn(payload, self._context)
        except Exception as exc:  # noqa: BLE001 - faults become events
            self._events.append(
                ExecutorEvent(
                    tag=tag,
                    kind="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    elapsed=time.perf_counter() - started,
                    worker=self.name,
                )
            )
            return
        self._events.append(
            ExecutorEvent(
                tag=tag,
                kind="ok",
                result=result,
                elapsed=time.perf_counter() - started,
                worker=self.name,
            )
        )

    def drain(self, timeout: Optional[float] = None) -> List[ExecutorEvent]:
        events, self._events = self._events, []
        return events

    def shutdown(self) -> None:
        self._events = []
