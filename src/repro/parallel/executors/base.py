"""The Executor protocol: pluggable execution substrates for batch scans.

PR 1 hard-wired the fault-tolerant scan layer to one machine's
``ProcessPoolExecutor``.  This package splits that coupling: the policy
driver (:func:`repro.parallel.faults.run_tasks`) owns *fault policy* —
retries, backoff, quarantine attribution, attempt accounting — while an
:class:`Executor` owns the *substrate*: where tasks physically run and
how their terminal states (including crashes and hangs) are observed.

An executor is a small event-oriented object:

* :meth:`Executor.start` fixes the task callable for a batch;
* :meth:`Executor.submit` hands over one payload under a driver-chosen
  integer ``tag``;
* :meth:`Executor.drain` blocks (boundedly) and returns structured
  :class:`ExecutorEvent` records — exactly one terminal event per
  submitted tag;
* :meth:`Executor.shutdown` releases the substrate.

Crash signalling is the load-bearing part of the contract.  A backend
that *knows* which task took a worker down (a socket worker runs one
task at a time; an isolated single-worker pool holds one task) emits a
``crash`` event with ``attributed=True`` and the driver charges that
task an attempt.  A backend that cannot know (a shared process pool
poisons every in-flight future at once) emits ``attributed=False``
events for every lost task, and the *driver* — not the backend — runs
the quarantine round that re-executes each lost task in isolation to
pin the blame.  Attribution therefore lives in one place and every
backend inherits it; see DESIGN.md §"Executor protocol".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["EVENT_KINDS", "ExecutorEvent", "Executor", "make_executor"]

#: Terminal states an executor can report for one submitted tag.
EVENT_KINDS = ("ok", "error", "timeout", "crash")


@dataclass
class ExecutorEvent:
    """Terminal state of one submitted task attempt.

    ``kind``:

    * ``"ok"`` — the callable returned; ``result`` holds the value.
    * ``"error"`` — the callable raised; ``error_type``/``message``
      describe the exception.
    * ``"timeout"`` — the attempt exceeded the ``timeout`` passed to
      :meth:`Executor.submit`; the backend has already reclaimed or
      abandoned whatever ran it.
    * ``"crash"`` — the execution vehicle died (process exit, dead
      socket worker).  ``attributed`` says whether the backend is
      certain this task caused the death; unattributed crashes make
      the driver run a quarantine round.

    ``elapsed`` is the backend-measured wall clock this attempt
    consumed (the driver accumulates it across attempts); ``worker``
    is a backend-specific identity string for per-worker metrics
    attribution (``None`` when the backend cannot tell).
    """

    tag: int
    kind: str
    result: object = None
    error_type: str = ""
    message: str = ""
    elapsed: float = 0.0
    worker: Optional[str] = None
    attributed: bool = True


class Executor(ABC):
    """Abstract execution substrate behind the fault-policy driver.

    Lifecycle: ``start(fn, n_tasks, context)`` → interleaved ``submit``/``drain``
    → (batch done) → possibly another ``start`` → ``shutdown``.  The
    driver keeps at most :meth:`capacity` tags in flight, so a
    backend's per-task clocks start at dispatch, not at queue entry.

    ``run_tasks`` shuts down executors it constructed itself; an
    executor passed in by the caller is started and drained but its
    lifetime (and its workers') stays with the caller, so one connected
    :class:`~repro.parallel.executors.sockets.SocketExecutor` can serve
    several batches — e.g. a scan followed by a journal resume.
    """

    #: Human-readable backend name (CLI ``--executor`` choices).
    name: str = "abstract"

    @abstractmethod
    def start(
        self,
        fn: Callable[..., object],
        n_tasks: int,
        context: object = None,
    ) -> None:
        """Begin a batch: fix the task callable and size hint.

        ``context`` is the batch's shared read-only state, shipped to
        every worker **once** per batch — over the socket backend as a
        single broadcast frame at worker hello, over the pool backend
        as a ``multiprocessing.shared_memory`` segment workers attach
        and decode zero-copy.  When a context is given the callable is
        invoked as ``fn(payload, context)``; with ``context=None`` the
        legacy single-argument form ``fn(payload)`` is kept, so
        existing callables keep working unchanged.
        """

    @abstractmethod
    def capacity(self) -> int:
        """Max tags the driver should keep in flight at once."""

    @abstractmethod
    def submit(
        self,
        tag: int,
        payload: object,
        timeout: Optional[float] = None,
        isolated: bool = False,
    ) -> None:
        """Dispatch one payload under ``tag``.

        ``timeout`` is the per-attempt wall-clock budget the backend
        must enforce (``None`` disables; backends that cannot interrupt
        work, like the inline executor, may ignore it).  ``isolated``
        asks for a vehicle whose crash is attributable to this task
        alone — the quarantine primitive.  Backends whose normal
        dispatch is already attributable may ignore the flag.
        """

    @abstractmethod
    def drain(self, timeout: Optional[float] = None) -> List[ExecutorEvent]:
        """Collect terminal events, blocking up to ``timeout`` seconds.

        May return an empty list on timeout; must never block
        indefinitely past ``timeout`` (the driver uses the bound to
        wake for retry-backoff deadlines).  With ``timeout=None`` the
        backend may block until at least one event exists, provided it
        still honours its own internal deadlines (task timeouts,
        dead-worker detection).
        """

    @abstractmethod
    def shutdown(self) -> None:
        """Release the substrate (terminate pools, close sockets)."""

    # -- context management -------------------------------------------
    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def make_executor(
    name: str,
    max_workers: Optional[int] = None,
    bind: str = "127.0.0.1",
    port: int = 0,
    min_workers: int = 1,
    worker_wait: float = 30.0,
):
    """Build an executor by CLI name (``inline`` / ``pool`` / ``socket``)."""
    if name == "inline":
        from repro.parallel.executors.inline import InlineExecutor

        return InlineExecutor()
    if name == "pool":
        from repro.parallel.executors.pool import ProcessPoolBackend

        return ProcessPoolBackend(max_workers=max_workers)
    if name == "socket":
        from repro.parallel.executors.sockets import SocketExecutor

        return SocketExecutor(
            bind=bind, port=port, min_workers=min_workers, worker_wait=worker_wait
        )
    raise ValueError(f"unknown executor {name!r} (expected inline, pool or socket)")
