"""Length-prefixed pickle framing for the socket executor.

One message = a 4-byte big-endian length followed by a pickled dict.
Pickle is the only codec that ships arbitrary task callables/payloads,
which means the socket backend is for *trusted* workers only (a
malicious peer could execute code via a crafted pickle) — the same
trust model as ``multiprocessing`` itself, extended across hosts the
operator controls.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Dict, Optional

__all__ = ["send_msg", "recv_msg", "WireError"]

_HEADER = struct.Struct(">I")

#: Refuse absurd frames (corrupt header / non-protocol peer).
MAX_FRAME = 256 * 1024 * 1024


class WireError(ConnectionError):
    """The peer closed mid-frame or sent a malformed frame."""


def send_msg(sock: socket.socket, payload: Dict) -> None:
    """Serialise and send one framed message (atomic via ``sendall``)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or ``None`` on a clean EOF at a frame
    boundary (``WireError`` on EOF mid-frame)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[Dict]:
    """Receive one framed message; ``None`` on clean EOF.

    Raises ``socket.timeout`` if the socket has a timeout and no bytes
    arrive, and ``WireError`` on torn or oversized frames.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds protocol maximum")
    blob = _recv_exact(sock, length)
    if blob is None:
        raise WireError("connection closed mid-frame")
    return pickle.loads(blob)
