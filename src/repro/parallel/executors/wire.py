"""Fixed binary frame protocol for the executor data plane.

PR 2 framed every message as a 4-byte length plus a pickled dict: easy,
but every task re-shipped the callable, every array was copied through
``pickle.dumps``, and the receiving side had to execute whatever pickle
arrived — a trust caveat the module used to document in bold.  This
module replaces that with a fixed binary layout:

``frame := header · section-table · data-heap``

* **header** — ``struct('>4sBBHqQ')``: magic ``b"SLW2"``, protocol
  version, message type, section count, a signed 64-bit ``tag`` (the
  driver's task tag / batch epoch), and the body length in bytes.
* **section table** — one fixed 48-byte entry per section,
  ``struct('>BBBxIQ4Q')``: payload kind, dtype code, ndim, CRC-32
  (pickle sections only), data length, and up to four 64-bit shape
  dims.  Kinds: ``JSON`` (the object tree), ``BYTES``, ``NDARRAY``
  (raw little-endian buffers), ``PICKLE`` (explicit, checksummed).
* **data heap** — section payloads back to back, in table order.

Sending is scatter-gather: array sections go to the socket as
``memoryview`` s of the original buffers (no serialization copy), and
small parts coalesce into one ``bytes``.  Receiving reads the body into
a single buffer and decodes every ``NDARRAY`` section with
``numpy.frombuffer`` — a zero-copy view, returned read-only so shared
backing stores (the pool backend's ``multiprocessing.shared_memory``
segments) cannot be corrupted by a worker.

Object codec
------------
:func:`encode_frame` carries one payload object per frame.  Plain data
— ``None``/bool/int/float/str/bytes, lists, tuples, dicts (any
encodable keys), numpy arrays and scalars — is encoded structurally:
containers into the JSON section, buffers into their own sections.
Dataclasses registered with :func:`register_struct` travel as named
field maps and are reconstructed on the far side (unknown names are
resolved by importing their module, gated to the ``repro.`` namespace).

Anything else must opt in explicitly via :class:`Pickled` (or the
``allow_pickle=True`` encode fallback), which produces a ``PICKLE``
section protected by a CRC-32 and **refused at decode unless the
receiver passes** ``allow_pickle=True``.  The worker only does so for
the one-shot batch broadcast that carries the task callable; task
frames decode strictly, so the old execute-any-pickle trust caveat is
retired for everything except that explicitly framed, checksummed blob.
"""

from __future__ import annotations

import importlib
import json
import pickle
import socket
import struct
import zlib
from dataclasses import fields, is_dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "WireError",
    "Pickled",
    "Frame",
    "register_struct",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "buffers_nbytes",
    "MAX_FRAME",
    "MSG_HELLO",
    "MSG_BATCH",
    "MSG_TASK",
    "MSG_RESULT",
    "MSG_HEARTBEAT",
    "MSG_PING",
    "MSG_SHUTDOWN",
]

MAGIC = b"SLW2"
VERSION = 1

# -- message types ------------------------------------------------------
MSG_HELLO = 1      #: worker → server: registration ({"worker", "pid"})
MSG_BATCH = 2      #: server → worker: one-shot broadcast (fn blob + context)
MSG_TASK = 3       #: server → worker: one task payload under header tag
MSG_RESULT = 4     #: worker → server: terminal state of the tagged task
MSG_HEARTBEAT = 5  #: worker → server: 24-byte liveness frame
MSG_PING = 6       #: server → worker: 24-byte idle-liveness frame
MSG_SHUTDOWN = 7   #: server → worker: drain and exit

#: magic, version, msg_type, n_sections, tag, body_len
_HEADER = struct.Struct(">4sBBHqQ")
#: kind, dtype, ndim, pad, crc32, data_len, shape[4]
_SECTION = struct.Struct(">BBBxIQ4Q")

#: Refuse absurd frames (corrupt header / non-protocol peer).
MAX_FRAME = 256 * 1024 * 1024
_MAX_SECTIONS = 65535
_MAX_DIMS = 4

# -- section kinds ------------------------------------------------------
_K_JSON = 1
_K_BYTES = 2
_K_NDARRAY = 3
_K_PICKLE = 4

# Wire dtypes are explicit little-endian so frames are portable across
# hosts regardless of native byte order.
_DTYPE_CODES: Dict[str, int] = {
    "<f8": 1, "<f4": 2, "<i8": 3, "<i4": 4, "<i2": 5, "<i1": 6,
    "<u8": 7, "<u4": 8, "<u2": 9, "|u1": 10, "|b1": 11, "<c16": 12,
}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}

#: Buffers below this size are coalesced into one bytes object per
#: frame; larger ones go to the socket as zero-copy memoryviews.
_COALESCE_LIMIT = 16 * 1024

_RESERVED_KEYS = frozenset({"__nd__", "__by__", "__tu__", "__it__", "__dc__", "__pk__"})

#: Sentinel: "leave the socket timeout alone" (recv_frame default).
_KEEP_TIMEOUT = object()


class WireError(ConnectionError):
    """The peer closed mid-frame or sent a malformed/refused frame."""


class Pickled:
    """Explicitly opt one payload subtree into pickle framing.

    The blob travels as a CRC-32-checksummed ``PICKLE`` section and is
    only unpickled by receivers that pass ``allow_pickle=True`` — the
    seam the batch broadcast uses for the task callable.
    """

    __slots__ = ("blob",)

    def __init__(self, obj: object) -> None:
        if isinstance(obj, (bytes, bytearray)):
            self.blob = bytes(obj)
        else:
            self.blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Registered dataclasses (pickle-free structured payloads)
# ----------------------------------------------------------------------
_STRUCTS: Dict[str, Type] = {}
_STRUCT_TYPES: Dict[Type, str] = {}


def register_struct(cls: Type) -> Type:
    """Allow ``cls`` (a dataclass) to travel the wire as a field map.

    Usable as a decorator.  Decoding an unregistered name imports its
    module first (``repro.*`` modules only) so worker processes that
    never imported the defining module still resolve it.
    """
    if not is_dataclass(cls):
        raise TypeError(f"register_struct needs a dataclass, got {cls!r}")
    key = f"{cls.__module__}:{cls.__qualname__}"
    _STRUCTS[key] = cls
    _STRUCT_TYPES[cls] = key
    return cls


def _resolve_struct(key: str) -> Type:
    cls = _STRUCTS.get(key)
    if cls is not None:
        return cls
    module = key.split(":", 1)[0]
    if module != "repro" and not module.startswith("repro."):
        raise WireError(f"refusing to resolve struct {key!r} outside repro.*")
    try:
        importlib.import_module(module)
    except ImportError as exc:
        raise WireError(f"cannot resolve struct {key!r}: {exc}") from exc
    cls = _STRUCTS.get(key)
    if cls is None:
        raise WireError(f"module {module!r} does not register struct {key!r}")
    return cls


# ----------------------------------------------------------------------
# Object codec
# ----------------------------------------------------------------------
def _wire_dtype(arr: np.ndarray) -> Tuple[np.ndarray, int]:
    dt = arr.dtype
    if dt.byteorder == ">" or (dt.byteorder == "=" and not np.little_endian):
        arr = arr.astype(dt.newbyteorder("<"))
        dt = arr.dtype
    name = dt.str if dt.str in _DTYPE_CODES else dt.str.replace("=", "<")
    code = _DTYPE_CODES.get(name)
    if code is None:
        raise TypeError(f"dtype {dt} has no wire encoding")
    return arr, code


def _enc(obj: object, sections: List[Tuple[int, int, Tuple[int, ...], object]],
         allow_pickle: bool) -> object:
    """Encode one object into a JSON-able tree + out-of-band sections.

    Each ``sections`` entry is ``(kind, dtype_code, shape, buffer)``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.generic):
        return _enc(obj.item(), sections, allow_pickle)
    if isinstance(obj, np.ndarray):
        if obj.ndim > _MAX_DIMS:
            raise TypeError(f"arrays beyond {_MAX_DIMS} dims have no wire encoding")
        # ascontiguousarray promotes 0-d to 1-d, so keep the true shape.
        arr, code = _wire_dtype(np.ascontiguousarray(obj))
        sections.append((_K_NDARRAY, code, obj.shape, memoryview(arr).cast("B")))
        return {"__nd__": len(sections) - 1}
    if isinstance(obj, (bytes, bytearray, memoryview)):
        sections.append((_K_BYTES, 0, (), bytes(obj)))
        return {"__by__": len(sections) - 1}
    if isinstance(obj, Pickled):
        sections.append((_K_PICKLE, 0, (), obj.blob))
        return {"__pk__": len(sections) - 1}
    if isinstance(obj, tuple):
        return {"__tu__": [_enc(v, sections, allow_pickle) for v in obj]}
    if isinstance(obj, list):
        return [_enc(v, sections, allow_pickle) for v in obj]
    if isinstance(obj, dict):
        plain = all(isinstance(k, str) for k in obj) and not (
            _RESERVED_KEYS & obj.keys()
        )
        if plain:
            return {k: _enc(v, sections, allow_pickle) for k, v in obj.items()}
        return {"__it__": [
            [_enc(k, sections, allow_pickle), _enc(v, sections, allow_pickle)]
            for k, v in obj.items()
        ]}
    key = _STRUCT_TYPES.get(type(obj))
    if key is not None:
        return {"__dc__": key, "f": {
            f.name: _enc(getattr(obj, f.name), sections, allow_pickle)
            for f in fields(obj)
        }}
    if allow_pickle:
        return _enc(Pickled(obj), sections, allow_pickle)
    raise TypeError(
        f"object of type {type(obj).__name__} is not wire-encodable; use plain "
        "data / numpy arrays / register_struct dataclasses, or wrap it in "
        "wire.Pickled for an explicit (checksummed, receiver-gated) blob"
    )


def _dec(node: object, sections: Sequence[object], allow_pickle: bool) -> object:
    if isinstance(node, list):
        return [_dec(v, sections, allow_pickle) for v in node]
    if not isinstance(node, dict):
        return node
    if "__nd__" in node and len(node) == 1:
        return sections[node["__nd__"]]
    if "__by__" in node and len(node) == 1:
        return sections[node["__by__"]]
    if "__pk__" in node and len(node) == 1:
        blob = sections[node["__pk__"]]
        if not allow_pickle:
            raise WireError(
                "frame carries a pickle section but the receiver did not opt in"
            )
        return pickle.loads(blob)
    if "__tu__" in node and len(node) == 1:
        return tuple(_dec(v, sections, allow_pickle) for v in node["__tu__"])
    if "__it__" in node and len(node) == 1:
        return {
            _dec(k, sections, allow_pickle): _dec(v, sections, allow_pickle)
            for k, v in node["__it__"]
        }
    if "__dc__" in node and len(node) == 2 and "f" in node:
        cls = _resolve_struct(node["__dc__"])
        return cls(**{
            k: _dec(v, sections, allow_pickle) for k, v in node["f"].items()
        })
    return {k: _dec(v, sections, allow_pickle) for k, v in node.items()}


# ----------------------------------------------------------------------
# Frame assembly / parsing
# ----------------------------------------------------------------------
def encode_frame(
    msg_type: int,
    tag: int = 0,
    payload: object = None,
    *,
    allow_pickle: bool = True,
    with_payload: bool = True,
) -> List[object]:
    """Build one frame as a list of send buffers (scatter-gather).

    ``with_payload=False`` produces a 24-byte control frame (heartbeat,
    ping, shutdown) with no sections at all.  The first buffer is the
    header plus section table plus coalesced small payloads; large
    array/bytes buffers follow as zero-copy memoryviews.
    """
    # Placeholders in the JSON tree index *auxiliary* sections (0-based);
    # the root JSON section itself always travels as table entry 0, so
    # aux section i sits at table entry i+1 on both sides.
    sections: List[Tuple[int, int, Tuple[int, ...], object]] = []
    if with_payload:
        tree = _enc(payload, sections, allow_pickle)
        root = json.dumps(tree, separators=(",", ":")).encode("utf-8")
        sections.insert(0, (_K_JSON, 0, (), root))
    if len(sections) > _MAX_SECTIONS:
        raise TypeError(f"payload needs {len(sections)} sections (max {_MAX_SECTIONS})")
    table = bytearray()
    body_len = len(sections) * _SECTION.size
    datas: List[object] = []
    for kind, dtype_code, shape, buf in sections:
        data_len = len(buf)
        crc = zlib.crc32(buf) if kind == _K_PICKLE else 0
        dims = list(shape) + [0] * (_MAX_DIMS - len(shape))
        table += _SECTION.pack(kind, dtype_code, len(shape), crc, data_len, *dims)
        datas.append(buf)
        body_len += data_len
    if body_len > MAX_FRAME:
        raise TypeError(f"frame of {body_len} bytes exceeds protocol maximum")
    header = _HEADER.pack(MAGIC, VERSION, msg_type, len(sections), tag, body_len)

    # Coalesce the header, table and small payloads; keep big buffers
    # as views so arrays are never copied on their way to the socket.
    buffers: List[object] = []
    small = bytearray(header)
    small += table
    for buf in datas:
        if len(buf) < _COALESCE_LIMIT:
            small += buf
        else:
            buffers.append(bytes(small))
            small = bytearray()
            buffers.append(buf)
    if small:
        buffers.append(bytes(small))
    return buffers


def buffers_nbytes(buffers: Sequence[object]) -> int:
    """Total wire size of an encoded frame."""
    return sum(len(b) for b in buffers)


class Frame:
    """One received frame: header fields plus a lazily-decoded payload.

    Decoding is deferred so the receiver can gate pickle sections per
    message type (e.g. allow them for the batch broadcast only).
    """

    __slots__ = ("msg_type", "tag", "nbytes", "_sections", "_root", "_cache")

    def __init__(self, msg_type: int, tag: int, nbytes: int,
                 sections: Optional[List[object]], root: Optional[bytes]) -> None:
        self.msg_type = msg_type
        self.tag = tag
        self.nbytes = nbytes
        self._sections = sections
        self._root = root
        self._cache: Dict[bool, object] = {}

    def payload(self, allow_pickle: bool = False) -> object:
        """Decode the payload object (``None`` for control frames)."""
        if self._root is None:
            return None
        if allow_pickle not in self._cache:
            tree = json.loads(self._root.decode("utf-8"))
            self._cache[allow_pickle] = _dec(tree, self._sections, allow_pickle)
        return self._cache[allow_pickle]


def _parse_body(msg_type: int, tag: int, n_sections: int, body: memoryview,
                nbytes: int) -> Frame:
    if n_sections == 0:
        if len(body):
            raise WireError("control frame carries unexpected body bytes")
        return Frame(msg_type, tag, nbytes, None, None)
    table_len = n_sections * _SECTION.size
    if len(body) < table_len:
        raise WireError("frame body shorter than its section table")
    offset = table_len
    root: Optional[bytes] = None
    sections: List[object] = []
    for k in range(n_sections):
        entry = _SECTION.unpack_from(body, k * _SECTION.size)
        kind, dtype_code, ndim, crc, data_len = entry[:5]
        dims = entry[5:5 + _MAX_DIMS]
        if offset + data_len > len(body):
            raise WireError("section data overruns the frame body")
        data = body[offset:offset + data_len]
        offset += data_len
        if kind == _K_JSON:
            if k != 0:
                raise WireError("JSON root must be section 0")
            root = bytes(data)
        elif kind == _K_BYTES:
            sections.append(bytes(data))
        elif kind == _K_NDARRAY:
            dtype = _CODE_DTYPES.get(dtype_code)
            if dtype is None:
                raise WireError(f"unknown wire dtype code {dtype_code}")
            if ndim > _MAX_DIMS:
                raise WireError(f"array section with {ndim} dims")
            shape = tuple(int(d) for d in dims[:ndim])
            if any(d > MAX_FRAME for d in shape):
                raise WireError("array section with an absurd dimension")
            expected = dtype.itemsize
            for d in shape:
                expected *= d
            if expected != data_len:
                raise WireError(
                    f"array section shape {shape} x {dtype} needs {expected} "
                    f"bytes, frame carries {data_len}"
                )
            arr = np.frombuffer(data, dtype=dtype).reshape(shape)
            arr.flags.writeable = False
            sections.append(arr)
        elif kind == _K_PICKLE:
            if zlib.crc32(data) != crc:
                raise WireError("pickle section failed its checksum")
            sections.append(bytes(data))
        else:
            raise WireError(f"unknown section kind {kind}")
    if offset != len(body):
        raise WireError("frame body longer than its sections")
    if root is None:
        raise WireError("payload frame is missing its JSON root section")
    return Frame(msg_type, tag, nbytes, sections, root)


def decode_frame(buffer) -> Frame:
    """Parse one complete frame from an in-memory buffer.

    This is the attach path for ``multiprocessing.shared_memory``
    segments: the pool backend writes an encoded frame into the segment
    once, and every worker maps it and decodes views in place.
    """
    view = memoryview(buffer)
    if len(view) < _HEADER.size:
        raise WireError("buffer shorter than a frame header")
    magic, version, msg_type, n_sections, tag, body_len = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise WireError("buffer does not start with a slimcodeml frame")
    if version != VERSION:
        raise WireError(f"frame protocol version {version} (expected {VERSION})")
    if body_len > len(view) - _HEADER.size:
        raise WireError("frame body overruns the buffer")
    body = view[_HEADER.size:_HEADER.size + body_len]
    return _parse_body(msg_type, tag, n_sections, body, _HEADER.size + body_len)


# ----------------------------------------------------------------------
# Socket I/O
# ----------------------------------------------------------------------
def _send_buffers(sock: socket.socket, buffers: Sequence[object]) -> int:
    total = 0
    for buf in buffers:
        sock.sendall(buf)
        total += len(buf)
    return total


def send_frame(
    sock: socket.socket,
    msg_type: int,
    tag: int = 0,
    payload: object = None,
    *,
    allow_pickle: bool = True,
    with_payload: bool = True,
) -> int:
    """Encode and send one frame; returns the bytes put on the wire."""
    return _send_buffers(
        sock,
        encode_frame(msg_type, tag, payload,
                     allow_pickle=allow_pickle, with_payload=with_payload),
    )


def send_buffers(sock: socket.socket, buffers: Sequence[object]) -> int:
    """Send a pre-encoded frame (the broadcast path: encode once, send
    to every worker)."""
    return _send_buffers(sock, buffers)


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytearray]:
    """Read exactly ``n`` bytes into a fresh buffer.

    Returns ``None`` on a clean EOF before the first byte when
    ``at_boundary`` (frame boundary); raises :class:`WireError` on EOF
    anywhere else.  ``socket.timeout`` propagates.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            if got == 0 and at_boundary:
                return None
            raise WireError("connection closed mid-frame")
        got += k
    return buf


def recv_frame(
    sock: socket.socket,
    *,
    timeout: object = _KEEP_TIMEOUT,
    max_frame: int = MAX_FRAME,
) -> Optional[Frame]:
    """Receive one frame; ``None`` on clean EOF at a frame boundary.

    ``timeout`` (seconds or ``None`` for blocking), when given, applies
    for the duration of this call only — the socket's previous timeout
    is restored afterwards, so a framed read can never silently change
    the blocking behaviour of later operations on the connection.
    Raises ``socket.timeout`` when no full frame arrives in time and
    :class:`WireError` on torn, malformed or oversized frames.
    """
    prev = sock.gettimeout() if timeout is not _KEEP_TIMEOUT else None
    if timeout is not _KEEP_TIMEOUT:
        sock.settimeout(timeout)  # type: ignore[arg-type]
    try:
        header = _recv_exact(sock, _HEADER.size, at_boundary=True)
        if header is None:
            return None
        magic, version, msg_type, n_sections, tag, body_len = _HEADER.unpack(bytes(header))
        if magic != MAGIC:
            raise WireError("peer is not speaking the slimcodeml frame protocol")
        if version != VERSION:
            raise WireError(f"frame protocol version {version} (expected {VERSION})")
        if body_len > max_frame:
            raise WireError(f"frame of {body_len} bytes exceeds protocol maximum")
        if n_sections > _MAX_SECTIONS:
            raise WireError(f"frame with {n_sections} sections exceeds protocol maximum")
        body = bytearray()
        if body_len:
            got = _recv_exact(sock, body_len, at_boundary=False)
            assert got is not None
            body = got
        return _parse_body(msg_type, tag, n_sections, memoryview(body),
                           _HEADER.size + body_len)
    finally:
        if timeout is not _KEEP_TIMEOUT:
            sock.settimeout(prev)
