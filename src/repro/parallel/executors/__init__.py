"""Pluggable execution substrates for the fault-tolerant scan layer.

The policy driver (:func:`repro.parallel.faults.run_tasks`) is
backend-agnostic; these are the conforming backends:

* :class:`InlineExecutor` — serial, in-process (tests, debugging);
* :class:`ProcessPoolBackend` — one machine's worker processes
  (PR 1's behaviour, preserved);
* :class:`SocketExecutor` — a TCP work queue served to
  ``slimcodeml worker`` processes on any reachable host.

See :mod:`repro.parallel.executors.base` for the protocol and
DESIGN.md §"Executor protocol" for why crash attribution lives in the
driver rather than in each backend.
"""

from repro.parallel.executors.base import (
    EVENT_KINDS,
    Executor,
    ExecutorEvent,
    make_executor,
)
from repro.parallel.executors.inline import InlineExecutor
from repro.parallel.executors.pool import ProcessPoolBackend
from repro.parallel.executors.sockets import SocketExecutor
from repro.parallel.executors.worker import run_worker

__all__ = [
    "EVENT_KINDS",
    "Executor",
    "ExecutorEvent",
    "make_executor",
    "InlineExecutor",
    "ProcessPoolBackend",
    "SocketExecutor",
    "run_worker",
]
