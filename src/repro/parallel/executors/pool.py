"""Process-pool backend: PR 1's ``ProcessPoolExecutor`` substrate.

Behaviour is preserved from the pre-refactor ``run_tasks`` pool path:

* in-flight is bounded by the worker count (the driver enforces this
  via :meth:`capacity`), so per-task clocks start at submission;
* a hung task is abandoned at its deadline — the pool (and its stuck
  worker processes) is terminated and every *surviving* in-flight task
  is transparently resubmitted to a fresh pool at no attempt cost;
* a worker crash poisons every in-flight future
  (:class:`BrokenProcessPool`), which this backend reports as
  ``crash`` events with ``attributed=False`` — the driver's quarantine
  round then calls :meth:`submit` with ``isolated=True`` to replay
  each lost task in a private single-worker pool, where a second crash
  *is* attributable (``attributed=True``).

Shared batch state: when :meth:`start` receives a ``context``, it is
wire-encoded **once** into a ``multiprocessing.shared_memory`` segment.
Tasks then carry only their small payloads (for the scan layer:
integer indices into the context); each worker process attaches the
segment on its first task and decodes zero-copy read-only views with
``numpy.frombuffer`` — no per-task pickling of alignments, trees or
rate-matrix config, and no copies at all for the array payloads.  The
coordinator owns the segment's lifetime and unlinks it at
:meth:`shutdown` (or when a new batch replaces it).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel.executors.base import Executor, ExecutorEvent
from repro.parallel.executors import wire

__all__ = ["ProcessPoolBackend"]

#: Floor for pool-wait polling so a just-expired deadline cannot spin.
_MIN_WAIT = 0.02


def _invoke(fn: Callable[[object], object], payload: object):
    """Worker-side wrapper: returns ``(worker_id, result)`` so successes
    carry the pid that computed them (per-worker metrics attribution)."""
    return f"pid:{os.getpid()}", fn(payload)


#: Worker-process cache of the attached context segment: one batch at a
#: time, so a new segment name evicts the previous attachment.
_ATTACHED: Dict[str, Tuple[object, object]] = {}


def _attach_context(shm_name: str) -> object:
    """Attach and decode the broadcast context segment (cached).

    The decode is zero-copy: array fields come back as read-only
    ``numpy.frombuffer`` views into the shared segment, so every worker
    on the machine reads the same physical pages.
    """
    cached = _ATTACHED.get(shm_name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory, resource_tracker

    # CPython's resource tracker registers segments on *attach* too
    # (bpo-39959), which would either double-unregister under a forked
    # pool (shared tracker) or unlink the coordinator's live segment
    # when a spawned worker exits.  The coordinator owns the segment's
    # lifetime, so keep this process out of the cleanup chain entirely
    # by muting registration for the duration of the attach.
    orig_register = resource_tracker.register

    def _mute(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            orig_register(name, rtype)

    resource_tracker.register = _mute
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = orig_register
    context = wire.decode_frame(shm.buf).payload()
    _ATTACHED.clear()  # one batch at a time; drop any stale segment
    _ATTACHED[shm_name] = (shm, context)  # keep shm alive: views point in
    return context


def _invoke_shared(fn: Callable[..., object], payload: object, shm_name: str):
    """Worker-side wrapper for batches with a shared context segment."""
    return f"pid:{os.getpid()}", fn(payload, _attach_context(shm_name))


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, terminating any stuck workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()


@dataclass
class _Entry:
    tag: int
    payload: object
    future: Future
    started: float
    deadline: Optional[float]
    timeout: Optional[float]
    isolated: bool
    qpool: Optional[ProcessPoolExecutor] = None
    #: Wall clock accumulated on earlier pools (survivor resubmissions).
    carried: float = 0.0
    extra: Dict = field(default_factory=dict)


class ProcessPoolBackend(Executor):
    """One machine's worth of worker processes behind the driver."""

    name = "pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._workers = 1
        self._fn: Optional[Callable[..., object]] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._entries: Dict[Future, _Entry] = {}
        self._shm = None  # coordinator-owned context segment
        self._context_bytes = 0

    # -- lifecycle -----------------------------------------------------
    def start(
        self,
        fn: Callable[..., object],
        n_tasks: int,
        context: object = None,
    ) -> None:
        self._fn = fn
        self._release_context()
        if context is not None:
            from multiprocessing import shared_memory

            buffers = wire.encode_frame(wire.MSG_BATCH, 0, context)
            size = wire.buffers_nbytes(buffers)
            shm = shared_memory.SharedMemory(create=True, size=size)
            offset = 0
            for buf in buffers:
                n = len(buf)
                shm.buf[offset:offset + n] = bytes(buf)
                offset += n
            self._shm = shm
            self._context_bytes = size
        workers = self._max_workers if self._max_workers is not None else (os.cpu_count() or 1)
        self._workers = max(1, min(workers, max(1, n_tasks)))

    def capacity(self) -> int:
        return self._workers

    def context_nbytes(self) -> int:
        """Encoded size of the current batch's shared context segment."""
        return self._context_bytes

    def _release_context(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except OSError:
                pass
            self._shm = None
            self._context_bytes = 0

    def _submit_call(self, pool: ProcessPoolExecutor, payload: object) -> Future:
        if self._shm is not None:
            return pool.submit(_invoke_shared, self._fn, payload, self._shm.name)
        return pool.submit(_invoke, self._fn, payload)

    def shutdown(self) -> None:
        for entry in list(self._entries.values()):
            if entry.qpool is not None:
                _abandon_pool(entry.qpool)
        self._entries.clear()
        if self._pool is not None:
            _abandon_pool(self._pool)
            self._pool = None
        self._release_context()

    # -- submission ----------------------------------------------------
    def submit(
        self,
        tag: int,
        payload: object,
        timeout: Optional[float] = None,
        isolated: bool = False,
    ) -> None:
        assert self._fn is not None, "submit before start"
        now = time.monotonic()
        if isolated:
            qpool = ProcessPoolExecutor(max_workers=1)
            future = self._submit_call(qpool, payload)
            self._entries[future] = _Entry(
                tag, payload, future, now,
                now + timeout if timeout is not None else None,
                timeout, True, qpool=qpool,
            )
            return
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        future = self._submit_call(self._pool, payload)
        self._entries[future] = _Entry(
            tag, payload, future, now,
            now + timeout if timeout is not None else None,
            timeout, False,
        )

    # -- event collection ----------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> List[ExecutorEvent]:
        if not self._entries:
            return []
        wait_for = timeout
        deadlines = [e.deadline for e in self._entries.values() if e.deadline is not None]
        if deadlines:
            ripe = max(_MIN_WAIT, min(deadlines) - time.monotonic())
            wait_for = ripe if wait_for is None else min(wait_for, ripe)
        elif wait_for is not None:
            wait_for = max(_MIN_WAIT, wait_for)

        done, _ = wait(set(self._entries), timeout=wait_for, return_when=FIRST_COMPLETED)

        events: List[ExecutorEvent] = []
        pool_broken = False
        now = time.monotonic()
        for future in done:
            entry = self._entries[future]
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                if entry.isolated:
                    # A private single-worker pool died: exact attribution.
                    del self._entries[future]
                    _abandon_pool(entry.qpool)
                    events.append(
                        ExecutorEvent(
                            tag=entry.tag,
                            kind="crash",
                            error_type="BrokenProcessPool",
                            message="worker process died (isolated in quarantine)",
                            elapsed=entry.carried + (now - entry.started),
                            attributed=True,
                        )
                    )
                else:
                    # The whole shared pool is poisoned; handled below
                    # together with the rest of the in-flight set.
                    pool_broken = True
                continue
            del self._entries[future]
            elapsed = entry.carried + (now - entry.started)
            if entry.isolated and entry.qpool is not None:
                _abandon_pool(entry.qpool)
            if exc is None:
                worker, result = future.result()
                events.append(
                    ExecutorEvent(tag=entry.tag, kind="ok", result=result,
                                  elapsed=elapsed, worker=worker)
                )
            else:
                events.append(
                    ExecutorEvent(
                        tag=entry.tag,
                        kind="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        elapsed=elapsed,
                    )
                )

        if pool_broken or getattr(self._pool, "_broken", False):
            # Every task on the shared pool was lost with it; the
            # culprit is indistinguishable from its victims here, so
            # signal unattributed crashes and let the driver quarantine.
            lost = [e for e in self._entries.values() if not e.isolated]
            for entry in lost:
                del self._entries[entry.future]
                events.append(
                    ExecutorEvent(
                        tag=entry.tag,
                        kind="crash",
                        error_type="BrokenProcessPool",
                        message="worker process crashed and poisoned the pool",
                        elapsed=entry.carried + (now - entry.started),
                        attributed=False,
                    )
                )
            if self._pool is not None:
                _abandon_pool(self._pool)
                self._pool = None  # rebuilt lazily on the next submit
            return events

        expired = [
            e for e in self._entries.values()
            if e.deadline is not None and now > e.deadline
        ]
        if expired:
            for entry in expired:
                del self._entries[entry.future]
                events.append(
                    ExecutorEvent(
                        tag=entry.tag,
                        kind="timeout",
                        error_type="TaskTimeout",
                        message=f"exceeded task_timeout={entry.timeout:g}s",
                        elapsed=entry.carried + (now - entry.started),
                    )
                )
                if entry.isolated and entry.qpool is not None:
                    _abandon_pool(entry.qpool)
            # A stuck worker cannot be cancelled: if any expired task
            # lived on the shared pool, abandon it (terminating the
            # hung processes) and move every *surviving* shared-pool
            # task to a fresh pool at no attempt cost.
            if any(not e.isolated for e in expired):
                survivors = [e for e in self._entries.values() if not e.isolated]
                for entry in survivors:
                    del self._entries[entry.future]
                if self._pool is not None:
                    _abandon_pool(self._pool)
                self._pool = ProcessPoolExecutor(max_workers=self._workers)
                for entry in survivors:
                    entry.carried += now - entry.started
                    entry.started = time.monotonic()
                    if entry.timeout is not None:
                        entry.deadline = entry.started + entry.timeout
                    entry.future = self._submit_call(self._pool, entry.payload)
                    self._entries[entry.future] = entry
        return events
