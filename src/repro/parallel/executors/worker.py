"""Worker-side loop for the socket executor (``slimcodeml worker``).

A worker is deliberately dumb: connect, say hello, then loop —
receive a pickled ``(fn, payload)`` task, run it, stream the result
(or the structured exception) back, repeat.  A daemon thread
heartbeats every couple of seconds so the server can tell a *hung
task* (heartbeats keep flowing, the deadline trips) from a *dead
worker* (silence / EOF).  All fault policy — retries, backoff,
attribution — lives with the server's driver, never here.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from typing import Optional, Tuple

from repro.parallel.executors.wire import WireError, recv_msg, send_msg

__all__ = ["run_worker", "HEARTBEAT_INTERVAL"]

#: Seconds between idle/busy heartbeats (well under the server's
#: default 15 s ``heartbeat_timeout``).
HEARTBEAT_INTERVAL = 2.0


def parse_address(spec: str) -> Tuple[str, int]:
    """``host:port`` → tuple (the CLI's ``--connect`` argument)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {spec!r}")
    return host, int(port)


def _heartbeat_loop(sock: socket.socket, send_lock: threading.Lock,
                    stop: threading.Event) -> None:
    while not stop.wait(HEARTBEAT_INTERVAL):
        try:
            with send_lock:
                send_msg(sock, {"type": "heartbeat"})
        except OSError:
            return


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 30.0,
) -> int:
    """Serve tasks from ``host:port`` until told to stop.

    Returns the number of tasks completed (successes *and* captured
    errors both count — either way the worker did its job).  Exits on
    a ``shutdown`` message, on EOF (server gone), or after
    ``max_tasks`` tasks.
    """
    worker_name = name or f"{socket.gethostname()}:pid{os.getpid()}"
    # Workers may legitimately start before the coordinator binds its
    # port (fleet-first deployment), so refused connections retry until
    # ``connect_timeout`` elapses.
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
    sock.settimeout(None)
    send_lock = threading.Lock()
    stop = threading.Event()
    with send_lock:
        send_msg(sock, {"type": "hello", "worker": worker_name, "pid": os.getpid()})
    threading.Thread(
        target=_heartbeat_loop, args=(sock, send_lock, stop),
        name="slimcodeml-heartbeat", daemon=True,
    ).start()

    # Every task of a batch ships the same callable; cache the unpickle.
    fn_blob: Optional[bytes] = None
    fn = None
    done = 0
    try:
        while True:
            try:
                msg = recv_msg(sock)
            except (OSError, WireError):
                break
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") != "task":
                continue
            if msg["fn"] != fn_blob:
                fn_blob = msg["fn"]
                fn = pickle.loads(fn_blob)
            started = time.perf_counter()
            try:
                result = fn(msg["payload"])
            except Exception as exc:  # noqa: BLE001 - faults become messages
                reply = {
                    "type": "result",
                    "tag": msg["tag"],
                    "ok": False,
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "elapsed": time.perf_counter() - started,
                }
            else:
                reply = {
                    "type": "result",
                    "tag": msg["tag"],
                    "ok": True,
                    "result": result,
                    "elapsed": time.perf_counter() - started,
                }
            try:
                with send_lock:
                    send_msg(sock, reply)
            except OSError:
                break
            done += 1
            if max_tasks is not None and done >= max_tasks:
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return done
