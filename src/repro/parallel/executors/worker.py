"""Worker-side loop for the socket executor (``slimcodeml worker``).

A worker is deliberately dumb: connect, say hello, receive the batch
broadcast (the pickled task callable — the only frame this process
will ever unpickle — plus the batch's shared read-only context), then
loop: receive a strictly-decoded ``TASK`` frame, run it, stream the
result back, repeat.  A daemon thread heartbeats every couple of
seconds so the server can tell a *hung task* (heartbeats keep flowing,
the deadline trips) from a *dead worker* (silence / EOF).  All fault
policy — retries, backoff, attribution — lives with the server's
driver, never here.

The task loop's read is bounded by ``idle_timeout``: the coordinator
pings every couple of seconds while idle, so prolonged silence means
it is hung or partitioned — the worker exits cleanly instead of
blocking forever (the old untimed read wedged workers behind a frozen
coordinator while their heartbeats kept flowing).
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Optional, Tuple

from repro.parallel.executors import wire
from repro.parallel.executors.wire import WireError

__all__ = ["run_worker", "parse_address", "HEARTBEAT_INTERVAL"]

#: Seconds between idle/busy heartbeats (well under the server's
#: default 15 s ``heartbeat_timeout``).
HEARTBEAT_INTERVAL = 2.0

#: Default seconds of coordinator silence before a worker gives up.
#: Generous relative to the coordinator's ~2 s idle ping, so only a
#: genuinely hung or partitioned coordinator trips it.
DEFAULT_IDLE_TIMEOUT = 60.0


def parse_address(spec: str) -> Tuple[str, int]:
    """``host:port`` → tuple (the CLI's ``--connect`` argument)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {spec!r}")
    return host, int(port)


def _log(name: str, message: str) -> None:
    print(f"[worker {name}] {message}", file=sys.stderr, flush=True)


def _heartbeat_loop(sock: socket.socket, send_lock: threading.Lock,
                    stop: threading.Event) -> None:
    buffers = wire.encode_frame(wire.MSG_HEARTBEAT, with_payload=False)
    while not stop.wait(HEARTBEAT_INTERVAL):
        try:
            with send_lock:
                wire.send_buffers(sock, buffers)
        except OSError:
            return


def _reply_error(sock: socket.socket, send_lock: threading.Lock, tag: int,
                 error_type: str, message: str, elapsed: float) -> None:
    reply = {"ok": False, "error_type": error_type,
             "message": message, "elapsed": elapsed}
    with send_lock:
        wire.send_frame(sock, wire.MSG_RESULT, tag, reply)


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 30.0,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
) -> int:
    """Serve tasks from ``host:port`` until told to stop.

    Returns the number of tasks completed (successes *and* captured
    errors both count — either way the worker did its job).  Exits on
    a ``SHUTDOWN`` frame, on EOF (server gone), after ``max_tasks``
    tasks, or after ``idle_timeout`` seconds of total coordinator
    silence (``0`` disables the idle exit).
    """
    worker_name = name or f"{socket.gethostname()}:pid{os.getpid()}"
    recv_timeout: Optional[float] = idle_timeout if idle_timeout > 0 else None
    # Workers may legitimately start before the coordinator binds its
    # port (fleet-first deployment), so refused connections retry until
    # ``connect_timeout`` elapses.
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop = threading.Event()
    with send_lock:
        wire.send_frame(sock, wire.MSG_HELLO, 0,
                        {"worker": worker_name, "pid": os.getpid()})
    threading.Thread(
        target=_heartbeat_loop, args=(sock, send_lock, stop),
        name="slimcodeml-heartbeat", daemon=True,
    ).start()

    fn = None
    context: object = None
    done = 0
    try:
        while True:
            try:
                msg = wire.recv_frame(sock, timeout=recv_timeout)
            except socket.timeout:
                _log(worker_name,
                     f"coordinator silent for {idle_timeout:g}s; exiting")
                break
            except (OSError, WireError):
                break
            if msg is None or msg.msg_type == wire.MSG_SHUTDOWN:
                break
            if msg.msg_type == wire.MSG_BATCH:
                # The broadcast's fn blob is the only pickle this
                # process executes — explicit, CRC-checked, and sent by
                # the coordinator this worker dialled out to.
                try:
                    batch = msg.payload(allow_pickle=True)
                except (WireError, Exception):  # noqa: BLE001
                    break  # poisoned broadcast: nothing sane to run
                fn = batch.get("fn")
                context = batch.get("context")
                continue
            if msg.msg_type != wire.MSG_TASK:
                continue  # pings and stale frames
            if fn is None:
                _reply_error(sock, send_lock, msg.tag, "ProtocolError",
                             "task before batch broadcast", 0.0)
                continue
            try:
                # Strict decode: a task frame carrying a pickle section
                # is refused here, not executed.
                payload = msg.payload(allow_pickle=False)
            except WireError as exc:
                _reply_error(sock, send_lock, msg.tag, "WireError",
                             str(exc), 0.0)
                continue
            started = time.perf_counter()
            try:
                if context is None:
                    result = fn(payload)
                else:
                    result = fn(payload, context)
            except Exception as exc:  # noqa: BLE001 - faults become messages
                try:
                    _reply_error(sock, send_lock, msg.tag,
                                 type(exc).__name__, str(exc),
                                 time.perf_counter() - started)
                except OSError:
                    break
            else:
                elapsed = time.perf_counter() - started
                try:
                    buffers = wire.encode_frame(
                        wire.MSG_RESULT, msg.tag,
                        {"ok": True, "result": result, "elapsed": elapsed},
                    )
                except Exception as exc:  # noqa: BLE001 - unencodable result
                    try:
                        _reply_error(sock, send_lock, msg.tag,
                                     "ResultEncodeError", str(exc), elapsed)
                    except OSError:
                        break
                else:
                    try:
                        with send_lock:
                            wire.send_buffers(sock, buffers)
                    except OSError:
                        break
            done += 1
            if max_tasks is not None and done >= max_tasks:
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return done
