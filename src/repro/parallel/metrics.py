"""Batch-scan observability: per-task metrics rolled into one summary.

The fault layer makes a genome scan *survive* bad tasks; this module
makes the survival *visible*.  A :class:`BatchSummary` aggregates what
each worker reported — runtime, optimizer iterations, likelihood
evaluations (:class:`~repro.core.flops.FlopCounter`-style accounting
travels inside each :class:`~repro.parallel.batch.GeneResult`) — plus
the fault layer's attempt/failure classification, and renders the
operator-facing report the ``slimcodeml scan`` subcommand prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch imports us)
    from repro.parallel.batch import GeneResult

__all__ = ["BatchSummary", "summarize_results"]


@dataclass
class BatchSummary:
    """Aggregated metrics for one batch of gene/branch tasks."""

    n_tasks: int = 0
    n_ok: int = 0
    n_failed: int = 0
    #: Failure kind (``error`` / ``timeout`` / ``pool``) → count.
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Tasks that needed more than one attempt (including eventual failures).
    n_retried: int = 0
    total_attempts: int = 0
    #: Sum of successful workers' wall clock (compute, not queue wait).
    total_runtime_seconds: float = 0.0
    total_iterations: int = 0
    total_evaluations: int = 0
    #: Caller-measured wall clock for the whole batch (0 = not measured).
    wall_seconds: float = 0.0
    #: ``gene_id`` of results loaded from a journal instead of recomputed.
    resumed_ids: List[str] = field(default_factory=list)
    #: Worker identity → tasks whose terminal attempt it ran (executor
    #: backends that attribute work: ``inline``, ``pid:<n>``, socket
    #: worker ids).  Resumed results carry no worker and are excluded.
    tasks_by_worker: Dict[str, int] = field(default_factory=dict)
    #: Worker identity → successful compute seconds it contributed.
    runtime_by_worker: Dict[str, float] = field(default_factory=dict)
    #: Tasks whose numerical self-healing layer fired (recovery enabled
    #: and at least one event/restart/boundary flag recorded).
    n_recovered: int = 0
    #: ``gene_id`` of those tasks, for per-gene drill-down.
    recovered_ids: List[str] = field(default_factory=list)
    #: Optimizer restarts summed across recovered tasks.
    total_restarts: int = 0
    #: Numerical event kind → occurrence count across all tasks.
    events_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Branch applications actually recomputed by incremental workers.
    total_clv_propagations: int = 0
    #: Branch applications served from incremental CLV state instead.
    total_clv_reuses: int = 0
    #: Worker-side one-time context materialisation (cold start), summed.
    total_setup_seconds: float = 0.0
    #: Tasks that paid a cold start (first touch of an alignment's
    #: broadcast entry in some worker process).
    n_cold_starts: int = 0
    #: Data-plane counters (an executor's ``wire_stats()``), attached by
    #: the caller after the batch: bytes/frames split into the one-shot
    #: broadcast versus per-task traffic.  Empty = backend has no wire.
    wire: Dict[str, float] = field(default_factory=dict)
    #: Ladder rung → operator builds it served, summed over tasks that
    #: ran with recovery (``GeneResult.rung_usage``).
    rungs_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Tasks that produced a substitution-mapping payload (``--map``).
    n_mapped: int = 0
    #: Tasks whose mapping sampler failed (payload carried an error).
    n_mapping_failed: int = 0
    #: Expected substitution events summed over mapped tasks' branches.
    total_mapped_syn: float = 0.0
    total_mapped_nonsyn: float = 0.0
    #: Sampler wall clock summed over mapped tasks (payload ``seconds``;
    #: 0.0 on pre-v8 payloads that did not record it).
    total_mapping_seconds: float = 0.0

    @property
    def n_resumed(self) -> int:
        return len(self.resumed_ids)

    def add(self, result: "GeneResult", resumed: bool = False) -> None:
        """Fold one task's outcome into the aggregate."""
        self.n_tasks += 1
        self.total_attempts += result.attempts
        if result.attempts > 1:
            self.n_retried += 1
        if resumed:
            self.resumed_ids.append(result.gene_id)
        worker = getattr(result, "worker", None)
        if worker is not None and not resumed:
            self.tasks_by_worker[worker] = self.tasks_by_worker.get(worker, 0) + 1
        diagnostics = getattr(result, "diagnostics", None)
        if diagnostics:
            self.n_recovered += 1
            self.recovered_ids.append(result.gene_id)
            self.total_restarts += int(diagnostics.get("restarts", 0))
            for event in diagnostics.get("events", []):
                kind = event.get("kind", "unknown")
                self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1
        rung_usage = getattr(result, "rung_usage", None)
        if rung_usage:
            for rung, count in rung_usage.items():
                self.rungs_by_kind[rung] = self.rungs_by_kind.get(rung, 0) + int(count)
        mapping = getattr(result, "mapping", None)
        if mapping:
            if "error" in mapping:
                self.n_mapping_failed += 1
            else:
                self.n_mapped += 1
                self.total_mapping_seconds += float(mapping.get("seconds") or 0.0)
                for row in mapping.get("branches", []):
                    self.total_mapped_syn += float(row.get("syn", 0.0))
                    self.total_mapped_nonsyn += float(row.get("nonsyn", 0.0))
        clv_stats = getattr(result, "clv_stats", None)
        if clv_stats:
            self.total_clv_propagations += int(clv_stats.get("propagations", 0))
            self.total_clv_reuses += int(clv_stats.get("reuses", 0))
        setup = float(getattr(result, "setup_seconds", 0.0) or 0.0)
        if setup > 0.0 and not resumed:
            self.total_setup_seconds += setup
            self.n_cold_starts += 1
        if result.failed:
            self.n_failed += 1
            kind = result.failure.kind if result.failure is not None else "error"
            self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1
        else:
            self.n_ok += 1
            self.total_runtime_seconds += result.runtime_seconds
            self.total_iterations += result.iterations
            self.total_evaluations += result.n_evaluations
            if worker is not None and not resumed:
                self.runtime_by_worker[worker] = (
                    self.runtime_by_worker.get(worker, 0.0) + result.runtime_seconds
                )

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"tasks      : {self.n_tasks} total, {self.n_ok} ok, {self.n_failed} failed"
            + (f", {self.n_resumed} resumed from journal" if self.n_resumed else ""),
        ]
        if self.failures_by_kind:
            kinds = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.failures_by_kind.items())
            )
            lines.append(f"failures   : {kinds}")
        lines.append(
            f"attempts   : {self.total_attempts} "
            f"({self.n_retried} task{'s' if self.n_retried != 1 else ''} retried)"
        )
        lines.append(
            f"compute    : {self.total_runtime_seconds:.1f} s across workers, "
            f"{self.total_iterations} optimizer iterations, "
            f"{self.total_evaluations} likelihood evaluations"
        )
        applications = self.total_clv_propagations + self.total_clv_reuses
        if applications:
            pct = 100.0 * self.total_clv_reuses / applications
            lines.append(
                f"clv reuse  : {self.total_clv_reuses} of {applications} "
                f"branch applications served from cache ({pct:.1f}%)"
            )
        if self.n_recovered:
            line = (
                f"numerics   : {self.n_recovered} "
                f"task{'s' if self.n_recovered != 1 else ''} recovered, "
                f"{self.total_restarts} optimizer restart"
                f"{'s' if self.total_restarts != 1 else ''}"
            )
            if self.events_by_kind:
                line += ", events: " + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.events_by_kind.items())
                )
            lines.append(line)
        if self.rungs_by_kind:
            lines.append(
                "rungs      : operator builds "
                + ", ".join(
                    f"{rung}={count}"
                    for rung, count in sorted(self.rungs_by_kind.items())
                )
            )
        if self.n_mapped or self.n_mapping_failed:
            line = (
                f"mapping    : {self.n_mapped} "
                f"task{'s' if self.n_mapped != 1 else ''} sampled, "
                f"E[syn]={self.total_mapped_syn:.2f}, "
                f"E[nonsyn]={self.total_mapped_nonsyn:.2f}"
            )
            if self.total_mapping_seconds > 0.0:
                line += f", {self.total_mapping_seconds:.2f} s sampling"
            if self.n_mapping_failed:
                line += f", {self.n_mapping_failed} sampler failure" + (
                    "s" if self.n_mapping_failed != 1 else ""
                )
            lines.append(line)
        if self.n_cold_starts:
            lines.append(
                f"cold start : {self.total_setup_seconds * 1000.0:.1f} ms "
                f"materialising broadcast context across "
                f"{self.n_cold_starts} first-touch task"
                f"{'s' if self.n_cold_starts != 1 else ''}"
            )
        if self.wire:
            dispatched = int(self.wire.get("tasks_dispatched", 0))
            if dispatched:
                per_task = self.wire.get("task_bytes_mean", 0.0)
                lines.append(
                    f"wire       : {per_task:,.0f} B/task over {dispatched} "
                    f"dispatches, one-shot broadcast "
                    f"{int(self.wire.get('broadcast_bytes', 0)):,} B "
                    f"({int(self.wire.get('broadcasts', 0))} deliveries), "
                    f"{int(self.wire.get('bytes_sent', 0)):,} B out / "
                    f"{int(self.wire.get('bytes_received', 0)):,} B in"
                )
        if self.tasks_by_worker:
            parts = ", ".join(
                f"{worker}={count} task{'s' if count != 1 else ''}"
                f"/{self.runtime_by_worker.get(worker, 0.0):.1f}s"
                for worker, count in sorted(self.tasks_by_worker.items())
            )
            lines.append(f"workers    : {parts}")
        if self.wall_seconds > 0:
            line = f"wall clock : {self.wall_seconds:.1f} s"
            if not self.resumed_ids:
                # Ratio is meaningless when some compute came from a journal.
                line += (
                    f" ({self.total_runtime_seconds / self.wall_seconds:.1f}x "
                    "parallel efficiency)"
                )
            lines.append(line)
        return "\n".join(lines)


def summarize_results(
    results: Iterable["GeneResult"],
    wall_seconds: float = 0.0,
    resumed_ids: Iterable[str] = (),
) -> BatchSummary:
    """Build a :class:`BatchSummary` from finished results."""
    resumed = set(resumed_ids)
    summary = BatchSummary(wall_seconds=wall_seconds)
    for result in results:
        summary.add(result, resumed=result.gene_id in resumed)
    return summary
