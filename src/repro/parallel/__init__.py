"""Parallel batch drivers — the first step toward "FastCodeML".

The paper's future work (§V-B) is a parallel and distributed CodeML.
Genome-scale positive-selection scans (Selectome) are embarrassingly
parallel across genes and across candidate foreground branches; this
subpackage provides process-pool drivers for both axes with
deterministic per-task seeding, plus the fault layer that keeps a
genome-scale batch alive when individual tasks crash, hang, or take a
worker process down with them (:mod:`repro.parallel.faults`) and the
metrics aggregation that makes each batch observable
(:mod:`repro.parallel.metrics`).
"""

from repro.parallel.batch import (
    BranchScanResult,
    GeneJob,
    GeneResult,
    analyze_genes,
    branch_label,
    scan_branches,
)
from repro.parallel.faults import FaultPolicy, TaskFailure, TaskOutcome, run_tasks
from repro.parallel.metrics import BatchSummary, summarize_results

__all__ = [
    "BranchScanResult",
    "GeneJob",
    "GeneResult",
    "analyze_genes",
    "branch_label",
    "scan_branches",
    "FaultPolicy",
    "TaskFailure",
    "TaskOutcome",
    "run_tasks",
    "BatchSummary",
    "summarize_results",
]
