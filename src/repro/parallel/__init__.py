"""Parallel batch drivers — the first step toward "FastCodeML".

The paper's future work (§V-B) is a parallel and distributed CodeML.
Genome-scale positive-selection scans (Selectome) are embarrassingly
parallel across genes and across candidate foreground branches; this
subpackage provides process-pool drivers for both axes with
deterministic per-task seeding.
"""

from repro.parallel.batch import BranchScanResult, GeneJob, analyze_genes, scan_branches

__all__ = ["BranchScanResult", "GeneJob", "analyze_genes", "scan_branches"]
