"""Parallel batch drivers — the first step toward "FastCodeML".

The paper's future work (§V-B) is a parallel and distributed CodeML.
Genome-scale positive-selection scans (Selectome) are embarrassingly
parallel across genes and across candidate foreground branches; this
subpackage provides batch drivers for both axes with deterministic
per-task seeding, layered as:

* :mod:`repro.parallel.executors` — pluggable execution substrates
  (serial inline, one machine's process pool, or a TCP worker fleet
  fed by ``slimcodeml worker`` processes) behind one event-oriented
  ``Executor`` protocol;
* :mod:`repro.parallel.faults` — the backend-agnostic fault-policy
  driver (retries, backoff, quarantine-based crash attribution) that
  keeps a genome-scale batch alive when individual tasks crash, hang,
  or take their worker down with them;
* :mod:`repro.parallel.metrics` — the aggregation that makes each
  batch observable, including per-worker attribution.
"""

from repro.parallel.batch import (
    BranchScanResult,
    GeneJob,
    GeneResult,
    analyze_genes,
    branch_label,
    scan_branches,
)
from repro.parallel.executors import (
    Executor,
    ExecutorEvent,
    InlineExecutor,
    ProcessPoolBackend,
    SocketExecutor,
    make_executor,
)
from repro.parallel.faults import FaultPolicy, TaskFailure, TaskOutcome, run_tasks
from repro.parallel.metrics import BatchSummary, summarize_results

__all__ = [
    "BranchScanResult",
    "GeneJob",
    "GeneResult",
    "analyze_genes",
    "branch_label",
    "scan_branches",
    "Executor",
    "ExecutorEvent",
    "InlineExecutor",
    "ProcessPoolBackend",
    "SocketExecutor",
    "make_executor",
    "FaultPolicy",
    "TaskFailure",
    "TaskOutcome",
    "run_tasks",
    "BatchSummary",
    "summarize_results",
]
