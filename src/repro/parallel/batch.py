"""Process-pool batch analysis across genes and branches.

Two scan axes, both used by Selectome-style genome analyses (§I-A):

* :func:`analyze_genes` — many (alignment, tree) pairs, one branch-site
  test each, fanned out over worker processes.
* :func:`scan_branches` — one gene, every candidate branch tested as
  foreground in turn ("done iteratively for each branch of a
  phylogenetic tree", §I-A).

Tasks ship as plain strings (Newick + raw sequences) so they pickle
cheaply; every task derives its own RNG stream from the master seed, so
results are independent of scheduling order and worker count.

Fault tolerance (gcodeml's lesson: at genome scale the binding
constraint is fault handling, not kernels):

* a failing task never raises out of the batch — it becomes a
  structured :class:`~repro.parallel.faults.TaskFailure` riding on its
  :class:`GeneResult`, and every other task's result is kept;
* retries/timeouts/worker-crash recovery are governed by a
  :class:`~repro.parallel.faults.FaultPolicy`;
* with ``journal=...`` completed results stream to a JSONL checkpoint
  (:class:`~repro.io.results_io.ResultJournal`) as they finish, and
  ``resume=True`` skips genes the journal already holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.alignment.msa import CodonAlignment
from repro.core.engine import make_engine
from repro.core.recovery import FitDiagnostics, RecoveryConfig, RecoveryPolicy
from repro.io.results_io import ResultJournal
from repro.optimize.lrt import LRTResult, likelihood_ratio_test
from repro.optimize.ml import fit_branch_site_test
from repro.parallel.executors.base import Executor
from repro.parallel.faults import FaultPolicy, TaskFailure, TaskOutcome, run_tasks
from repro.parallel.metrics import BatchSummary
from repro.trees.newick import parse_newick, write_newick
from repro.trees.tree import Tree

__all__ = [
    "GeneJob",
    "GeneResult",
    "BranchScanResult",
    "analyze_genes",
    "scan_branches",
    "branch_label",
]


@dataclass(frozen=True)
class GeneJob:
    """One gene to analyse: pickle-friendly payload for a worker."""

    gene_id: str
    newick: str
    names: Tuple[str, ...]
    sequences: Tuple[str, ...]

    @classmethod
    def from_objects(cls, gene_id: str, tree: Tree, alignment: CodonAlignment) -> "GeneJob":
        return cls(
            gene_id=gene_id,
            newick=write_newick(tree),
            names=tuple(alignment.names),
            sequences=tuple(alignment.to_sequences()),
        )


@dataclass
class GeneResult:
    """Worker output for one gene (or one branch of a branch scan).

    ``n_evaluations`` counts likelihood evaluations across H0+H1
    (finite-difference probes included) — the per-task work metric the
    batch summary aggregates.  ``attempts`` is how many times the fault
    layer ran the task; ``failure`` carries the structured record when
    the task ultimately failed (``error`` keeps the flat string form).
    """

    gene_id: str
    lnl0: float
    lnl1: float
    statistic: float
    pvalue: float
    iterations: int
    runtime_seconds: float
    error: Optional[str] = None
    n_evaluations: int = 0
    attempts: int = 1
    failure: Optional[TaskFailure] = None
    #: Backend identity of the worker that produced the terminal attempt
    #: (``pid:<n>`` for the process pool, the registered worker id for the
    #: socket backend, ``None`` when unattributable).
    worker: Optional[str] = None
    #: Combined H0+H1 numerical diagnostics as a JSON dict (see
    #: :meth:`repro.core.recovery.FitDiagnostics.to_dict`), with boundary
    #: flags prefixed ``h0:``/``h1:``.  ``None`` = clean fit or recovery
    #: disabled — nothing fired.
    diagnostics: Optional[Dict] = None
    #: Incremental-evaluation counters (``{"propagations": n, "reuses": m}``)
    #: when the worker ran with dirty-path CLV caching; ``None`` otherwise.
    clv_stats: Optional[Dict[str, int]] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def recovered(self) -> bool:
        """True when any numerical recovery machinery fired for this gene."""
        return self.diagnostics is not None

    @classmethod
    def from_failure(cls, failure: TaskFailure, worker: Optional[str] = None) -> "GeneResult":
        return cls(
            gene_id=failure.task_id,
            lnl0=float("nan"),
            lnl1=float("nan"),
            statistic=float("nan"),
            pvalue=float("nan"),
            iterations=0,
            runtime_seconds=0.0,
            error=f"{failure.error_type}: {failure.message}",
            attempts=failure.attempts,
            failure=failure,
            worker=worker,
        )


def _combine_diagnostics(h0: FitDiagnostics, h1: FitDiagnostics) -> Optional[Dict]:
    """Fold a test's per-hypothesis diagnostics into one JSON dict.

    Returns ``None`` when nothing fired in either fit, so the common
    clean case costs one key in neither pickled payloads nor journals.
    Boundary flags are prefixed with the hypothesis they came from.
    """
    if not (h0.recovered or h1.recovered or h0.boundary_flags or h1.boundary_flags):
        return None
    merged = FitDiagnostics(
        restarts=h0.restarts + h1.restarts,
        boundary_flags=[f"h0:{f}" for f in h0.boundary_flags]
        + [f"h1:{f}" for f in h1.boundary_flags],
        events=h0.events + h1.events,
    )
    return merged.to_dict()


def _run_gene(args: Tuple) -> GeneResult:
    """Worker entry point (module-level so it pickles).

    The payload is ``(job, engine_name, seed, max_iterations)`` with an
    optional fifth ``recover`` flag and an optional sixth ``incremental``
    flag (older 4-/5-tuples keep working — the journal-resume and
    custom-worker seams rely on that).

    Raises on failure: the fault layer (:mod:`repro.parallel.faults`)
    owns error capture, classification and retries.
    """
    job, engine_name, seed, max_iterations = args[:4]
    recover = bool(args[4]) if len(args) > 4 else False
    incremental = bool(args[5]) if len(args) > 5 else False
    tree = parse_newick(job.newick)
    alignment = CodonAlignment.from_sequences(list(job.names), list(job.sequences))
    engine = make_engine(
        engine_name, recovery=RecoveryConfig() if recover else None
    )
    test = fit_branch_site_test(
        lambda model: engine.bind(tree, alignment, model, incremental=incremental),
        seed=seed,
        max_iterations=max_iterations,
        recovery=RecoveryPolicy() if recover else None,
    )
    clv_stats = None
    if incremental:
        stats = engine.cache_stats()
        clv_stats = {
            "propagations": int(stats["clv_propagations"]),
            "reuses": int(stats["clv_reuses"]),
        }
    return GeneResult(
        gene_id=job.gene_id,
        lnl0=test.h0.lnl,
        lnl1=test.h1.lnl,
        statistic=test.lrt.statistic,
        pvalue=test.lrt.pvalue_chi2,
        iterations=test.combined_iterations,
        runtime_seconds=test.combined_runtime,
        n_evaluations=test.combined_evaluations,
        diagnostics=_combine_diagnostics(test.h0.diagnostics, test.h1.diagnostics),
        clv_stats=clv_stats,
    )


def analyze_genes(
    jobs: Sequence[GeneJob],
    engine: str = "slim",
    processes: Optional[int] = None,
    seed: int = 1,
    max_iterations: int = 50,
    policy: Optional[FaultPolicy] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    worker: Optional[Callable[[Tuple], GeneResult]] = None,
    on_result: Optional[Callable[[int, GeneResult], None]] = None,
    executor: Optional[Executor] = None,
    recover: bool = False,
    incremental: bool = False,
) -> List[GeneResult]:
    """Run the branch-site test for every gene over an executor.

    Each gene ``k`` uses seed ``seed + k`` so the batch is reproducible
    regardless of executor backend, worker scheduling and worker count —
    and so a resumed run recomputes a gene with exactly the seed the
    interrupted run would have used.  With ``processes = 1`` (or a
    single job and no timeout) everything runs in-process, which is
    also what the tests use to stay hermetic.

    Parameters
    ----------
    policy:
        Retry/timeout/crash-recovery policy; default is fail-soft with
        no retries (every task runs once, failures are captured).
    journal:
        Path to a JSONL checkpoint; each finished result is appended
        durably as soon as it completes.
    resume:
        With ``journal``, load previously *successful* results instead
        of recomputing them; failed or missing genes run again.
    worker:
        Alternative worker callable (module-level, pickleable) with the
        same payload signature as the default — the fault-injection
        seam used by the test suite.
    on_result:
        ``(job_index, result)`` hook fired in completion order — drives
        CLI progress reporting.
    executor:
        Execution substrate (see :mod:`repro.parallel.executors`); when
        given it overrides ``processes``.  A caller-provided executor is
        *not* shut down, so e.g. one connected
        :class:`~repro.parallel.executors.sockets.SocketExecutor` fleet
        can serve a scan and then its journal resume.
    recover:
        Enable the numerical self-healing layer in each worker: engines
        run with guarded decomposition/operators
        (:class:`~repro.core.recovery.RecoveryConfig`) and fits restart
        per :class:`~repro.core.recovery.RecoveryPolicy`; whatever fired
        rides back on ``GeneResult.diagnostics``.  Off by default —
        results are then bit-identical to the unguarded code.
    incremental:
        Enable dirty-path CLV caching in each worker
        (:meth:`LikelihoodEngine.bind` with ``incremental=True``): BFGS
        gradient probes re-prune only the probed branch's root path and
        model-A classes share background subtrees.  Bit-identical to the
        full re-pruning path; the reuse counters ride back on
        ``GeneResult.clv_stats``.

    Returns
    -------
    list of :class:`GeneResult` in job order; a failed task yields a
    result with ``failed=True`` and a structured ``failure`` record
    rather than raising.
    """
    policy = policy if policy is not None else FaultPolicy()
    run = worker if worker is not None else _run_gene

    results: List[Optional[GeneResult]] = [None] * len(jobs)
    payloads: List[Tuple] = []
    payload_jobs: List[int] = []  # payload position -> job index

    done: Dict[str, GeneResult] = {}
    if journal is not None and resume:
        done = ResultJournal(journal).completed()
    for k, job in enumerate(jobs):
        if job.gene_id in done:
            results[k] = done[job.gene_id]
        else:
            base: Tuple = (job, engine, seed + k, max_iterations)
            # Keep the historical 4-tuple when neither flag is set so
            # custom workers written against it never see a surprise
            # element; ``incremental`` rides sixth, after ``recover``.
            if recover or incremental:
                base = base + (recover,)
            if incremental:
                base = base + (True,)
            payloads.append(base)
            payload_jobs.append(k)

    sink = ResultJournal(journal) if journal is not None else None
    try:
        def handle(outcome: TaskOutcome) -> None:
            k = payload_jobs[outcome.index]
            if outcome.ok:
                result = outcome.result
                result.attempts = outcome.attempts
                result.worker = outcome.worker
            else:
                result = GeneResult.from_failure(outcome.failure, worker=outcome.worker)
            results[k] = result
            if sink is not None:
                sink.append(result)
            if on_result is not None:
                on_result(k, result)

        in_process = executor is None and (
            processes == 1 or (len(payloads) <= 1 and policy.task_timeout is None)
        )
        run_tasks(
            run,
            payloads,
            task_ids=[jobs[k].gene_id for k in payload_jobs],
            policy=policy,
            max_workers=processes,
            on_outcome=handle,
            in_process=in_process,
            executor=executor,
        )
    finally:
        if sink is not None:
            sink.close()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


@dataclass
class BranchScanResult:
    """Per-branch outcomes for one gene — successes *and* failures.

    A poisoned branch no longer discards the rest of the scan:
    ``by_branch`` holds the LRT for every branch whose task succeeded,
    ``failures`` the structured record for every branch that did not.
    """

    gene_id: str
    #: Branch label → LRT result; labels are child-node names or
    #: ``node#<index>`` for unnamed internals.
    by_branch: Dict[str, LRTResult]
    #: Branch label → structured failure for tasks that did not finish.
    failures: Dict[str, TaskFailure] = field(default_factory=dict)
    #: Raw per-branch worker results in candidate order (metrics source).
    gene_results: List[GeneResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every candidate branch produced an LRT."""
        return not self.failures

    @property
    def n_candidates(self) -> int:
        return len(self.by_branch) + len(self.failures)

    def significant_branches(self, alpha: float = 0.05) -> List[str]:
        """Branch labels significant at ``alpha`` — before any multiple-
        testing correction (Anisimova & Yang 2007 discuss corrections)."""
        return [
            label
            for label, lrt in self.by_branch.items()
            if lrt.significant(alpha)
        ]

    def raise_on_failure(self) -> "BranchScanResult":
        """Opt back into the old fail-fast contract (first failure raises)."""
        if self.failures:
            label, failure = next(iter(self.failures.items()))
            raise RuntimeError(
                f"branch scan task {self.gene_id}:{label} failed: {failure.describe()}"
            )
        return self

    def summary(
        self, wall_seconds: float = 0.0, resumed_ids: Sequence[str] = ()
    ) -> BatchSummary:
        """Aggregate scan metrics (see :mod:`repro.parallel.metrics`)."""
        from repro.parallel.metrics import summarize_results

        return summarize_results(
            self.gene_results, wall_seconds=wall_seconds, resumed_ids=resumed_ids
        )


def branch_label(tree: Tree, node_index: int) -> str:
    node = tree.nodes[node_index]
    return node.name if node.name else f"node#{node.index}"


def scan_branches(
    gene_id: str,
    tree: Tree,
    alignment: CodonAlignment,
    engine: str = "slim",
    internal_only: bool = False,
    seed: int = 1,
    max_iterations: int = 50,
    processes: Optional[int] = 1,
    policy: Optional[FaultPolicy] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    worker: Optional[Callable] = None,
    on_result: Optional[Callable[[int, GeneResult], None]] = None,
    executor: Optional[Executor] = None,
    recover: bool = False,
    incremental: bool = False,
) -> BranchScanResult:
    """Test every candidate branch of one gene as foreground in turn.

    Per-branch task ids are ``"<gene_id>:<branch_label>"``, so a journal
    written by one scan resumes cleanly at branch granularity.  Failures
    are captured per branch (see :class:`BranchScanResult`); callers
    wanting the old fail-fast behaviour chain ``.raise_on_failure()``.
    """
    candidates = [
        n for n in tree.nodes if not n.is_root and (not internal_only or not n.is_leaf)
    ]
    jobs = []
    for node in candidates:
        marked = tree.copy()
        marked.mark_foreground(marked.nodes[node.index])
        jobs.append(
            GeneJob.from_objects(f"{gene_id}:{branch_label(tree, node.index)}", marked, alignment)
        )
    results = analyze_genes(
        jobs,
        engine=engine,
        processes=processes,
        seed=seed,
        max_iterations=max_iterations,
        policy=policy,
        journal=journal,
        resume=resume,
        worker=worker,
        on_result=on_result,
        executor=executor,
        recover=recover,
        incremental=incremental,
    )
    by_branch: Dict[str, LRTResult] = {}
    failures: Dict[str, TaskFailure] = {}
    for node, res in zip(candidates, results):
        label = branch_label(tree, node.index)
        if res.failed:
            failures[label] = res.failure if res.failure is not None else TaskFailure(
                task_id=res.gene_id,
                kind="error",
                error_type="Error",
                message=res.error or "unknown failure",
                attempts=res.attempts,
            )
        else:
            by_branch[label] = likelihood_ratio_test(res.lnl0, res.lnl1)
    return BranchScanResult(
        gene_id=gene_id, by_branch=by_branch, failures=failures, gene_results=list(results)
    )
