"""Process-pool batch analysis across genes and branches.

Two scan axes, both used by Selectome-style genome analyses (§I-A):

* :func:`analyze_genes` — many (alignment, tree) pairs, one branch-site
  test each, fanned out over worker processes.
* :func:`scan_branches` — one gene, every candidate branch tested as
  foreground in turn ("done iteratively for each branch of a
  phylogenetic tree", §I-A).

Tasks ship as plain strings (Newick + raw sequences) so they pickle
cheaply; every task derives its own RNG stream from the master seed, so
results are independent of scheduling order and worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alignment.msa import CodonAlignment
from repro.core.engine import make_engine
from repro.optimize.lrt import LRTResult
from repro.optimize.ml import fit_branch_site_test
from repro.trees.newick import parse_newick, write_newick
from repro.trees.tree import Tree

__all__ = ["GeneJob", "GeneResult", "BranchScanResult", "analyze_genes", "scan_branches"]


@dataclass(frozen=True)
class GeneJob:
    """One gene to analyse: pickle-friendly payload for a worker."""

    gene_id: str
    newick: str
    names: Tuple[str, ...]
    sequences: Tuple[str, ...]

    @classmethod
    def from_objects(cls, gene_id: str, tree: Tree, alignment: CodonAlignment) -> "GeneJob":
        return cls(
            gene_id=gene_id,
            newick=write_newick(tree),
            names=tuple(alignment.names),
            sequences=tuple(alignment.to_sequences()),
        )


@dataclass
class GeneResult:
    """Worker output for one gene."""

    gene_id: str
    lnl0: float
    lnl1: float
    statistic: float
    pvalue: float
    iterations: int
    runtime_seconds: float
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def _run_gene(args: Tuple[GeneJob, str, int, int]) -> GeneResult:
    """Worker entry point (module-level so it pickles)."""
    job, engine_name, seed, max_iterations = args
    try:
        tree = parse_newick(job.newick)
        alignment = CodonAlignment.from_sequences(list(job.names), list(job.sequences))
        engine = make_engine(engine_name)
        test = fit_branch_site_test(
            lambda model: engine.bind(tree, alignment, model),
            seed=seed,
            max_iterations=max_iterations,
        )
        return GeneResult(
            gene_id=job.gene_id,
            lnl0=test.h0.lnl,
            lnl1=test.h1.lnl,
            statistic=test.lrt.statistic,
            pvalue=test.lrt.pvalue_chi2,
            iterations=test.combined_iterations,
            runtime_seconds=test.combined_runtime,
        )
    except Exception as exc:  # noqa: BLE001 - worker faults become data
        return GeneResult(
            gene_id=job.gene_id,
            lnl0=float("nan"),
            lnl1=float("nan"),
            statistic=float("nan"),
            pvalue=float("nan"),
            iterations=0,
            runtime_seconds=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )


def analyze_genes(
    jobs: Sequence[GeneJob],
    engine: str = "slim",
    processes: Optional[int] = None,
    seed: int = 1,
    max_iterations: int = 50,
) -> List[GeneResult]:
    """Run the branch-site test for every gene over a process pool.

    Each gene ``k`` uses seed ``seed + k`` so the batch is reproducible
    regardless of worker scheduling.  With ``processes = 1`` (or a
    single job) everything runs in-process, which is also what the tests
    use to stay hermetic.
    """
    payloads = [
        (job, engine, seed + k, max_iterations) for k, job in enumerate(jobs)
    ]
    if processes == 1 or len(payloads) <= 1:
        return [_run_gene(p) for p in payloads]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_run_gene, payloads))


@dataclass
class BranchScanResult:
    """Per-branch LRT outcomes for one gene."""

    gene_id: str
    #: Branch label → LRT result; labels are child-node names or
    #: ``node#<index>`` for unnamed internals.
    by_branch: Dict[str, LRTResult]

    def significant_branches(self, alpha: float = 0.05) -> List[str]:
        """Branch labels significant at ``alpha`` — before any multiple-
        testing correction (Anisimova & Yang 2007 discuss corrections)."""
        return [
            label
            for label, lrt in self.by_branch.items()
            if lrt.significant(alpha)
        ]


def branch_label(tree: Tree, node_index: int) -> str:
    node = tree.nodes[node_index]
    return node.name if node.name else f"node#{node.index}"


def scan_branches(
    gene_id: str,
    tree: Tree,
    alignment: CodonAlignment,
    engine: str = "slim",
    internal_only: bool = False,
    seed: int = 1,
    max_iterations: int = 50,
    processes: Optional[int] = 1,
) -> BranchScanResult:
    """Test every candidate branch of one gene as foreground in turn."""
    candidates = [
        n for n in tree.nodes if not n.is_root and (not internal_only or not n.is_leaf)
    ]
    jobs = []
    for node in candidates:
        marked = tree.copy()
        marked.mark_foreground(marked.nodes[node.index])
        jobs.append(
            GeneJob.from_objects(f"{gene_id}:{branch_label(tree, node.index)}", marked, alignment)
        )
    results = analyze_genes(
        jobs, engine=engine, processes=processes, seed=seed, max_iterations=max_iterations
    )
    by_branch: Dict[str, LRTResult] = {}
    from repro.optimize.lrt import likelihood_ratio_test

    for node, res in zip(candidates, results):
        if res.failed:
            raise RuntimeError(f"branch scan task {res.gene_id} failed: {res.error}")
        by_branch[branch_label(tree, node.index)] = likelihood_ratio_test(res.lnl0, res.lnl1)
    return BranchScanResult(gene_id=gene_id, by_branch=by_branch)
