"""Process-pool batch analysis across genes and branches.

Two scan axes, both used by Selectome-style genome analyses (§I-A):

* :func:`analyze_genes` — many (alignment, tree) pairs, one branch-site
  test each, fanned out over worker processes.
* :func:`scan_branches` — one gene, every candidate branch tested as
  foreground in turn ("done iteratively for each branch of a
  phylogenetic tree", §I-A).

Shared batch state rides the executors' broadcast channel: the
coordinator deduplicates alignments and trees across jobs, compresses
site patterns and estimates codon frequencies **once**, and ships the
result to every worker one time per batch (socket broadcast frame /
pool shared-memory segment).  Per-task payloads are then just
``(gene_id, newick_idx, fg_node, aln_idx, seed)`` — integer indices
into the broadcast state — so a branch scan over hundreds of
candidates moves its alignment across the wire once, not per branch.
Every task derives its own RNG stream from the master seed, so results
are independent of scheduling order and worker count.

Fault tolerance (gcodeml's lesson: at genome scale the binding
constraint is fault handling, not kernels):

* a failing task never raises out of the batch — it becomes a
  structured :class:`~repro.parallel.faults.TaskFailure` riding on its
  :class:`GeneResult`, and every other task's result is kept;
* retries/timeouts/worker-crash recovery are governed by a
  :class:`~repro.parallel.faults.FaultPolicy`;
* with ``journal=...`` completed results stream to a JSONL checkpoint
  (:class:`~repro.io.results_io.ResultJournal`) as they finish, and
  ``resume=True`` skips genes the journal already holds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import PatternAlignment, compress_patterns
from repro.codon.frequencies import estimate_codon_frequencies
from repro.core.engine import make_engine
from repro.core.recovery import FitDiagnostics, RecoveryConfig, RecoveryPolicy
from repro.io.results_io import ResultJournal
from repro.models.registry import resolve_model_spec
from repro.optimize.lrt import LRTResult, holm_correction, likelihood_ratio_test
from repro.optimize.ml import fit_branch_site_test
from repro.parallel.executors.base import Executor
from repro.parallel.executors.wire import register_struct
from repro.parallel.faults import FaultPolicy, TaskFailure, TaskOutcome, run_tasks
from repro.parallel.metrics import BatchSummary
from repro.trees.newick import parse_newick, write_newick
from repro.trees.tree import Tree

__all__ = [
    "GeneJob",
    "GeneResult",
    "BranchScanResult",
    "analyze_genes",
    "scan_branches",
    "map_survey_candidates",
    "branch_label",
]


@register_struct
@dataclass(frozen=True)
class GeneJob:
    """One gene to analyse: wire-friendly payload for a worker.

    ``fg_node`` optionally names the node (by index in the parsed
    ``newick``) whose parent branch the *worker* marks as foreground
    before fitting — the seam that lets a branch scan ship one base
    tree plus a per-task integer instead of one pre-marked Newick per
    candidate branch.  ``None`` keeps the legacy contract: the Newick
    already carries its marks.
    """

    gene_id: str
    newick: str
    names: Tuple[str, ...]
    sequences: Tuple[str, ...]
    fg_node: Optional[int] = None

    @classmethod
    def from_objects(
        cls,
        gene_id: str,
        tree: Tree,
        alignment: CodonAlignment,
        fg_node: Optional[int] = None,
    ) -> "GeneJob":
        return cls(
            gene_id=gene_id,
            newick=write_newick(tree),
            names=tuple(alignment.names),
            sequences=tuple(alignment.to_sequences()),
            fg_node=fg_node,
        )


@register_struct
@dataclass
class GeneResult:
    """Worker output for one gene (or one branch of a branch scan).

    ``n_evaluations`` counts likelihood evaluations across H0+H1
    (finite-difference probes included) — the per-task work metric the
    batch summary aggregates.  ``attempts`` is how many times the fault
    layer ran the task; ``failure`` carries the structured record when
    the task ultimately failed (``error`` keeps the flat string form).
    """

    gene_id: str
    lnl0: float
    lnl1: float
    statistic: float
    pvalue: float
    iterations: int
    runtime_seconds: float
    error: Optional[str] = None
    n_evaluations: int = 0
    attempts: int = 1
    failure: Optional[TaskFailure] = None
    #: Backend identity of the worker that produced the terminal attempt
    #: (``pid:<n>`` for the process pool, the registered worker id for the
    #: socket backend, ``None`` when unattributable).
    worker: Optional[str] = None
    #: Combined H0+H1 numerical diagnostics as a JSON dict (see
    #: :meth:`repro.core.recovery.FitDiagnostics.to_dict`), with boundary
    #: flags prefixed ``h0:``/``h1:``.  ``None`` = clean fit or recovery
    #: disabled — nothing fired.
    diagnostics: Optional[Dict] = None
    #: Incremental-evaluation counters (``{"propagations": n, "reuses": m}``)
    #: when the worker ran with dirty-path CLV caching; ``None`` otherwise.
    clv_stats: Optional[Dict[str, int]] = None
    #: Worker-side one-time setup charged to this task: seconds spent
    #: materialising the broadcast context (alignment patterns, codon
    #: frequencies) on a cache miss.  ``0.0`` on cache hits and on the
    #: legacy per-task payload path — the batch summary aggregates this
    #: as the fleet's cold-start cost.
    setup_seconds: float = 0.0
    #: Model-spec string the worker fitted (see
    #: :func:`repro.models.registry.resolve_model_spec`); ``None`` on
    #: results from journals written before the field existed — readers
    #: treat that as the model-A default.
    model: Optional[str] = None
    #: Per-rung operator-build counts from the worker engine's recovery
    #: ladder (``{"evr": n, "pade": m, "uniformization": k}``, see
    #: ``LikelihoodEngine.rung_usage``).  ``None`` when recovery was off
    #: or on pre-v7 journal records.
    rung_usage: Optional[Dict[str, int]] = None
    #: Stochastic substitution-mapping payload
    #: (:meth:`repro.likelihood.mapping.SubstitutionMapping.to_payload`),
    #: ``{"error": ...}`` when sampling failed without sinking the task,
    #: ``None`` when mapping was not requested.
    mapping: Optional[Dict] = None
    #: H1 maximum-likelihood point (``{"values": {...}, "branch_lengths":
    #: [...]}``) kept when the coordinator asked for it (``keep_mles``)
    #: — the survey's one-pass mapper re-binds each significant
    #: candidate at *its own* MLEs after Holm selection, without
    #: re-fitting.  ``None`` otherwise (the default: journals stay
    #: lean).
    h1_mles: Optional[Dict] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def recovered(self) -> bool:
        """True when any numerical recovery machinery fired for this gene."""
        return self.diagnostics is not None

    @classmethod
    def from_failure(cls, failure: TaskFailure, worker: Optional[str] = None) -> "GeneResult":
        return cls(
            gene_id=failure.task_id,
            lnl0=float("nan"),
            lnl1=float("nan"),
            statistic=float("nan"),
            pvalue=float("nan"),
            iterations=0,
            runtime_seconds=0.0,
            error=f"{failure.error_type}: {failure.message}",
            attempts=failure.attempts,
            failure=failure,
            worker=worker,
        )


def _combine_diagnostics(h0: FitDiagnostics, h1: FitDiagnostics) -> Optional[Dict]:
    """Fold a test's per-hypothesis diagnostics into one JSON dict.

    Returns ``None`` when nothing fired in either fit, so the common
    clean case costs one key in neither pickled payloads nor journals.
    Boundary flags are prefixed with the hypothesis they came from.
    """
    if not (h0.recovered or h1.recovered or h0.boundary_flags or h1.boundary_flags):
        return None
    merged = FitDiagnostics(
        restarts=h0.restarts + h1.restarts,
        boundary_flags=[f"h0:{f}" for f in h0.boundary_flags]
        + [f"h1:{f}" for f in h1.boundary_flags],
        events=h0.events + h1.events,
    )
    return merged.to_dict()


def _run_gene(args: Tuple) -> GeneResult:
    """Worker entry point (module-level so it pickles).

    The payload is ``(job, engine_name, seed, max_iterations)`` with an
    optional fifth ``recover`` flag, an optional sixth ``incremental``
    flag, an optional seventh ``batched`` override, an optional eighth
    ``model`` spec string and an optional ninth ``map_samples`` count
    (older 4-…-8-tuples keep working — the journal-resume and
    custom-worker seams rely on that).

    Raises on failure: the fault layer (:mod:`repro.parallel.faults`)
    owns error capture, classification and retries.
    """
    job, engine_name, seed, max_iterations = args[:4]
    recover = bool(args[4]) if len(args) > 4 else False
    incremental = bool(args[5]) if len(args) > 5 else False
    batched = args[6] if len(args) > 6 else None
    model_spec = args[7] if len(args) > 7 else None
    map_samples = args[8] if len(args) > 8 else None
    spec = resolve_model_spec(model_spec)
    tree = parse_newick(job.newick)
    if getattr(job, "fg_node", None) is not None:
        tree.mark_foreground(tree.nodes[job.fg_node])
    alignment = CodonAlignment.from_sequences(list(job.names), list(job.sequences))
    engine = make_engine(
        engine_name, recovery=RecoveryConfig() if recover else None
    )
    bind = lambda model: engine.bind(tree, alignment, model,
                                     incremental=incremental, batched=batched)
    test = fit_branch_site_test(
        bind,
        seed=seed,
        max_iterations=max_iterations,
        recovery=RecoveryPolicy() if recover else None,
        models=spec.pair(),
    )
    mapping = _run_mapping(bind, spec, test, map_samples, seed)
    return _assemble_result(job.gene_id, test, engine, incremental,
                            model=spec.spec, recover=recover, mapping=mapping)


def _run_mapping(bind, spec, test, map_samples: Optional[int], seed,
                 method: str = "batched") -> Optional[Dict]:
    """Sample substitution histories at the H1 MLEs (``--map``).

    A sampling failure must not sink an otherwise finished test (the
    fit already succeeded), so it degrades to an ``{"error": ...}``
    payload the report surfaces per task.
    """
    if not map_samples:
        return None
    try:
        from repro.likelihood.mapping import sample_substitution_mapping

        bound = bind(spec.pair()[1])
        return sample_substitution_mapping(
            bound,
            test.h1.values,
            branch_lengths=test.h1.branch_lengths,
            n_samples=int(map_samples),
            seed=int(seed) if np.isscalar(seed) else 0,
            method=method,
        ).to_payload()
    except Exception as exc:  # noqa: BLE001 — mapping is strictly additive
        return {"error": f"{type(exc).__name__}: {exc}"}


def _assemble_result(gene_id: str, test, engine, incremental: bool,
                     setup_seconds: float = 0.0,
                     model: Optional[str] = None,
                     recover: bool = False,
                     mapping: Optional[Dict] = None,
                     keep_mles: bool = False) -> GeneResult:
    clv_stats = None
    if incremental:
        stats = engine.cache_stats()
        clv_stats = {
            "propagations": int(stats["clv_propagations"]),
            "reuses": int(stats["clv_reuses"]),
        }
    rung_usage = None
    if recover and engine.rung_usage:
        rung_usage = {k: int(v) for k, v in engine.rung_usage.items()}
    h1_mles = None
    if keep_mles:
        h1_mles = {
            "values": {k: float(v) for k, v in test.h1.values.items()},
            "branch_lengths": [float(x) for x in test.h1.branch_lengths],
        }
    return GeneResult(
        gene_id=gene_id,
        lnl0=test.h0.lnl,
        lnl1=test.h1.lnl,
        statistic=test.lrt.statistic,
        pvalue=test.lrt.pvalue_chi2,
        iterations=test.combined_iterations,
        runtime_seconds=test.combined_runtime,
        n_evaluations=test.combined_evaluations,
        diagnostics=_combine_diagnostics(test.h0.diagnostics, test.h1.diagnostics),
        clv_stats=clv_stats,
        setup_seconds=setup_seconds,
        model=model,
        rung_usage=rung_usage,
        mapping=mapping,
        h1_mles=h1_mles,
    )


def _build_shared_context(
    pending: Sequence["GeneJob"],
    engine: str,
    recover: bool,
    incremental: bool,
    max_iterations: int,
    batched: Optional[bool] = None,
    model: Optional[str] = None,
    map_samples: Optional[int] = None,
    map_serial: bool = False,
    keep_mles: bool = False,
) -> Tuple[Dict, List[Tuple[int, int]]]:
    """Deduplicate batch state and precompute per-alignment derivations.

    Returns the broadcast context plus, per pending job, its
    ``(newick_idx, aln_idx)`` indices.  Alignments are keyed on their
    raw ``(names, sequences)`` so identical genes (every branch of one
    scan) share one pattern compression, one frequency estimate, and
    one set of wire buffers.  The precomputation replicates
    ``LikelihoodEngine.bind``'s default path exactly — same
    ``from_sequences`` encode, same F3x4 estimate from the re-emitted
    sequences, same ``compress_patterns`` — so a worker binding the
    shipped :class:`PatternAlignment` with the shipped ``pi`` is
    bit-identical to the legacy per-task rebuild.
    """
    newicks: List[str] = []
    newick_at: Dict[str, int] = {}
    alignments: List[Dict] = []
    aln_at: Dict[Tuple, int] = {}
    keys: List[Tuple[int, int]] = []
    for job in pending:
        ni = newick_at.get(job.newick)
        if ni is None:
            ni = newick_at[job.newick] = len(newicks)
            newicks.append(job.newick)
        akey = (job.names, job.sequences)
        ai = aln_at.get(akey)
        if ai is None:
            ai = aln_at[akey] = len(alignments)
            aln = CodonAlignment.from_sequences(list(job.names), list(job.sequences))
            pi = estimate_codon_frequencies(
                aln.to_sequences(), method="f3x4", code=aln.code
            )
            pat = compress_patterns(aln)
            alignments.append({
                "names": list(pat.alignment.names),
                "states": pat.alignment.states,
                "ambiguity": [
                    [int(row), int(col), list(map(int, states))]
                    for (row, col), states in pat.alignment.ambiguity_sets.items()
                ],
                "weights": pat.weights,
                "site_to_pattern": pat.site_to_pattern.astype(np.int64),
                "pi": np.asarray(pi, dtype=np.float64),
            })
        keys.append((ni, ai))
    context = {
        "engine": engine,
        "recover": recover,
        "incremental": incremental,
        "batched": batched,
        "max_iterations": max_iterations,
        "model": model,
        "map_samples": map_samples,
        "map_serial": map_serial,
        "keep_mles": keep_mles,
        "newicks": newicks,
        "alignments": alignments,
    }
    return context, keys


def _materialize_patterns(entry: Dict) -> Tuple[PatternAlignment, np.ndarray]:
    """Rebuild a :class:`PatternAlignment` from its broadcast fields.

    Array fields stay the zero-copy (read-only) views the wire decoder
    produced — nothing in the likelihood path writes to alignment
    state, so the shared pages are mapped, never copied.
    """
    alignment = CodonAlignment(
        names=list(entry["names"]),
        states=entry["states"],
        ambiguity_sets={
            (row, col): tuple(states) for row, col, states in entry["ambiguity"]
        },
    )
    patterns = PatternAlignment(
        alignment=alignment,
        weights=entry["weights"],
        site_to_pattern=entry["site_to_pattern"],
    )
    return patterns, np.asarray(entry["pi"], dtype=float)


def _run_gene_shared(payload: Tuple, context: Dict) -> GeneResult:
    """Worker entry point for index payloads over a broadcast context.

    ``payload`` is ``(gene_id, newick_idx, fg_node, aln_idx, seed)``;
    everything batch-constant — engine choice, recovery/incremental
    flags, iteration budget, trees, compressed alignments, codon
    frequencies — comes from the one-shot ``context``.  Materialised
    patterns are cached in the context per worker process, so only the
    first task touching an alignment pays the (already cheap) rebuild;
    that cost is reported as ``setup_seconds``.
    """
    gene_id, newick_idx, fg_node, aln_idx, seed = payload
    cache = context.setdefault("_cache", {})
    setup = 0.0
    cached = cache.get(aln_idx)
    if cached is None:
        t0 = time.perf_counter()
        cached = _materialize_patterns(context["alignments"][aln_idx])
        cache[aln_idx] = cached
        setup = time.perf_counter() - t0
    patterns, pi = cached
    tree = parse_newick(context["newicks"][newick_idx])
    if fg_node is not None:
        tree.mark_foreground(tree.nodes[fg_node])
    recover = bool(context["recover"])
    incremental = bool(context["incremental"])
    batched = context.get("batched")  # absent in pre-batched contexts
    spec = resolve_model_spec(context.get("model"))  # absent in pre-spec contexts
    map_samples = context.get("map_samples")  # absent in pre-mapping contexts
    map_serial = bool(context.get("map_serial"))  # absent in pre-v8 contexts
    keep_mles = bool(context.get("keep_mles"))  # absent in pre-v8 contexts
    engine = make_engine(
        context["engine"], recovery=RecoveryConfig() if recover else None
    )
    bind = lambda model: engine.bind(tree, patterns, model, pi=pi,
                                     incremental=incremental, batched=batched)
    test = fit_branch_site_test(
        bind,
        seed=seed,
        max_iterations=int(context["max_iterations"]),
        recovery=RecoveryPolicy() if recover else None,
        models=spec.pair(),
    )
    mapping = _run_mapping(bind, spec, test, map_samples, seed,
                           method="serial" if map_serial else "batched")
    return _assemble_result(gene_id, test, engine, incremental,
                            setup_seconds=setup, model=spec.spec,
                            recover=recover, mapping=mapping,
                            keep_mles=keep_mles)


def analyze_genes(
    jobs: Sequence[GeneJob],
    engine: str = "slim",
    processes: Optional[int] = None,
    seed: int = 1,
    max_iterations: int = 50,
    policy: Optional[FaultPolicy] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    worker: Optional[Callable[[Tuple], GeneResult]] = None,
    on_result: Optional[Callable[[int, GeneResult], None]] = None,
    executor: Optional[Executor] = None,
    recover: bool = False,
    incremental: bool = False,
    batched: Optional[bool] = None,
    model: Optional[str] = None,
    map_samples: Optional[int] = None,
    map_serial: bool = False,
    keep_mles: bool = False,
) -> List[GeneResult]:
    """Run the branch-site test for every gene over an executor.

    Each gene ``k`` uses seed ``seed + k`` so the batch is reproducible
    regardless of executor backend, worker scheduling and worker count —
    and so a resumed run recomputes a gene with exactly the seed the
    interrupted run would have used.  With ``processes = 1`` (or a
    single job and no timeout) everything runs in-process, which is
    also what the tests use to stay hermetic.

    Parameters
    ----------
    policy:
        Retry/timeout/crash-recovery policy; default is fail-soft with
        no retries (every task runs once, failures are captured).
    journal:
        Path to a JSONL checkpoint; each finished result is appended
        durably as soon as it completes.
    resume:
        With ``journal``, load previously *successful* results instead
        of recomputing them; failed or missing genes run again.
    worker:
        Alternative worker callable (module-level, pickleable) with the
        same payload signature as the default — the fault-injection
        seam used by the test suite.
    on_result:
        ``(job_index, result)`` hook fired in completion order — drives
        CLI progress reporting.
    executor:
        Execution substrate (see :mod:`repro.parallel.executors`); when
        given it overrides ``processes``.  A caller-provided executor is
        *not* shut down, so e.g. one connected
        :class:`~repro.parallel.executors.sockets.SocketExecutor` fleet
        can serve a scan and then its journal resume.
    recover:
        Enable the numerical self-healing layer in each worker: engines
        run with guarded decomposition/operators
        (:class:`~repro.core.recovery.RecoveryConfig`) and fits restart
        per :class:`~repro.core.recovery.RecoveryPolicy`; whatever fired
        rides back on ``GeneResult.diagnostics``.  Off by default —
        results are then bit-identical to the unguarded code.
    incremental:
        Enable dirty-path CLV caching in each worker
        (:meth:`LikelihoodEngine.bind` with ``incremental=True``): BFGS
        gradient probes re-prune only the probed branch's root path and
        model-A classes share background subtrees.  Bit-identical to the
        full re-pruning path; the reuse counters ride back on
        ``GeneResult.clv_stats``.
    batched:
        Override the stacked-operator / level-order evaluation path in
        each worker (:meth:`LikelihoodEngine.bind` ``batched=``):
        ``None`` keeps the engine default (on for ``slim-v2``, off
        elsewhere).  Bit-identical to the per-branch path.
    model:
        Model-spec string resolved per worker through
        :func:`repro.models.registry.resolve_model_spec` — e.g.
        ``"bsrel:3"`` for the 6-class BS-REL test.  ``None`` keeps the
        historical model-A default (bit-identical to it).
    map_samples:
        When set, each worker additionally samples that many posterior
        substitution histories at the H1 MLEs (uniformization-based
        stochastic mapping, :mod:`repro.likelihood.mapping`) and
        attaches the per-branch event payload to
        ``GeneResult.mapping``.  ``None``/``0`` = off (the default; the
        fit itself is untouched either way).
    map_serial:
        Draw mapping histories with the reference serial sampler
        instead of the batched one (``--map-serial``, the bit-identity
        gate).  Rides the broadcast context only — custom workers keep
        their historical tuple shape and always use the default method.
    keep_mles:
        Attach each task's H1 maximum-likelihood point to
        ``GeneResult.h1_mles`` so a coordinator can re-bind candidates
        after the scan (the survey's one-pass mapper).  Context-only,
        like ``map_serial``.

    Returns
    -------
    list of :class:`GeneResult` in job order; a failed task yields a
    result with ``failed=True`` and a structured ``failure`` record
    rather than raising.
    """
    policy = policy if policy is not None else FaultPolicy()
    shared = worker is None
    run = worker if worker is not None else _run_gene_shared

    results: List[Optional[GeneResult]] = [None] * len(jobs)
    pending_jobs: List[GeneJob] = []
    payload_jobs: List[int] = []  # payload position -> job index
    payload_seeds: List[int] = []

    done: Dict[str, GeneResult] = {}
    if journal is not None and resume:
        done = ResultJournal(journal).completed()
    for k, job in enumerate(jobs):
        if job.gene_id in done:
            results[k] = done[job.gene_id]
        else:
            pending_jobs.append(job)
            payload_jobs.append(k)
            payload_seeds.append(seed + k)

    context: Optional[Dict] = None
    payloads: List[Tuple] = []
    if shared:
        # Default data plane: one broadcast context per batch, integer
        # indices per task (see module docstring).
        context, keys = _build_shared_context(
            pending_jobs, engine, recover, incremental, max_iterations,
            batched=batched, model=model, map_samples=map_samples,
            map_serial=map_serial, keep_mles=keep_mles,
        )
        payloads = [
            (job.gene_id, ni, job.fg_node, ai, s)
            for job, (ni, ai), s in zip(pending_jobs, keys, payload_seeds)
        ]
    else:
        # Custom-worker seam: the historical self-contained tuples.
        for job, s in zip(pending_jobs, payload_seeds):
            base: Tuple = (job, engine, s, max_iterations)
            # Keep the historical 4-tuple when no flag is set so custom
            # workers written against it never see a surprise element;
            # ``incremental`` rides sixth after ``recover``, the
            # ``batched`` override seventh, the model spec eighth, the
            # mapping sample count ninth.
            mapping_on = map_samples is not None
            if recover or incremental or batched is not None or model is not None \
                    or mapping_on:
                base = base + (recover,)
            if incremental or batched is not None or model is not None or mapping_on:
                base = base + (incremental,)
            if batched is not None or model is not None or mapping_on:
                base = base + (None if batched is None else bool(batched),)
            if model is not None or mapping_on:
                base = base + (model,)
            if mapping_on:
                base = base + (int(map_samples),)
            payloads.append(base)

    sink = ResultJournal(journal) if journal is not None else None
    try:
        def handle(outcome: TaskOutcome) -> None:
            k = payload_jobs[outcome.index]
            if outcome.ok:
                result = outcome.result
                result.attempts = outcome.attempts
                result.worker = outcome.worker
            else:
                result = GeneResult.from_failure(outcome.failure, worker=outcome.worker)
            results[k] = result
            if sink is not None:
                sink.append(result)
            if on_result is not None:
                on_result(k, result)

        in_process = executor is None and (
            processes == 1 or (len(payloads) <= 1 and policy.task_timeout is None)
        )
        run_tasks(
            run,
            payloads,
            task_ids=[jobs[k].gene_id for k in payload_jobs],
            policy=policy,
            max_workers=processes,
            on_outcome=handle,
            in_process=in_process,
            executor=executor,
            context=context,
        )
    finally:
        if sink is not None:
            sink.close()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


@dataclass
class BranchScanResult:
    """Per-branch outcomes for one gene — successes *and* failures.

    A poisoned branch no longer discards the rest of the scan:
    ``by_branch`` holds the LRT for every branch whose task succeeded,
    ``failures`` the structured record for every branch that did not.
    """

    gene_id: str
    #: Branch label → LRT result; labels are child-node names or
    #: ``node#<index>`` for unnamed internals.
    by_branch: Dict[str, LRTResult]
    #: Branch label → structured failure for tasks that did not finish.
    failures: Dict[str, TaskFailure] = field(default_factory=dict)
    #: Raw per-branch worker results in candidate order (metrics source).
    gene_results: List[GeneResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every candidate branch produced an LRT."""
        return not self.failures

    @property
    def n_candidates(self) -> int:
        return len(self.by_branch) + len(self.failures)

    def significant_branches(self, alpha: float = 0.05) -> List[str]:
        """Branch labels significant at ``alpha`` — before any multiple-
        testing correction (Anisimova & Yang 2007 discuss corrections)."""
        return [
            label
            for label, lrt in self.by_branch.items()
            if lrt.significant(alpha)
        ]

    def holm_significant(self, alpha: float = 0.05) -> List[str]:
        """Branch labels surviving Holm-Bonferroni at family-wise ``alpha``.

        Same correction (and the same sorted-label ordering) as the
        survey report, so the labels here are exactly the rows the
        report marks POSITIVE SELECTION — the set ``scan --survey
        --map`` feeds the one-pass mapper.
        """
        branches = sorted(self.by_branch)
        if not branches:
            return []
        raw = np.array([self.by_branch[b].pvalue_chi2 for b in branches])
        adjusted = holm_correction(raw)
        return [b for b, adj in zip(branches, adjusted) if adj < alpha]

    def raise_on_failure(self) -> "BranchScanResult":
        """Opt back into the old fail-fast contract (first failure raises)."""
        if self.failures:
            label, failure = next(iter(self.failures.items()))
            raise RuntimeError(
                f"branch scan task {self.gene_id}:{label} failed: {failure.describe()}"
            )
        return self

    def summary(
        self, wall_seconds: float = 0.0, resumed_ids: Sequence[str] = ()
    ) -> BatchSummary:
        """Aggregate scan metrics (see :mod:`repro.parallel.metrics`)."""
        from repro.parallel.metrics import summarize_results

        return summarize_results(
            self.gene_results, wall_seconds=wall_seconds, resumed_ids=resumed_ids
        )


def branch_label(tree: Tree, node_index: int) -> str:
    node = tree.nodes[node_index]
    return node.name if node.name else f"node#{node.index}"


def scan_branches(
    gene_id: str,
    tree: Tree,
    alignment: CodonAlignment,
    engine: str = "slim",
    internal_only: bool = False,
    seed: int = 1,
    max_iterations: int = 50,
    processes: Optional[int] = 1,
    policy: Optional[FaultPolicy] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    worker: Optional[Callable] = None,
    on_result: Optional[Callable[[int, GeneResult], None]] = None,
    executor: Optional[Executor] = None,
    recover: bool = False,
    incremental: bool = False,
    batched: Optional[bool] = None,
    model: Optional[str] = None,
    map_samples: Optional[int] = None,
    map_serial: bool = False,
    keep_mles: bool = False,
) -> BranchScanResult:
    """Test every candidate branch of one gene as foreground in turn.

    Per-branch task ids are ``"<gene_id>:<branch_label>"``, so a journal
    written by one scan resumes cleanly at branch granularity.  Failures
    are captured per branch (see :class:`BranchScanResult`); callers
    wanting the old fail-fast behaviour chain ``.raise_on_failure()``.
    """
    candidates = [
        n for n in tree.nodes if not n.is_root and (not internal_only or not n.is_leaf)
    ]
    jobs = []
    if worker is None:
        # Default data plane: every candidate shares one base Newick
        # (deduplicated into the broadcast context) and carries only its
        # foreground-node index; the worker applies the mark.  Node
        # indices survive the write→parse round trip because both
        # traversals visit children in the same order.
        for node in candidates:
            jobs.append(
                GeneJob.from_objects(
                    f"{gene_id}:{branch_label(tree, node.index)}",
                    tree,
                    alignment,
                    fg_node=node.index,
                )
            )
    else:
        # Custom-worker seam: pre-marked trees, the historical contract.
        for node in candidates:
            marked = tree.copy()
            marked.mark_foreground(marked.nodes[node.index])
            jobs.append(
                GeneJob.from_objects(
                    f"{gene_id}:{branch_label(tree, node.index)}", marked, alignment
                )
            )
    results = analyze_genes(
        jobs,
        engine=engine,
        processes=processes,
        seed=seed,
        max_iterations=max_iterations,
        policy=policy,
        journal=journal,
        resume=resume,
        worker=worker,
        on_result=on_result,
        executor=executor,
        recover=recover,
        incremental=incremental,
        batched=batched,
        model=model,
        map_samples=map_samples,
        map_serial=map_serial,
        keep_mles=keep_mles,
    )
    by_branch: Dict[str, LRTResult] = {}
    failures: Dict[str, TaskFailure] = {}
    for node, res in zip(candidates, results):
        label = branch_label(tree, node.index)
        if res.failed:
            failures[label] = res.failure if res.failure is not None else TaskFailure(
                task_id=res.gene_id,
                kind="error",
                error_type="Error",
                message=res.error or "unknown failure",
                attempts=res.attempts,
            )
        else:
            by_branch[label] = likelihood_ratio_test(res.lnl0, res.lnl1)
    return BranchScanResult(
        gene_id=gene_id, by_branch=by_branch, failures=failures, gene_results=list(results)
    )


def map_survey_candidates(
    gene_id: str,
    tree: Tree,
    alignment: CodonAlignment,
    scan: BranchScanResult,
    labels: Sequence[str],
    engine: str = "slim",
    map_samples: int = 16,
    seed: int = 1,
    model: Optional[str] = None,
    batched: Optional[bool] = None,
    method: str = "batched",
    internal_only: bool = False,
) -> Dict[str, Dict]:
    """Map every selected survey candidate in one shared-kernel pass.

    ``scan --survey --map`` defers mapping until after Holm selection,
    then draws histories for just the significant branches — here, in
    the coordinator, over **one** engine instance.  What that sharing
    buys (versus per-task mapping inside each worker):

    * one pattern compression and one F3x4 estimate for the gene;
    * one set of leaf CLVs, threaded into every candidate binding via
      ``bind(leaf_clvs=...)`` — foreground choice never changes leaf
      data;
    * one pooled decomposition LRU and one ``_uniformized`` kernel
      table, so candidates whose MLEs land on the same (κ, ω) reuse
      R-power stacks and jump-weight series across foreground choices.

    Each candidate is still sampled at *its own* H1 MLEs (carried on
    ``GeneResult.h1_mles`` by ``keep_mles=True``) with the same
    per-candidate seed the per-task path would have used, on a marked
    copy of the shared base tree.  Candidates without stored MLEs (e.g.
    failed tasks) are skipped; a sampling failure degrades to an
    ``{"error": ...}`` payload exactly like the per-task path.

    Returns ``{branch_label: mapping payload}``.
    """
    from repro.likelihood.mapping import sample_substitution_mapping

    spec = resolve_model_spec(model)
    eng = make_engine(engine)
    pi = estimate_codon_frequencies(
        alignment.to_sequences(), method="f3x4", code=alignment.code
    )
    patterns = compress_patterns(alignment)
    prefix = f"{gene_id}:"
    mles = {
        res.gene_id[len(prefix):]: res.h1_mles
        for res in scan.gene_results
        if res.h1_mles and res.gene_id.startswith(prefix)
    }
    candidates = [
        n for n in tree.nodes
        if not n.is_root and (not internal_only or not n.is_leaf)
    ]
    node_of = {branch_label(tree, n.index): n.index for n in candidates}
    # Seeds must match what the per-task path would have drawn with:
    # analyze_genes gives candidate k seed ``seed + k`` in the same
    # candidate order ``scan_branches`` enumerated (pass the scan's
    # ``internal_only`` so the ordinals line up).
    seed_of = {
        branch_label(tree, n.index): seed + k for k, n in enumerate(candidates)
    }
    shared_leaf_clvs = None
    out: Dict[str, Dict] = {}
    for label in labels:
        point = mles.get(label)
        if point is None or label not in node_of:
            continue
        marked = tree.copy()
        marked.mark_foreground(marked.nodes[node_of[label]])
        try:
            bound = eng.bind(
                marked, patterns, spec.pair()[1], pi=pi,
                batched=batched, leaf_clvs=shared_leaf_clvs,
            )
            if shared_leaf_clvs is None:
                shared_leaf_clvs = bound._leaf_clvs
            out[label] = sample_substitution_mapping(
                bound,
                point["values"],
                branch_lengths=point["branch_lengths"],
                n_samples=int(map_samples),
                seed=seed_of.get(label, seed),
                method=method,
            ).to_payload()
        except Exception as exc:  # noqa: BLE001 — mapping is strictly additive
            out[label] = {"error": f"{type(exc).__name__}: {exc}"}
    return out
