"""Combining per-class pruning results into the mixture likelihood.

For site patterns ``s`` with multiplicities ``w_s`` and site classes
``m`` with proportions ``q_m`` (paper Table I):

    lnL = Σ_s w_s · log Σ_m q_m · L_{s,m}

where each ``L_{s,m}`` carries its own pruning scale factor, so the
combination runs in log space via a weighted log-sum-exp.  The per-site,
per-class likelihood matrix is also the input to the empirical Bayes
site classification (:mod:`repro.optimize.beb`).

The class structure — how many classes, their weights and labels —
comes from the model's :class:`~repro.models.class_graph.SiteClassGraph`;
this layer is N-class generic and guards its own boundary: negative or
NaN mixture weights raise here instead of propagating as a garbage
log-sum-exp that would only surface later as a non-finite-CLV recovery
event.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.recovery import NumericalError, NumericalEventRecorder
from repro.likelihood.pruning import PruningResult
from repro.utils.numerics import logsumexp_weighted

__all__ = [
    "site_class_log_likelihoods",
    "check_finite_site_log_likelihoods",
    "mixture_log_likelihood",
    "class_posteriors",
]


def _check_weights(proportions: np.ndarray) -> None:
    """Reject negative/NaN mixture weights before they enter a log-sum-exp.

    ``logsumexp_weighted`` masks zero-weight rows but would happily fold
    a negative or NaN weight into the sum, yielding a NaN (or worse, a
    finite wrong number) attributed to pruning by the recovery layer.
    """
    bad = ~np.isfinite(proportions) | (proportions < 0.0)
    if bad.any():
        idx = [int(i) for i in np.nonzero(bad)[0]]
        raise ValueError(
            f"mixture weights must be finite and non-negative; "
            f"class index(es) {idx} have {proportions[bad].tolist()}"
        )


def site_class_log_likelihoods(
    results: Sequence[PruningResult], pi: np.ndarray
) -> np.ndarray:
    """Stack per-class per-pattern log-likelihoods into ``(n_classes, n_patterns)``."""
    if not results:
        raise ValueError("no pruning results to combine")
    return np.vstack([res.site_log_likelihoods(pi) for res in results])


def check_finite_site_log_likelihoods(
    class_lnl: np.ndarray,
    recorder: Optional[NumericalEventRecorder] = None,
    class_labels: Optional[Sequence[str]] = None,
    **context,
) -> np.ndarray:
    """Raise a typed error on NaN or ``+inf`` per-class site log-likelihoods.

    ``-inf`` is a legitimate value (a pattern impossible under one class
    while another class covers it); NaN or ``+inf`` means garbage leaked
    through pruning/combination and would silently poison the mixture.
    The raised :class:`~repro.core.recovery.NumericalError` names the
    offending class(es) and pattern indices.
    """
    bad = np.isnan(class_lnl) | (class_lnl == np.inf)
    if bad.any():
        class_idx, pattern_idx = np.nonzero(bad)
        labels = sorted(
            {
                class_labels[c] if class_labels is not None else str(c)
                for c in class_idx
            }
        )
        detail = (
            f"non-finite site log-likelihood in class(es) {labels}, "
            f"pattern(s) {[int(p) for p in pattern_idx[:8]]}"
        )
        ctx = {
            "classes": ",".join(labels),
            "patterns": str([int(p) for p in pattern_idx[:8]]),
            **context,
        }
        if recorder is not None:
            recorder.record("mixture_nonfinite", "mixture", detail, **ctx)
        raise NumericalError(detail, where="mixture", context=ctx)
    return class_lnl


def mixture_log_likelihood(
    results: Sequence[PruningResult],
    pi: np.ndarray,
    proportions: Sequence[float],
    pattern_weights: np.ndarray,
    class_lnl: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Total log-likelihood and the per-pattern site log-likelihoods.

    ``class_lnl`` optionally supplies the precomputed
    :func:`site_class_log_likelihoods` matrix (the engine layer computes
    it once and shares it with the finite-value check).

    Returns
    -------
    (float, numpy.ndarray)
        ``(lnL, per_pattern_lnl)`` where ``lnL = pattern_weights · per_pattern_lnl``.
    """
    if class_lnl is None:
        class_lnl = site_class_log_likelihoods(results, pi)
    proportions = np.asarray(proportions, dtype=float)
    if class_lnl.shape[0] != proportions.shape[0]:
        raise ValueError(
            f"{class_lnl.shape[0]} pruning results but {proportions.shape[0]} proportions"
        )
    _check_weights(proportions)
    per_pattern = logsumexp_weighted(class_lnl, proportions, axis=0)
    pattern_weights = np.asarray(pattern_weights, dtype=float)
    if pattern_weights.shape != per_pattern.shape:
        raise ValueError("pattern weight shape mismatch")
    return float(pattern_weights @ per_pattern), per_pattern


def class_posteriors(
    class_lnl: np.ndarray, proportions: Sequence[float]
) -> np.ndarray:
    """Posterior ``P(class m | site s)`` — naive empirical Bayes (NEB).

    ``class_lnl`` is the ``(n_classes, n_patterns)`` matrix from
    :func:`site_class_log_likelihoods` evaluated at the MLEs.
    """
    proportions = np.asarray(proportions, dtype=float)
    _check_weights(proportions)
    log_joint = class_lnl + np.log(np.where(proportions > 0, proportions, 1.0))[:, None]
    log_joint = np.where(proportions[:, None] > 0, log_joint, -np.inf)
    log_total = logsumexp_weighted(class_lnl, proportions, axis=0)
    with np.errstate(invalid="ignore"):
        post = np.exp(log_joint - log_total[None, :])
    post[~np.isfinite(post)] = 0.0
    return post
