"""Combining per-class pruning results into the mixture likelihood.

For site patterns ``s`` with multiplicities ``w_s`` and site classes
``m`` with proportions ``q_m`` (paper Table I):

    lnL = Σ_s w_s · log Σ_m q_m · L_{s,m}

where each ``L_{s,m}`` carries its own pruning scale factor, so the
combination runs in log space via a weighted log-sum-exp.  The per-site,
per-class likelihood matrix is also the input to the empirical Bayes
site classification (:mod:`repro.optimize.beb`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.likelihood.pruning import PruningResult
from repro.utils.numerics import logsumexp_weighted

__all__ = ["site_class_log_likelihoods", "mixture_log_likelihood", "class_posteriors"]


def site_class_log_likelihoods(
    results: Sequence[PruningResult], pi: np.ndarray
) -> np.ndarray:
    """Stack per-class per-pattern log-likelihoods into ``(n_classes, n_patterns)``."""
    if not results:
        raise ValueError("no pruning results to combine")
    return np.vstack([res.site_log_likelihoods(pi) for res in results])


def mixture_log_likelihood(
    results: Sequence[PruningResult],
    pi: np.ndarray,
    proportions: Sequence[float],
    pattern_weights: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Total log-likelihood and the per-pattern site log-likelihoods.

    Returns
    -------
    (float, numpy.ndarray)
        ``(lnL, per_pattern_lnl)`` where ``lnL = pattern_weights · per_pattern_lnl``.
    """
    class_lnl = site_class_log_likelihoods(results, pi)
    proportions = np.asarray(proportions, dtype=float)
    if class_lnl.shape[0] != proportions.shape[0]:
        raise ValueError(
            f"{class_lnl.shape[0]} pruning results but {proportions.shape[0]} proportions"
        )
    per_pattern = logsumexp_weighted(class_lnl, proportions, axis=0)
    pattern_weights = np.asarray(pattern_weights, dtype=float)
    if pattern_weights.shape != per_pattern.shape:
        raise ValueError("pattern weight shape mismatch")
    return float(pattern_weights @ per_pattern), per_pattern


def class_posteriors(
    class_lnl: np.ndarray, proportions: Sequence[float]
) -> np.ndarray:
    """Posterior ``P(class m | site s)`` — naive empirical Bayes (NEB).

    ``class_lnl`` is the ``(n_classes, n_patterns)`` matrix from
    :func:`site_class_log_likelihoods` evaluated at the MLEs.
    """
    proportions = np.asarray(proportions, dtype=float)
    log_joint = class_lnl + np.log(np.where(proportions > 0, proportions, 1.0))[:, None]
    log_joint = np.where(proportions[:, None] > 0, log_joint, -np.inf)
    log_total = logsumexp_weighted(class_lnl, proportions, axis=0)
    with np.errstate(invalid="ignore"):
        post = np.exp(log_joint - log_total[None, :])
    post[~np.isfinite(post)] = 0.0
    return post
