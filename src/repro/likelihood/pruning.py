"""Felsenstein's pruning algorithm over site patterns.

A post-order pass propagates conditional probability vectors (CLVs) from
the leaves to the root (paper Fig. 2): along each branch the child's CLV
is transformed by the branch's transition operator, and at each internal
node the incoming vectors are multiplied elementwise.  All patterns are
carried together, so a CLV here is an ``(n_states, n_patterns)`` matrix.

Numerical rescaling: with many branches the per-pattern CLV magnitudes
underflow double precision, so whenever a completed node's column
maximum drops below a threshold the column is renormalised and the log
factor accumulated per pattern; the root likelihood re-applies the
accumulated logs.  This is the standard CodeML/RAxML technique and is
exercised directly by the 95-species dataset iv.

Incremental (dirty-path) mode: a :class:`PruningState` keeps every
node's CLV, every branch's propagated contribution, and every node's
per-pattern rescale vector between evaluations.  Given the set of
branches whose operator changed, only CLVs on the paths from those
branches to the root are recomputed; everything else is served from the
state buffers.  The recomputation replays the *same* arithmetic in the
*same* order as a full pass (child contributions multiplied in
branch-table row order, rescale vectors summed in node completion
order), so incremental results are bit-identical to full re-pruning —
see DESIGN.md §9 for the invalidation rules and the proof obligations.

This layer is class-structure agnostic: which passes run, which states
alias another class's buffers (via :meth:`PruningState.derive`), and
which branch set is ``dirty`` are all decided above, by the planner on
the model's :class:`~repro.models.class_graph.SiteClassGraph` — a
sharing edge maps to ``derive()`` plus a foreground-path (or empty)
dirty set, a changed branch length maps to that branch's
root path.  See DESIGN.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.alignment.msa import AMBIGUOUS, MISSING, CodonAlignment
from repro.core.recovery import PruningGuard

__all__ = [
    "PruningResult",
    "PruningState",
    "LevelSchedule",
    "build_leaf_clvs",
    "build_level_schedule",
    "compute_recompute_rows",
    "prune_site_class",
    "prune_site_class_batched",
]

#: Rescale a completed node's pattern column when its max falls below this.
SCALE_THRESHOLD = 1e-70

#: A branch's transition operator handle, as produced by an engine.
Operator = object
#: Engine hook: (branch_length, is_foreground) → operator.
TransitionFactory = Callable[[float, bool], Operator]
#: Engine hook: (operator, child_clv) → propagated contribution.
Propagator = Callable[[Operator, np.ndarray], np.ndarray]
#: Engine hook: list of (row_index, operator, child_clv) for one tree
#: level → list of contributions, bit-identical to per-item
#: :data:`Propagator` calls.  The row index lets the caller recognise a
#: contribution it has already computed (e.g. the leaf-contribution
#: memo in ``BoundLikelihood._evaluate_batched``) and serve it without
#: re-running the kernel.
LevelPropagator = Callable[
    [List[Tuple[int, Operator, np.ndarray]]], List[np.ndarray]
]


@dataclass
class PruningResult:
    """Root CLV and accumulated per-pattern log scale factors."""

    root_clv: np.ndarray
    log_scalers: np.ndarray

    def site_log_likelihoods(self, pi: np.ndarray) -> np.ndarray:
        """Per-pattern log-likelihood: ``log(π · clv_root) + scalers``.

        Round-off can leave a tiny negative dot product for patterns
        that are (numerically) impossible under the current parameters;
        those map to ``-inf`` rather than NaN so the optimizer's barrier
        logic keeps working.
        """
        site_l = pi @ self.root_clv
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(site_l > 0.0, np.log(np.maximum(site_l, 1e-320)), -np.inf)
        return logs + self.log_scalers


def build_leaf_clvs(alignment: CodonAlignment) -> List[np.ndarray]:
    """Dense leaf CLV matrices, one ``(n_states, n_patterns)`` per taxon row.

    Exact states get an indicator column, missing cells all-ones, and
    ambiguous cells the indicator of their compatible-state set.  Exact
    and missing columns are filled with one fancy-indexing pass per
    taxon; only the (rare) ambiguous columns fall back to per-column
    assignment from :attr:`CodonAlignment.ambiguity_sets`.
    """
    n_states = alignment.code.n_states
    states = alignment.states
    columns = np.arange(alignment.n_codons)
    clvs = []
    for row in range(alignment.n_taxa):
        clv = np.zeros((n_states, alignment.n_codons), order="F")
        row_states = states[row]
        exact = row_states >= 0
        clv[row_states[exact], columns[exact]] = 1.0
        clv[:, row_states == MISSING] = 1.0
        for col in np.flatnonzero(row_states == AMBIGUOUS):
            clv[list(alignment.ambiguity_sets[(row, int(col))]), col] = 1.0
        clvs.append(clv)
    return clvs


@dataclass
class PruningState:
    """Persistent per-class buffers for incremental re-pruning.

    Stored arrays are treated as **immutable** once written: an
    incremental pass that recomputes a node always allocates fresh
    arrays, so states derived via :meth:`derive` (cross-class aliasing,
    speculative gradient probes) can safely share buffers with their
    base state.

    ``children`` (each node's child list in branch-table row order) and
    ``completion_order`` (the order internal nodes complete in a
    post-order pass) are static given the branch table; recording them
    lets the incremental pass rebuild a node's CLV with the exact
    multiplication order of a full pass and re-sum the per-node rescale
    vectors in the exact float addition order — the two invariants that
    make incremental results bit-identical to full re-pruning.
    """

    n_nodes: int
    #: Per-node CLV after rescaling (leaves alias their leaf CLVs).
    clvs: List[Optional[np.ndarray]] = field(default_factory=list)
    #: Per-child-node propagated contribution along the branch above it.
    contributions: List[Optional[np.ndarray]] = field(default_factory=list)
    #: Per-node log rescale vector; ``None`` = no rescaling fired there.
    scalers: List[Optional[np.ndarray]] = field(default_factory=list)
    #: Per-node children in branch-table row order (static).
    children: List[List[int]] = field(default_factory=list)
    #: Internal nodes in the order a post-order pass completes them.
    completion_order: List[int] = field(default_factory=list)
    root_index: int = -1
    #: True once a populating pass has filled every buffer.
    ready: bool = False

    @classmethod
    def empty(cls, n_nodes: int) -> "PruningState":
        return cls(
            n_nodes=n_nodes,
            clvs=[None] * n_nodes,
            contributions=[None] * n_nodes,
            scalers=[None] * n_nodes,
            children=[[] for _ in range(n_nodes)],
        )

    def derive(self) -> "PruningState":
        """A shallow copy sharing all arrays — mutate lists, not buffers."""
        return PruningState(
            n_nodes=self.n_nodes,
            clvs=list(self.clvs),
            contributions=list(self.contributions),
            scalers=list(self.scalers),
            children=self.children,
            completion_order=self.completion_order,
            root_index=self.root_index,
            ready=self.ready,
        )

    def missing_nodes(self) -> List[int]:
        """Node indices whose CLV is still unfilled.

        The stochastic-mapping sampler conditions on *every* node's
        inside CLV; asserting this is empty after a populating pass
        turns a silent ``None`` dereference into a named precondition
        failure.
        """
        return [i for i, clv in enumerate(self.clvs) if clv is None]

    def total_log_scalers(self, n_patterns: int) -> np.ndarray:
        """Sum per-node rescale vectors in completion order.

        A full pass adds each firing node's vector into a zero
        accumulator as the node completes; iterating
        ``completion_order`` replays those additions operand-for-operand,
        so the float result is identical.
        """
        total = np.zeros(n_patterns)
        for node in self.completion_order:
            vec = self.scalers[node]
            if vec is not None:
                total += vec
        return total


def _complete_node(
    node_clv: np.ndarray,
    parent: int,
    scale_threshold: float,
    guard: Optional[PruningGuard],
) -> Optional[np.ndarray]:
    """Guard-check and rescale a completed node's CLV in place.

    Returns the per-pattern log rescale vector when rescaling fired,
    else ``None``.  Shared by the full, populating and incremental
    passes so the arithmetic (and the guard semantics) cannot diverge.
    """
    col_max = node_clv.max(axis=0)
    if guard is not None:
        # NaN propagates through max(); +inf survives it too, so one
        # O(n_patterns) pass over the column maxima catches both
        # non-finite modes at the node where they appear.
        bad = ~np.isfinite(col_max)
        if bad.any():
            patterns = np.flatnonzero(bad)
            raise guard.fail(
                "clv_nonfinite",
                f"non-finite CLV at node {parent} in "
                f"{patterns.shape[0]} pattern column(s)",
                node=int(parent),
                patterns=str([int(i) for i in patterns[:8]]),
            )
    needs = col_max < scale_threshold
    if not needs.any():
        return None
    if guard is not None:
        zero = needs & (col_max <= 0.0)
        if zero.any():
            patterns = np.flatnonzero(zero)
            raise guard.fail(
                "clv_zero_column",
                f"pattern column(s) went entirely zero at node "
                f"{parent} — underflow past rescue or data "
                f"impossible under the current parameters",
                node=int(parent),
                patterns=str([int(i) for i in patterns[:8]]),
            )
    safe = np.where(needs & (col_max > 0.0), col_max, 1.0)
    node_clv /= safe[None, :]
    with np.errstate(divide="ignore"):
        return np.where(safe != 1.0, np.log(safe), 0.0)


def prune_site_class(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    n_nodes: int,
    leaf_clvs: Sequence[np.ndarray],
    transition_factory: TransitionFactory,
    propagate: Propagator,
    scale_threshold: float = SCALE_THRESHOLD,
    guard: Optional[PruningGuard] = None,
    state: Optional[PruningState] = None,
    dirty: Optional[Set[int]] = None,
    on_reuse: Optional[Callable[[np.ndarray], None]] = None,
) -> PruningResult:
    """One post-order pruning pass for a single site class.

    Parameters
    ----------
    branch_table:
        Post-ordered ``(child_index, parent_index, length, foreground)``
        rows from :meth:`repro.trees.tree.Tree.branch_table`.
    n_nodes:
        Total node count; the root is the node that appears only as a
        parent.
    leaf_clvs:
        Leaf CLVs indexed by leaf node index (prefix of the node range).
    transition_factory, propagate:
        Engine kernels (see module type aliases).  ``propagate`` must
        return a fresh array (it becomes, or is multiplied into, the
        parent CLV).
    guard:
        Optional :class:`~repro.core.recovery.PruningGuard`.  When set,
        each completed node's CLV is checked at rescale time: NaN/Inf
        columns, and pattern columns that went *entirely* zero (which
        would otherwise surface much later as an uninformative ``-inf``
        log-likelihood), raise a typed
        :class:`~repro.core.recovery.NumericalError` naming the node and
        the offending pattern indices.  ``None`` (default) preserves the
        historical unguarded behaviour bit-for-bit.
    state:
        Optional :class:`PruningState` enabling persistent-buffer mode.
        An unready state is populated by a full pass; a ready state is
        updated incrementally.  ``None`` (default) is the historical
        stateless pass, bit-for-bit.
    dirty:
        With a ready ``state``: the child-node indices of branches whose
        operator (length or rate parameters) changed since the state was
        filled.  Only CLVs on the paths from these branches to the root
        are recomputed.  ``None`` means every branch is dirty.
    on_reuse:
        With a ready ``state``: called once per branch application served
        from the buffers instead of recomputed (receives the cached
        contribution, for saved-work accounting).

    Returns
    -------
    PruningResult
    """
    if not branch_table:
        raise ValueError("cannot prune an empty branch table")
    n_patterns = leaf_clvs[0].shape[1]

    if state is not None:
        if state.ready:
            return _prune_incremental(
                branch_table, state, transition_factory, propagate,
                scale_threshold, guard, dirty, on_reuse, n_patterns,
            )
        return _prune_populate(
            branch_table, n_nodes, leaf_clvs, transition_factory, propagate,
            scale_threshold, guard, state, n_patterns,
        )

    clvs: List[np.ndarray | None] = [None] * n_nodes
    n_leaves = len(leaf_clvs)
    for i in range(n_leaves):
        clvs[i] = leaf_clvs[i]

    pending_children = np.zeros(n_nodes, dtype=np.intp)
    for _, parent, _, _ in branch_table:
        pending_children[parent] += 1

    log_scalers = np.zeros(n_patterns)
    root_index = -1
    for child, parent, t, foreground in branch_table:
        child_clv = clvs[child]
        if child_clv is None:
            raise ValueError(f"branch table is not post-ordered: node {child} unset")
        operator = transition_factory(t, foreground)
        contribution = propagate(operator, child_clv)
        if clvs[parent] is None:
            clvs[parent] = contribution
        else:
            clvs[parent] *= contribution
        pending_children[parent] -= 1
        if pending_children[parent] == 0:
            # Node complete: rescale underflowing pattern columns.
            vec = _complete_node(clvs[parent], parent, scale_threshold, guard)
            if vec is not None:
                log_scalers += vec
        root_index = parent

    # The final completed parent of a post-ordered table is the root.
    if pending_children.max() != 0:
        raise ValueError("branch table did not complete every internal node")
    root_clv = clvs[root_index]
    assert root_clv is not None
    return PruningResult(root_clv=root_clv, log_scalers=log_scalers)


def _prune_populate(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    n_nodes: int,
    leaf_clvs: Sequence[np.ndarray],
    transition_factory: TransitionFactory,
    propagate: Propagator,
    scale_threshold: float,
    guard: Optional[PruningGuard],
    state: PruningState,
    n_patterns: int,
) -> PruningResult:
    """Full pass that also fills a :class:`PruningState`.

    Identical arithmetic to the stateless pass with one value-preserving
    difference: a parent CLV starts as a *copy* of its first child's
    contribution (the stateless pass aliases and mutates it), so stored
    contributions stay immutable for later incremental reuse.
    """
    for i in range(len(leaf_clvs)):
        state.clvs[i] = leaf_clvs[i]

    pending_children = np.zeros(n_nodes, dtype=np.intp)
    for _, parent, _, _ in branch_table:
        pending_children[parent] += 1

    root_index = -1
    for child, parent, t, foreground in branch_table:
        child_clv = state.clvs[child]
        if child_clv is None:
            raise ValueError(f"branch table is not post-ordered: node {child} unset")
        operator = transition_factory(t, foreground)
        contribution = propagate(operator, child_clv)
        state.contributions[child] = contribution
        state.children[parent].append(child)
        if state.clvs[parent] is None:
            # order="K" keeps the contribution's memory layout: the
            # stateless pass *aliases* this array, and downstream engine
            # kernels round differently on C- vs F-ordered operands.
            state.clvs[parent] = contribution.copy(order="K")
        else:
            state.clvs[parent] *= contribution
        pending_children[parent] -= 1
        if pending_children[parent] == 0:
            state.scalers[parent] = _complete_node(
                state.clvs[parent], parent, scale_threshold, guard
            )
            state.completion_order.append(parent)
        root_index = parent

    if pending_children.max() != 0:
        raise ValueError("branch table did not complete every internal node")
    state.root_index = root_index
    state.ready = True
    root_clv = state.clvs[root_index]
    assert root_clv is not None
    return PruningResult(
        root_clv=root_clv, log_scalers=state.total_log_scalers(n_patterns)
    )


def _prune_incremental(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    state: PruningState,
    transition_factory: TransitionFactory,
    propagate: Propagator,
    scale_threshold: float,
    guard: Optional[PruningGuard],
    dirty: Optional[Set[int]],
    on_reuse: Optional[Callable[[np.ndarray], None]],
    n_patterns: int,
) -> PruningResult:
    """Dirty-path pass over a ready :class:`PruningState`.

    A branch's contribution is recomputed iff the branch itself is dirty
    or its child's CLV changed; a node's CLV is rebuilt iff any incoming
    contribution changed, multiplying the stored contributions in
    branch-table row order (fresh arrays — shared buffers are never
    mutated).  Clean nodes keep their CLVs *and* their per-node rescale
    vectors, and the result's total scalers are re-summed in completion
    order, so the output is bit-identical to a full pass.
    """
    n_nodes = state.n_nodes
    dirty_children = dirty if dirty is not None else {c for c, _, _, _ in branch_table}
    changed = bytearray(n_nodes)

    pending_children = np.zeros(n_nodes, dtype=np.intp)
    for _, parent, _, _ in branch_table:
        pending_children[parent] += 1

    for child, parent, t, foreground in branch_table:
        if child in dirty_children or changed[child]:
            operator = transition_factory(t, foreground)
            state.contributions[child] = propagate(operator, state.clvs[child])
            changed[parent] = 1
        elif on_reuse is not None:
            on_reuse(state.contributions[child])
        pending_children[parent] -= 1
        if pending_children[parent] == 0 and changed[parent]:
            kids = state.children[parent]
            node_clv = state.contributions[kids[0]].copy(order="K")
            for kid in kids[1:]:
                node_clv *= state.contributions[kid]
            state.clvs[parent] = node_clv
            state.scalers[parent] = _complete_node(
                node_clv, parent, scale_threshold, guard
            )

    root_clv = state.clvs[state.root_index]
    assert root_clv is not None
    return PruningResult(
        root_clv=root_clv, log_scalers=state.total_log_scalers(n_patterns)
    )


# ---------------------------------------------------------------------------
# Level-order (batched) pruning — DESIGN.md §10
#
# Branches are grouped by the height of their child node so one fused
# propagation call (engine hook ``LevelPropagator``) serves every branch
# of a level.  The two orderings that carry float semantics are kept
# exactly as in the sequential pass: each parent multiplies its
# children's contributions in branch-table row order, and the total
# rescale vector is re-summed in the sequential pass's node completion
# order — so the level-order result is bit-identical to
# :func:`prune_site_class` with the same state/dirty arguments.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelSchedule:
    """Static level-order plan for one branch table.

    Built once per binding (the topology never changes between
    evaluations) by :func:`build_level_schedule`.  All lists are shared
    and treated as immutable.
    """

    n_nodes: int
    #: Per-node height: 0 at leaves, ``1 + max(child heights)`` inside.
    heights: List[int]
    #: Branch-table row indices grouped by child height, preserving row
    #: order within each level.
    levels: List[List[int]]
    #: Internal nodes grouped by their own height; a node of height h is
    #: completed after level h−1 is propagated and before level h is.
    complete_at: List[List[int]]
    #: Per-node children in branch-table row order.
    children: List[List[int]]
    #: Internal nodes in the order the sequential pass completes them
    #: (ascending index of their last incoming branch row).
    completion_order: List[int]
    root_index: int


def build_level_schedule(
    branch_table: Sequence[Tuple[int, int, object, object]], n_nodes: int
) -> LevelSchedule:
    """Compute the :class:`LevelSchedule` of a post-ordered branch table."""
    if not branch_table:
        raise ValueError("cannot schedule an empty branch table")
    children: List[List[int]] = [[] for _ in range(n_nodes)]
    heights = [0] * n_nodes
    last_row = [-1] * n_nodes
    root_index = -1
    for ri, (child, parent, _, _) in enumerate(branch_table):
        children[parent].append(child)
        if heights[child] + 1 > heights[parent]:
            heights[parent] = heights[child] + 1
        last_row[parent] = ri
        root_index = parent
    max_level = max(heights[child] for child, _, _, _ in branch_table)
    levels: List[List[int]] = [[] for _ in range(max_level + 1)]
    for ri, (child, _, _, _) in enumerate(branch_table):
        levels[heights[child]].append(ri)
    internal = [p for p in range(n_nodes) if children[p]]
    completion_order = sorted(internal, key=lambda p: last_row[p])
    complete_at: List[List[int]] = [
        [] for _ in range(max(heights[p] for p in internal) + 1)
    ]
    for p in internal:
        complete_at[heights[p]].append(p)
    return LevelSchedule(
        n_nodes=n_nodes,
        heights=heights,
        levels=levels,
        complete_at=complete_at,
        children=children,
        completion_order=completion_order,
        root_index=root_index,
    )


def compute_recompute_rows(
    branch_table: Sequence[Tuple[int, int, object, object]],
    dirty: Optional[Set[int]],
) -> List[int]:
    """Row indices the incremental recurrence recomputes for ``dirty``.

    Replays exactly the recurrence of :func:`_prune_incremental` (a
    branch is recomputed iff its child is dirty or its child's CLV
    changed), so the batched evaluator can plan the operator set an
    evaluation will need *before* pruning starts.  ``dirty=None`` means
    every branch.
    """
    if dirty is None:
        return list(range(len(branch_table)))
    changed: Set[int] = set()
    out: List[int] = []
    for ri, (child, parent, _, _) in enumerate(branch_table):
        if child in dirty or child in changed:
            out.append(ri)
            changed.add(parent)
    return out


def _complete_from_children(
    state: PruningState,
    parent: int,
    kids: Sequence[int],
    scale_threshold: float,
    guard: Optional[PruningGuard],
) -> None:
    """Rebuild a node's CLV from stored contributions (row order) and rescale."""
    node_clv = state.contributions[kids[0]].copy(order="K")
    for kid in kids[1:]:
        node_clv *= state.contributions[kid]
    state.clvs[parent] = node_clv
    state.scalers[parent] = _complete_node(node_clv, parent, scale_threshold, guard)


def prune_site_class_batched(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    schedule: LevelSchedule,
    leaf_clvs: Sequence[np.ndarray],
    transition_factory: TransitionFactory,
    propagate_level: LevelPropagator,
    state: PruningState,
    scale_threshold: float = SCALE_THRESHOLD,
    guard: Optional[PruningGuard] = None,
    dirty: Optional[Set[int]] = None,
    on_reuse: Optional[Callable[[np.ndarray], None]] = None,
) -> PruningResult:
    """Level-order pruning pass over a :class:`PruningState`.

    Bit-identical to :func:`prune_site_class` with the same ``state`` /
    ``dirty`` / ``on_reuse`` arguments; see the section comment above
    for the two order invariants that guarantee it.  The ``state`` is
    required (batched mode is always stateful — non-incremental callers
    pass an ephemeral state per evaluation): an unready state is
    populated fully, a ready one updated via the dirty recurrence.
    """
    n_patterns = leaf_clvs[0].shape[1]
    if state.ready:
        return _prune_level_incremental(
            branch_table, schedule, state, transition_factory, propagate_level,
            scale_threshold, guard, dirty, on_reuse, n_patterns,
        )
    return _prune_level_populate(
        branch_table, schedule, leaf_clvs, state, transition_factory,
        propagate_level, scale_threshold, guard, n_patterns,
    )


def _prune_level_populate(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    schedule: LevelSchedule,
    leaf_clvs: Sequence[np.ndarray],
    state: PruningState,
    transition_factory: TransitionFactory,
    propagate_level: LevelPropagator,
    scale_threshold: float,
    guard: Optional[PruningGuard],
    n_patterns: int,
) -> PruningResult:
    """Full level-order pass filling an empty :class:`PruningState`."""
    for i in range(len(leaf_clvs)):
        state.clvs[i] = leaf_clvs[i]
    # The schedule's static lists are shared (never mutated after build).
    state.children = schedule.children
    state.completion_order = schedule.completion_order
    state.root_index = schedule.root_index

    n_phases = max(len(schedule.levels), len(schedule.complete_at))
    for h in range(n_phases):
        if h < len(schedule.complete_at):
            for parent in schedule.complete_at[h]:
                _complete_from_children(
                    state, parent, schedule.children[parent], scale_threshold, guard
                )
        if h < len(schedule.levels):
            rows = schedule.levels[h]
            items = [
                (ri,
                 transition_factory(branch_table[ri][2], branch_table[ri][3]),
                 state.clvs[branch_table[ri][0]])
                for ri in rows
            ]
            contributions = propagate_level(items)
            for ri, contribution in zip(rows, contributions):
                state.contributions[branch_table[ri][0]] = contribution

    state.ready = True
    root_clv = state.clvs[state.root_index]
    assert root_clv is not None
    return PruningResult(
        root_clv=root_clv, log_scalers=state.total_log_scalers(n_patterns)
    )


def _prune_level_incremental(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    schedule: LevelSchedule,
    state: PruningState,
    transition_factory: TransitionFactory,
    propagate_level: LevelPropagator,
    scale_threshold: float,
    guard: Optional[PruningGuard],
    dirty: Optional[Set[int]],
    on_reuse: Optional[Callable[[np.ndarray], None]],
    n_patterns: int,
) -> PruningResult:
    """Dirty-path level-order pass over a ready :class:`PruningState`."""
    dirty_children = dirty if dirty is not None else {c for c, _, _, _ in branch_table}
    changed = bytearray(state.n_nodes)

    n_phases = max(len(schedule.levels), len(schedule.complete_at))
    for h in range(n_phases):
        if h < len(schedule.complete_at):
            for parent in schedule.complete_at[h]:
                if changed[parent]:
                    _complete_from_children(
                        state, parent, state.children[parent], scale_threshold, guard
                    )
        if h < len(schedule.levels):
            todo: List[int] = []
            for ri in schedule.levels[h]:
                child = branch_table[ri][0]
                if child in dirty_children or changed[child]:
                    todo.append(ri)
                elif on_reuse is not None:
                    on_reuse(state.contributions[child])
            if todo:
                items = [
                    (ri,
                     transition_factory(branch_table[ri][2], branch_table[ri][3]),
                     state.clvs[branch_table[ri][0]])
                    for ri in todo
                ]
                contributions = propagate_level(items)
                for ri, contribution in zip(todo, contributions):
                    state.contributions[branch_table[ri][0]] = contribution
                    changed[branch_table[ri][1]] = 1

    root_clv = state.clvs[state.root_index]
    assert root_clv is not None
    return PruningResult(
        root_clv=root_clv, log_scalers=state.total_log_scalers(n_patterns)
    )
