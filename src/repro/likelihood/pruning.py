"""Felsenstein's pruning algorithm over site patterns.

A post-order pass propagates conditional probability vectors (CLVs) from
the leaves to the root (paper Fig. 2): along each branch the child's CLV
is transformed by the branch's transition operator, and at each internal
node the incoming vectors are multiplied elementwise.  All patterns are
carried together, so a CLV here is an ``(n_states, n_patterns)`` matrix.

Numerical rescaling: with many branches the per-pattern CLV magnitudes
underflow double precision, so whenever a completed node's column
maximum drops below a threshold the column is renormalised and the log
factor accumulated per pattern; the root likelihood re-applies the
accumulated logs.  This is the standard CodeML/RAxML technique and is
exercised directly by the 95-species dataset iv.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.alignment.msa import AMBIGUOUS, MISSING, CodonAlignment
from repro.core.recovery import PruningGuard

__all__ = ["PruningResult", "build_leaf_clvs", "prune_site_class"]

#: Rescale a completed node's pattern column when its max falls below this.
SCALE_THRESHOLD = 1e-70

#: A branch's transition operator handle, as produced by an engine.
Operator = object
#: Engine hook: (branch_length, is_foreground) → operator.
TransitionFactory = Callable[[float, bool], Operator]
#: Engine hook: (operator, child_clv) → propagated contribution.
Propagator = Callable[[Operator, np.ndarray], np.ndarray]


@dataclass
class PruningResult:
    """Root CLV and accumulated per-pattern log scale factors."""

    root_clv: np.ndarray
    log_scalers: np.ndarray

    def site_log_likelihoods(self, pi: np.ndarray) -> np.ndarray:
        """Per-pattern log-likelihood: ``log(π · clv_root) + scalers``.

        Round-off can leave a tiny negative dot product for patterns
        that are (numerically) impossible under the current parameters;
        those map to ``-inf`` rather than NaN so the optimizer's barrier
        logic keeps working.
        """
        site_l = pi @ self.root_clv
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(site_l > 0.0, np.log(np.maximum(site_l, 1e-320)), -np.inf)
        return logs + self.log_scalers


def build_leaf_clvs(alignment: CodonAlignment) -> List[np.ndarray]:
    """Dense leaf CLV matrices, one ``(n_states, n_patterns)`` per taxon row.

    Exact states get an indicator column, missing cells all-ones, and
    ambiguous cells the indicator of their compatible-state set.
    """
    n_states = alignment.code.n_states
    clvs = []
    for row in range(alignment.n_taxa):
        clv = np.zeros((n_states, alignment.n_codons), order="F")
        for col in range(alignment.n_codons):
            state = int(alignment.states[row, col])
            if state == MISSING:
                clv[:, col] = 1.0
            elif state == AMBIGUOUS:
                clv[list(alignment.ambiguity_sets[(row, col)]), col] = 1.0
            else:
                clv[state, col] = 1.0
        clvs.append(clv)
    return clvs


def prune_site_class(
    branch_table: Sequence[Tuple[int, int, float, bool]],
    n_nodes: int,
    leaf_clvs: Sequence[np.ndarray],
    transition_factory: TransitionFactory,
    propagate: Propagator,
    scale_threshold: float = SCALE_THRESHOLD,
    guard: Optional[PruningGuard] = None,
) -> PruningResult:
    """One post-order pruning pass for a single site class.

    Parameters
    ----------
    branch_table:
        Post-ordered ``(child_index, parent_index, length, foreground)``
        rows from :meth:`repro.trees.tree.Tree.branch_table`.
    n_nodes:
        Total node count; the root is the node that appears only as a
        parent.
    leaf_clvs:
        Leaf CLVs indexed by leaf node index (prefix of the node range).
    transition_factory, propagate:
        Engine kernels (see module type aliases).  ``propagate`` must
        return a fresh array (it becomes, or is multiplied into, the
        parent CLV).
    guard:
        Optional :class:`~repro.core.recovery.PruningGuard`.  When set,
        each completed node's CLV is checked at rescale time: NaN/Inf
        columns, and pattern columns that went *entirely* zero (which
        would otherwise surface much later as an uninformative ``-inf``
        log-likelihood), raise a typed
        :class:`~repro.core.recovery.NumericalError` naming the node and
        the offending pattern indices.  ``None`` (default) preserves the
        historical unguarded behaviour bit-for-bit.

    Returns
    -------
    PruningResult
    """
    if not branch_table:
        raise ValueError("cannot prune an empty branch table")
    n_patterns = leaf_clvs[0].shape[1]

    clvs: List[np.ndarray | None] = [None] * n_nodes
    n_leaves = len(leaf_clvs)
    for i in range(n_leaves):
        clvs[i] = leaf_clvs[i]

    pending_children = np.zeros(n_nodes, dtype=np.intp)
    for _, parent, _, _ in branch_table:
        pending_children[parent] += 1

    log_scalers = np.zeros(n_patterns)
    root_index = -1
    for child, parent, t, foreground in branch_table:
        child_clv = clvs[child]
        if child_clv is None:
            raise ValueError(f"branch table is not post-ordered: node {child} unset")
        operator = transition_factory(t, foreground)
        contribution = propagate(operator, child_clv)
        if clvs[parent] is None:
            clvs[parent] = contribution
        else:
            clvs[parent] *= contribution
        pending_children[parent] -= 1
        if pending_children[parent] == 0:
            # Node complete: rescale underflowing pattern columns.
            node_clv = clvs[parent]
            col_max = node_clv.max(axis=0)
            if guard is not None:
                # NaN propagates through max(); +inf survives it too, so
                # one O(n_patterns) pass over the column maxima catches
                # both non-finite modes at the node where they appear.
                bad = ~np.isfinite(col_max)
                if bad.any():
                    patterns = np.flatnonzero(bad)
                    raise guard.fail(
                        "clv_nonfinite",
                        f"non-finite CLV at node {parent} in "
                        f"{patterns.shape[0]} pattern column(s)",
                        node=int(parent),
                        patterns=str([int(i) for i in patterns[:8]]),
                    )
            needs = col_max < scale_threshold
            if needs.any():
                if guard is not None:
                    zero = needs & (col_max <= 0.0)
                    if zero.any():
                        patterns = np.flatnonzero(zero)
                        raise guard.fail(
                            "clv_zero_column",
                            f"pattern column(s) went entirely zero at node "
                            f"{parent} — underflow past rescue or data "
                            f"impossible under the current parameters",
                            node=int(parent),
                            patterns=str([int(i) for i in patterns[:8]]),
                        )
                safe = np.where(needs & (col_max > 0.0), col_max, 1.0)
                node_clv /= safe[None, :]
                with np.errstate(divide="ignore"):
                    log_scalers += np.where(safe != 1.0, np.log(safe), 0.0)
        root_index = parent

    # The final completed parent of a post-ordered table is the root.
    if pending_children.max() != 0:
        raise ValueError("branch table did not complete every internal node")
    root_clv = clvs[root_index]
    assert root_clv is not None
    return PruningResult(root_clv=root_clv, log_scalers=log_scalers)
