"""Felsenstein pruning and site-class mixture combination.

The likelihood of the branch-site model is a 4-component mixture over
site classes; each component is an ordinary pruning likelihood computed
with that class's transition matrices (paper §II-B/§II-C).  This
subpackage is engine-agnostic: the actual kernels (how ``P(t)`` is built
and applied) are injected by :mod:`repro.core.engine`.
"""

from repro.likelihood.ancestral import AncestralReconstruction, marginal_reconstruction
from repro.likelihood.mixture import mixture_log_likelihood, site_class_log_likelihoods
from repro.likelihood.pruning import (
    PruningResult,
    PruningState,
    build_leaf_clvs,
    prune_site_class,
)

__all__ = [
    "AncestralReconstruction",
    "PruningResult",
    "PruningState",
    "build_leaf_clvs",
    "marginal_reconstruction",
    "mixture_log_likelihood",
    "prune_site_class",
    "site_class_log_likelihoods",
]
