"""Marginal ancestral sequence reconstruction (CodeML's ``RateAncestor``).

After fitting, CodeML can reconstruct the most probable codon at every
internal node — used to localise *where* on the foreground branch the
selected substitutions happened.  Marginal reconstruction needs, besides
the standard *inside* conditional vectors (pruning, Fig. 2), an
*outside* pass computing for each node ``v`` the probability of all data
outside ``v``'s subtree given ``v``'s state:

    U_root(y) = 1
    U_c(x)    = Σ_y P(t_c)[y, x] · U_p(y) · Π_{siblings s} (P(t_s) · L_s)(y)

Within one site class the posterior is
``P(state_v = x | class, data) ∝ π_x · L_v(x) · U_v(x)`` — per-column
normalisation cancels all rescaling constants, so underflow protection
is a simple per-node column max rescale.  Classes are then mixed with
their exact *posterior* weights ``P(class | data)`` (from
:func:`repro.likelihood.mixture.class_posteriors`), which keeps the
cross-class magnitudes correct without tracking scale factors.

Transition matrices come from the bound engine's operator layer
(:meth:`LikelihoodEngine._operator_for`), so a reconstruction run right
after a fit is served from the LRU operator cache the fit already warmed
— and its hits/misses show up in ``cache_stats()`` like any other
evaluation's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.scaling import build_class_matrices

__all__ = ["AncestralReconstruction", "marginal_reconstruction"]


@dataclass
class AncestralReconstruction:
    """Per-internal-node marginal state posteriors.

    Attributes
    ----------
    node_indices:
        Tree node indices covered (internal nodes, root included).
    best_states:
        ``{node_index: (n_sites,) int array}`` — most probable codon
        state per site.
    best_probabilities:
        ``{node_index: (n_sites,) float array}`` — posterior of that
        state.
    code:
        Genetic code, for decoding states to codon strings.
    """

    node_indices: List[int]
    best_states: Dict[int, np.ndarray]
    best_probabilities: Dict[int, np.ndarray]
    code: object

    def codon_sequence(self, node_index: int) -> str:
        """Most probable ancestral codon sequence at one node."""
        sense = self.code.sense_codons
        return "".join(sense[s] for s in self.best_states[node_index])

    def mean_confidence(self, node_index: int) -> float:
        """Average posterior of the reconstructed states at one node."""
        return float(self.best_probabilities[node_index].mean())


def _rescale_columns(matrix: np.ndarray) -> None:
    """In-place per-column max normalisation (posteriors are ratios)."""
    col_max = matrix.max(axis=0)
    safe = np.where(col_max > 0, col_max, 1.0)
    matrix /= safe[None, :]


def marginal_reconstruction(
    bound,
    values: Dict[str, float],
    branch_lengths: Optional[Sequence[float]] = None,
) -> AncestralReconstruction:
    """Marginal ancestral reconstruction for a bound problem at ``values``.

    Parameters
    ----------
    bound:
        A :class:`repro.core.engine.BoundLikelihood` (any engine).
    values:
        Model parameter values (typically the MLEs).
    branch_lengths:
        Branch lengths (defaults to the bound problem's current vector).

    Returns
    -------
    AncestralReconstruction
        Posteriors expanded back to per-site resolution.
    """
    tree = bound.tree
    patterns = bound.patterns
    pi = bound.pi
    lengths = (
        np.asarray(branch_lengths, dtype=float)
        if branch_lengths is not None
        else bound.branch_lengths
    )
    model = bound.model
    engine = bound.engine
    # The validated class graph, not a raw class list: reconstruction
    # must mix exactly the classes (weights, labels, order) the fit used.
    graph = model.site_class_graph(values)
    classes = graph.nodes
    matrices = build_class_matrices(values["kappa"], classes, pi, engine.code)
    decomps = {omega: engine._decompose(matrix) for omega, matrix in matrices.items()}

    non_root = [n for n in tree.nodes if not n.is_root]
    pos_of = {n.index: k for k, n in enumerate(non_root)}
    n_nodes = len(tree.nodes)
    n_patterns = patterns.n_patterns
    n_states = pi.shape[0]
    leaf_clvs = bound._leaf_clvs  # shared read-only leaf indicators

    # Exact per-site class posteriors weight the per-class state
    # posteriors (see module docstring).
    class_lnl, proportions = bound.site_class_matrix(values, lengths)
    from repro.likelihood.mixture import class_posteriors

    class_post = class_posteriors(class_lnl, proportions)

    # Dense P(t) per (ω, t), served through the engine's LRU operator
    # cache (a fit immediately before this call leaves it warm).  The
    # local memo only avoids re-densifying the same operator per column.
    p_memo: Dict[tuple, np.ndarray] = {}

    def p_matrix(omega: float, t: float) -> np.ndarray:
        key = (omega, t)
        if key not in p_memo:
            op = engine._operator_for(decomps[omega], t)
            p_memo[key] = engine._operator_probability_matrix(op)
        return p_memo[key]

    internal_nodes = [n for n in tree.nodes if not n.is_leaf]
    joint = {n.index: np.zeros((n_states, n_patterns)) for n in internal_nodes}

    for class_idx, cls in enumerate(classes):
        if cls.proportion == 0.0:
            continue

        def branch_p(node) -> np.ndarray:
            omega = cls.omega_foreground if node.foreground else cls.omega_background
            return p_matrix(omega, float(lengths[pos_of[node.index]]))

        # Inside pass: L_v for every node (leaves are the indicators).
        inside: List[Optional[np.ndarray]] = [None] * n_nodes
        for i, clv in enumerate(leaf_clvs):
            inside[i] = clv
        # Cache each branch's propagated contribution (P_c @ L_c); the
        # outside pass reuses them for sibling products.
        propagated: Dict[int, np.ndarray] = {}
        for node in tree.postorder():
            if node.is_leaf:
                continue
            acc = np.ones((n_states, n_patterns))
            for child in node.children:
                contrib = branch_p(child) @ inside[child.index]
                propagated[child.index] = contrib
                acc *= contrib
            _rescale_columns(acc)
            inside[node.index] = acc

        # Outside pass: U_v, pre-order.
        outside: List[Optional[np.ndarray]] = [None] * n_nodes
        outside[tree.root.index] = np.ones((n_states, n_patterns))
        for node in tree.preorder():
            up = outside[node.index]
            for child in node.children:
                acc = up.copy()
                for sibling in node.children:
                    if sibling is not child:
                        acc *= propagated[sibling.index]
                down = branch_p(child).T @ acc
                _rescale_columns(down)
                outside[child.index] = down

        for node in internal_nodes:
            raw = pi[:, None] * inside[node.index] * outside[node.index]
            totals = raw.sum(axis=0)
            safe = np.where(totals > 0, totals, 1.0)
            # Posterior given this class, weighted by P(class | data).
            joint[node.index] += class_post[class_idx][None, :] * (raw / safe[None, :])

    best_states: Dict[int, np.ndarray] = {}
    best_probs: Dict[int, np.ndarray] = {}
    for node_index, matrix in joint.items():
        totals = matrix.sum(axis=0)
        safe = np.where(totals > 0, totals, 1.0)
        posterior = matrix / safe[None, :]
        states = posterior.argmax(axis=0)
        probs = posterior[states, np.arange(n_patterns)]
        best_states[node_index] = patterns.expand(states)
        best_probs[node_index] = patterns.expand(probs)

    return AncestralReconstruction(
        node_indices=sorted(joint),
        best_states=best_states,
        best_probabilities=best_probs,
        code=bound.engine.code,
    )
