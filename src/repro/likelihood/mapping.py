"""Stochastic substitution mapping via uniformization (``scan --map``).

The branch-site test reports *that* positive selection acted on the
foreground branch; stochastic mapping reports *how much substitution*
that conclusion rests on.  Following Nielsen (2002) and the
uniformization sampler of Irvahn & Minin (arXiv:1403.5040), we draw
substitution histories from the posterior ``P(history | data, MLEs)``
and summarise them as expected synonymous / non-synonymous counts per
branch per site, with normal-approximation confidence intervals from
the sample spread.

One sample proceeds in four conditioned stages, each exact:

1. **Site class** per alignment pattern, from the NEB posteriors
   ``P(class | data)`` (:func:`repro.likelihood.mixture.class_posteriors`).
2. **Node states**, jointly, top-down: the root from
   ``π · L_root``, then each child from ``P(t)[parent, ·] · L_child``
   — the inside vectors ``L`` make this the exact joint conditional,
   and leaves with ambiguity resolve themselves because their inside
   vector *is* the ambiguity indicator.
3. **Jump count** ``N`` on each branch, endpoint-conditioned:
   ``P(N = n | a, b, t) ∝ w_n(μt) · R^n[a, b]`` with the Poisson
   weights ``w_n`` and jump matrix ``R`` of the branch generator's
   :class:`~repro.core.uniformization.UniformizedOperator` (whose
   cached powers ``R^n`` are shared with recovery rung 4).
4. **Intermediate states** of the jump chain, left to right:
   ``P(s_k = x | s_{k-1}, b) ∝ R[s_{k-1}, x] · R^{N-k}[x, b]``.

Self-jumps of ``R`` are *virtual* (uniformization's bookkeeping) and
are discarded; real changes are classified synonymous vs
non-synonymous with the genetic code's pair table — single-nucleotide
by construction, since ``R`` inherits ``Q``'s sparsity.

Batched layout (DESIGN.md §14)
------------------------------

The per-class **inside CLVs** come from one level-order batched pass
(:meth:`~repro.core.engine.BoundLikelihood.class_states`): the same
stacked-operator machinery and class-graph sharing plan the evaluator
uses, instead of a private per-child Python re-prune.  The draws
themselves are array-wide: every stage pre-draws its uniform variates
in a **canonical order**, then resolves them with vectorised
categorical picks (columns are ``sample × pattern`` pairs), batched
``R^k`` gathers from the shared power stacks, and an intermediate-state
sampler that processes all columns of a branch with the same jump
count in one gather.  The serial reference (``method="serial"``,
``--map-serial``) consumes the *same* pre-drawn variates with the PR-9
loop structure — per-sample, per-node, per-column — so the two paths
are bit-identical by construction: every per-column float operation is
the same regardless of how columns are grouped.

Canonical uniform-variate order for seed ``s`` (both methods):

1. ``u_class``  — ``(n_samples, n_patterns)``
2. ``u_node``   — ``(1 + n_branches, n_samples·n_patterns)``; row 0 is
   the root, row ``1+k`` the ``k``-th child visit in preorder order
3. ``u_jump``   — ``(n_branches, n_samples·n_patterns)``, same row order
4. ``u_inter``  — one flat draw sized by the realised jump counts;
   column ``(k, j)``'s walk reads ``max(N−1, 0)`` consecutive variates
   at the exclusive-cumsum offset of the C-ordered count array

Averaging over ``n_samples`` histories gives Monte Carlo estimates of
``E[N_syn]``, ``E[N_nonsyn]`` per (branch, site); their sample
variances give the CIs next to the BEB table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codon.classify import classification_table
from repro.likelihood.mixture import class_posteriors

__all__ = ["SubstitutionMapping", "sample_substitution_mapping"]

#: Two-sided 95% normal quantile for the CI half-widths.
Z_95 = 1.959963984540054


@dataclass
class SubstitutionMapping:
    """Posterior expected substitution counts per branch per site.

    Attributes
    ----------
    branch_labels:
        One label per non-root node (the node the branch leads *to*),
        in the engine's branch-vector order.
    foreground:
        Per-branch foreground flags, same order.
    branch_lengths:
        The branch lengths the histories were sampled under.
    syn / nonsyn:
        ``(n_branches, n_sites)`` expected synonymous and
        non-synonymous substitution counts (posterior means over the
        sampled histories).
    n_samples:
        Histories averaged per site.
    syn_var / nonsyn_var:
        ``(n_branches, n_sites)`` sample variances (ddof=1) of the
        per-history counts; ``None`` when uncertainty was not tracked
        (hand-built instances) and all-zero when ``n_samples == 1``.
    syn_total_var / nonsyn_total_var:
        ``(n_branches,)`` sample variances of the per-history
        *branch-total* counts (site-weighted sums per draw) — computed
        from the per-draw totals, not by summing per-site variances,
        because pattern expansion correlates sites.
    fg_syn_site_var / fg_nonsyn_site_var:
        ``(n_sites,)`` sample variances of the per-history counts
        summed over the foreground branch(es).
    seconds:
        Sampler wall-clock (setup + draws), for the batch metrics.
    method:
        ``"batched"`` or ``"serial"`` — which draw path produced this.
    """

    branch_labels: List[str]
    foreground: List[bool]
    branch_lengths: np.ndarray
    syn: np.ndarray
    nonsyn: np.ndarray
    n_samples: int
    syn_var: Optional[np.ndarray] = None
    nonsyn_var: Optional[np.ndarray] = None
    syn_total_var: Optional[np.ndarray] = None
    nonsyn_total_var: Optional[np.ndarray] = None
    fg_syn_site_var: Optional[np.ndarray] = None
    fg_nonsyn_site_var: Optional[np.ndarray] = None
    seconds: float = 0.0
    method: str = "batched"

    @property
    def n_branches(self) -> int:
        return self.syn.shape[0]

    @property
    def n_sites(self) -> int:
        return self.syn.shape[1]

    def branch_totals(self) -> List[Dict[str, object]]:
        """Per-branch event table: totals over sites plus the N/S ratio."""
        rows = []
        for b, label in enumerate(self.branch_labels):
            s = float(self.syn[b].sum())
            n = float(self.nonsyn[b].sum())
            rows.append(
                {
                    "branch": label,
                    "foreground": bool(self.foreground[b]),
                    "length": float(self.branch_lengths[b]),
                    "syn": s,
                    "nonsyn": n,
                    # Event-count analogue of dN/dS; None when no
                    # synonymous events were sampled (ratio undefined).
                    "ratio": (n / s) if s > 0.0 else None,
                }
            )
        return rows

    def _ci_halfwidth(self, variances: np.ndarray) -> np.ndarray:
        """95% normal-approximation half-width of a mean-of-``n_samples``."""
        return Z_95 * np.sqrt(np.maximum(variances, 0.0) / self.n_samples)

    def to_payload(self) -> Dict[str, object]:
        """Compact journal payload (v7 ``mapping`` field, v8 additions).

        Per-branch totals always; the per-site table only for
        foreground branches (summed), which is what the report renders
        next to BEB — full per-branch-per-site matrices would bloat
        the journal quadratically.  Since v8 the payload additionally
        carries ``mapping_ci`` (normal-approximation 95% CI half-widths
        for the branch totals and the foreground site table),
        ``seconds`` and ``method`` — all additive, so v7 readers (and
        the pinned branch-row shape) are untouched.
        """
        fg = np.asarray(self.foreground, dtype=bool)
        fg_syn = self.syn[fg].sum(axis=0) if fg.any() else np.zeros(self.n_sites)
        fg_nonsyn = self.nonsyn[fg].sum(axis=0) if fg.any() else np.zeros(self.n_sites)
        payload: Dict[str, object] = {
            "n_samples": int(self.n_samples),
            "branches": self.branch_totals(),
            "foreground_sites": {
                "syn": [round(float(x), 6) for x in fg_syn],
                "nonsyn": [round(float(x), 6) for x in fg_nonsyn],
            },
            "seconds": round(float(self.seconds), 6),
            "method": self.method,
        }
        if self.syn_total_var is not None and self.nonsyn_total_var is not None:
            hw_syn = self._ci_halfwidth(self.syn_total_var)
            hw_nonsyn = self._ci_halfwidth(self.nonsyn_total_var)
            ci: Dict[str, object] = {
                "level": 0.95,
                "branches": [
                    {
                        "branch": label,
                        "syn": round(float(hw_syn[b]), 6),
                        "nonsyn": round(float(hw_nonsyn[b]), 6),
                    }
                    for b, label in enumerate(self.branch_labels)
                ],
            }
            if self.fg_syn_site_var is not None and self.fg_nonsyn_site_var is not None:
                ci["foreground_sites"] = {
                    "syn": [
                        round(float(x), 6)
                        for x in self._ci_halfwidth(self.fg_syn_site_var)
                    ],
                    "nonsyn": [
                        round(float(x), 6)
                        for x in self._ci_halfwidth(self.fg_nonsyn_site_var)
                    ],
                }
            payload["mapping_ci"] = ci
        return payload


# ----------------------------------------------------------------------
# Shared categorical primitive
# ----------------------------------------------------------------------
# Both draw paths resolve every categorical with the same arithmetic:
# cumulative sum along the category axis, scale the pre-drawn uniform by
# the total (1.0 fallback for all-zero columns), count how many partial
# sums it exceeds, clamp.  Per-column float operations are identical
# under any column grouping, which is the whole bit-identity argument.


def _pick_cols(weights: np.ndarray, u: np.ndarray) -> np.ndarray:
    """One categorical draw per column of a non-negative ``(S, m)`` array.

    Consumes ``weights`` in place (every call site builds it as a fresh
    product).  ``count(cum < thr)`` is computed as the first index where
    the monotone cumulative column reaches the threshold — identical
    indices (an all-below column shows up as a False last element and
    resolves to the historical clamp), but ``argmax`` on booleans
    short-circuits where the counting reduction always scanned all S.
    """
    cum = np.cumsum(weights, axis=0, out=weights)
    totals = cum[-1]
    safe = np.where(totals > 0.0, totals, 1.0)
    ge = cum >= (u * safe)[None, :]
    idx = ge.argmax(axis=0)
    idx[~ge[-1]] = weights.shape[0] - 1
    return idx


def _pick_rows(weights: np.ndarray, u: np.ndarray) -> np.ndarray:
    """One categorical draw per row of a non-negative ``(m, S)`` array.

    Same contract and threshold arithmetic as :func:`_pick_cols`
    (consumes ``weights``; first-reach index ≡ below-threshold count).
    """
    cum = np.cumsum(weights, axis=1, out=weights)
    totals = cum[:, -1]
    safe = np.where(totals > 0.0, totals, 1.0)
    ge = cum >= (u * safe)[:, None]
    idx = ge.argmax(axis=1)
    idx[~ge[:, -1]] = weights.shape[1] - 1
    return idx


def _pick_jumps(contrib: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Endpoint-conditioned jump counts from a ``(K+1, m)`` weight array.

    Identical to :func:`_pick_cols` except that an all-zero column
    (an endpoint pair the truncated series deems unreachable) resolves
    to zero jumps instead of the clamp index.
    """
    cum = np.cumsum(contrib, axis=0, out=contrib)
    totals = cum[-1]
    safe = np.where(totals > 0.0, totals, 1.0)
    ge = cum >= (u * safe)[None, :]
    jumps = ge.argmax(axis=0)
    jumps[totals <= 0.0] = 0
    return jumps


@dataclass
class _Plan:
    """Everything both draw paths share for one sampling problem."""

    classes: List
    class_post: np.ndarray
    inside: List[List[np.ndarray]]  # [class][node] -> (S, n_patterns)
    unis: Dict[float, object]
    p_matrix: object  # callable (omega, t) -> dense P
    visits: List[Tuple[int, int, int, float, bool]]  # (k, child, parent, t, fg)
    root_index: int
    pi: np.ndarray
    syn_mask: np.ndarray
    n_patterns: int
    n_samples: int
    jump_weights: Dict[Tuple[float, float], np.ndarray] = field(default_factory=dict)

    @property
    def m_total(self) -> int:
        return self.n_samples * self.n_patterns

    def omega_of(self, cls, fg: bool) -> float:
        return cls.omega_foreground if fg else cls.omega_background

    def weights_for(self, omega: float, t: float) -> np.ndarray:
        key = (omega, t)
        w = self.jump_weights.get(key)
        if w is None:
            w = self.unis[omega].jump_weights(t)
            self.jump_weights[key] = w
        return w


def _draw_uniforms(plan: _Plan, rng: np.random.Generator):
    """Stages 1–3's uniforms in the canonical order (module docstring).

    ``u_jump`` rows are pre-drawn for *every* branch — zero-length
    branches simply ignore theirs — so consumption never diverges
    between methods or across branch-length vectors of equal shape.
    """
    n_branches = len(plan.visits)
    u_class = rng.random((plan.n_samples, plan.n_patterns))
    u_node = rng.random((1 + n_branches, plan.m_total))
    u_jump = rng.random((n_branches, plan.m_total))
    return u_class, u_node, u_jump


def _inter_offsets(jumps_all: np.ndarray) -> Tuple[np.ndarray, int]:
    """Exclusive-cumsum offsets into ``u_inter`` for every (branch, column).

    The walk of column ``(k, j)`` consumes ``max(N_kj − 1, 0)``
    consecutive variates starting at ``offsets[k, j]`` — C-order over
    the ``(n_branches, m_total)`` count array, the canonical layout
    both methods index identically.
    """
    inter_counts = np.maximum(jumps_all - 1, 0).astype(np.int64)
    flat = inter_counts.ravel()
    offsets = np.concatenate(([0], np.cumsum(flat)[:-1])).reshape(jumps_all.shape)
    return offsets, int(flat.sum())


# ----------------------------------------------------------------------
# Serial reference (PR-9 loop structure over the canonical variates)
# ----------------------------------------------------------------------
def _sample_histories_serial(
    plan: _Plan, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample / per-node / per-column loops; the ``--map-serial`` gate.

    Returns per-history count tensors ``(n_branches, m_total)`` whose
    flat column ``j = sample · n_patterns + pattern``.
    """
    n_branches = len(plan.visits)
    n_patterns = plan.n_patterns
    m_total = plan.m_total
    u_class, u_node, u_jump = _draw_uniforms(plan, rng)

    cls_idx = np.empty((plan.n_samples, n_patterns), dtype=np.intp)
    for s in range(plan.n_samples):
        # _pick_cols consumes its weights; keep the plan's posterior intact.
        cls_idx[s] = _pick_cols(plan.class_post.copy(), u_class[s])

    node_states: Dict[int, np.ndarray] = {}
    jumps_all = np.zeros((n_branches, m_total), dtype=np.intp)
    a_all = np.empty((n_branches, m_total), dtype=np.intp)
    b_all = np.empty((n_branches, m_total), dtype=np.intp)
    cls_of_col = np.empty(m_total, dtype=np.intp)

    # Stages 2–3, per sample then per class (the PR-9 grouping).
    for s in range(plan.n_samples):
        base = s * n_patterns
        for ci, cls in enumerate(plan.classes):
            cols = np.flatnonzero(cls_idx[s] == ci)
            if cols.size == 0:
                continue
            j = base + cols
            cls_of_col[j] = ci
            inside = plan.inside[ci]
            root_w = plan.pi[:, None] * inside[plan.root_index][:, cols]
            node_states[plan.root_index] = _pick_cols(root_w, u_node[0, j])
            for k, child, parent, t, fg in plan.visits:
                parent_states = node_states[parent]
                omega = plan.omega_of(cls, fg)
                p = plan.p_matrix(omega, t)
                # Exact joint conditional: rows of P at the sampled
                # parent state, shaped (S, m), times L_child.
                w = p[parent_states, :].T * inside[child][:, cols]
                child_states = _pick_cols(w, u_node[1 + k, j])
                node_states[child] = child_states
                a_all[k, j] = parent_states
                b_all[k, j] = child_states
                uni = plan.unis[omega]
                if uni.mu * t == 0.0:
                    continue
                weights = plan.weights_for(omega, t)
                k_max = weights.shape[0] - 1
                uni.power(k_max)  # extend the shared power cache once
                contrib = np.empty((k_max + 1, cols.size))
                for n in range(k_max + 1):
                    contrib[n] = weights[n] * uni.power(n)[parent_states, child_states]
                jumps_all[k, j] = _pick_jumps(contrib, u_jump[k, j])
                uni.note_draws(cols.size)

    offsets, total_inter = _inter_offsets(jumps_all)
    u_inter = rng.random(total_inter)

    syn_c = np.zeros((n_branches, m_total))
    nonsyn_c = np.zeros((n_branches, m_total))
    syn_mask = plan.syn_mask
    # Stage 4, per column: the scalar jump-chain walk of PR 9.
    for k, child, parent, t, fg in plan.visits:
        jumps_k = jumps_all[k]
        for j in np.nonzero(jumps_k > 0)[0]:
            n_j = int(jumps_k[j])
            omega = plan.omega_of(plan.classes[cls_of_col[j]], fg)
            uni = plan.unis[omega]
            r = uni.r
            state = int(a_all[k, j])
            target = int(b_all[k, j])
            off = int(offsets[k, j])
            for step in range(1, n_j):
                w = r[state, :] * uni.power(n_j - step)[:, target]
                cw = np.cumsum(w)
                tot = cw[-1]
                safe = tot if tot > 0.0 else 1.0
                nxt = int((cw < u_inter[off + step - 1] * safe).sum())
                nxt = min(nxt, w.shape[0] - 1)
                if nxt != state:
                    if syn_mask[state, nxt]:
                        syn_c[k, j] += 1.0
                    else:
                        nonsyn_c[k, j] += 1.0
                state = nxt
            # The final jump lands on the conditioned endpoint by
            # construction; only a real change counts.
            if state != target:
                if syn_mask[state, target]:
                    syn_c[k, j] += 1.0
                else:
                    nonsyn_c[k, j] += 1.0
    return syn_c, nonsyn_c


# ----------------------------------------------------------------------
# Batched path (array-wide draws over all samples × patterns at once)
# ----------------------------------------------------------------------
def _sample_histories_batched(
    plan: _Plan, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised stages 1–4 over the same canonical variates.

    Same return contract as :func:`_sample_histories_serial`, bit for
    bit: the grouping differs (all samples at once; stage 4 grouped by
    jump count) but every column resolves the same uniforms with the
    same per-column arithmetic.
    """
    n_branches = len(plan.visits)
    n_patterns = plan.n_patterns
    m_total = plan.m_total
    n_classes = len(plan.classes)
    u_class, u_node, u_jump = _draw_uniforms(plan, rng)

    # Stage 1 — all samples at once: tile the per-pattern class weights
    # across the flat columns and resolve every u_class in one pick.
    pat_idx = np.tile(np.arange(n_patterns), plan.n_samples)
    cls_flat = _pick_cols(plan.class_post[:, pat_idx], u_class.ravel())

    # Per-class column groups, for the ω-keyed stages below.
    class_cols = [np.flatnonzero(cls_flat == ci) for ci in range(n_classes)]

    def inside_rows(node: int) -> np.ndarray:
        """``L_node[x, pattern_j]`` per flat column ``j``, shaped ``(m, S)``.

        One stacked gather across all classes at once: each column
        reads its *own* class's inside vector (stacking copies, so the
        values are bit-identical to the per-class arrays).
        """
        stacked = np.stack([plan.inside[ci][node] for ci in range(n_classes)])
        return stacked[cls_flat, :, pat_idx]

    _omega_cols_memo: Dict[bool, list] = {}

    def omega_cols(fg: bool):
        """Column groups keyed by this branch's ω (classes merged).

        Stages 3–4 condition only on the branch generator, not the
        class, so classes sharing an ω (model A's background ties)
        walk together — fewer, larger vector operations with per-column
        arithmetic unchanged.  The grouping depends only on the
        foreground flag, so it is computed once per flag value.
        """
        cached = _omega_cols_memo.get(fg)
        if cached is not None:
            return cached
        groups: Dict[float, List[int]] = {}
        for ci, cls in enumerate(plan.classes):
            groups.setdefault(plan.omega_of(cls, fg), []).append(ci)
        out = []
        for omega, cis in groups.items():
            cols = (
                class_cols[cis[0]]
                if len(cis) == 1
                else np.concatenate([class_cols[ci] for ci in cis])
            )
            if cols.size:
                out.append((omega, cols))
        _omega_cols_memo[fg] = out
        return out

    # Stage 2 — joint node states, top-down, ONE pick per visit: the
    # class-dependent operands (P rows, inside columns) are resolved by
    # stacked gathers so every flat column draws in the same call.
    node_states: Dict[int, np.ndarray] = {}
    w = plan.pi[None, :] * inside_rows(plan.root_index)
    node_states[plan.root_index] = _pick_rows(w, u_node[0])

    a_all = np.empty((n_branches, m_total), dtype=np.intp)
    b_all = np.empty((n_branches, m_total), dtype=np.intp)
    jumps_all = np.zeros((n_branches, m_total), dtype=np.intp)
    for k, child, parent, t, fg in plan.visits:
        parent_states = node_states[parent]
        p_stack = np.stack(
            [plan.p_matrix(plan.omega_of(cls, fg), t) for cls in plan.classes]
        )
        w = p_stack[cls_flat, parent_states, :] * inside_rows(child)
        child_states = _pick_rows(w, u_node[1 + k])
        node_states[child] = child_states
        a_all[k] = parent_states
        b_all[k] = child_states

        # Stage 3 — endpoint-conditioned jump counts: one pick per
        # visit.  Each ω group fills its own columns of a shared
        # contribution table (zero-padded past its truncation depth —
        # trailing zeros leave the per-column cumulative weights flat,
        # so the draw is unchanged) and a single categorical pick
        # resolves every site at once.
        groups = [
            (omega, cols)
            for omega, cols in omega_cols(fg)
            if plan.unis[omega].mu * t != 0.0
        ]
        if groups:
            series = {omega: plan.weights_for(omega, t) for omega, _ in groups}
            k_hi = max(w.shape[0] for w in series.values()) - 1
            all_cols = np.concatenate([cols for _, cols in groups])
            contrib = np.zeros((k_hi + 1, all_cols.size))
            pos = 0
            for omega, cols in groups:
                uni = plan.unis[omega]
                weights = series[omega]
                stack = uni.power_stack(weights.shape[0] - 1)
                contrib[: weights.shape[0], pos : pos + cols.size] = (
                    weights[:, None]
                    * stack[:, parent_states[cols], child_states[cols]]
                )
                uni.note_draws(cols.size)
                pos += cols.size
            jumps_all[k, all_cols] = _pick_jumps(contrib, u_jump[k, all_cols])

    offsets, total_inter = _inter_offsets(jumps_all)
    u_inter = rng.random(total_inter)

    # Stage 4 — intermediate states: ``R`` and its power stack depend
    # only on ω — never on the branch length, which stage 3 already
    # consumed — so every event-bearing column in the *whole tree* with
    # the same generator walks in one lockstep loop by step index (a
    # column with ``n_j`` jumps participates in steps ``1..n_j-1``).
    # Each column still reads its own ``u_inter`` slice via the global
    # offsets and lands in its own ``(branch, column)`` cell, so the
    # per-column arithmetic (``R[s,·]·R^{n_j-step}[·,b_j]``, cumsum,
    # threshold) matches the per-branch walk bit for bit.
    syn_c = np.zeros((n_branches, m_total))
    nonsyn_c = np.zeros((n_branches, m_total))
    syn_mask = plan.syn_mask
    by_omega: Dict[float, list] = {}
    for k, child, parent, t, fg in plan.visits:
        jumps_k = jumps_all[k]
        for omega, cols in omega_cols(fg):
            live = cols[jumps_k[cols] >= 1]
            if live.size:
                by_omega.setdefault(omega, []).append((k, live))
    for omega, parts in by_omega.items():
        uni = plan.unis[omega]
        r = uni.r
        br_vec = np.concatenate(
            [np.full(live.size, k, dtype=np.intp) for k, live in parts]
        )
        col_vec = np.concatenate([live for _, live in parts])
        n_vec = jumps_all[br_vec, col_vec]
        state_vec = a_all[br_vec, col_vec]
        target_vec = b_all[br_vec, col_vec]
        off_vec = offsets[br_vec, col_vec]
        n_max = int(n_vec.max())
        stack = uni.power_stack(n_max)
        for step in range(1, n_max):
            mask = n_vec > step
            sub_br = br_vec[mask]
            sub_col = col_vec[mask]
            sub_state = state_vec[mask]
            sub_target = target_vec[mask]
            w = r[sub_state, :] * stack[n_vec[mask] - step, :, sub_target]
            nxt = _pick_rows(w, u_inter[off_vec[mask] + step - 1])
            changed = nxt != sub_state
            if changed.any():
                is_syn = syn_mask[sub_state, nxt] & changed
                syn_c[sub_br, sub_col] += is_syn
                nonsyn_c[sub_br, sub_col] += changed & ~is_syn
            state_vec[mask] = nxt
        changed = state_vec != target_vec
        if changed.any():
            is_syn = syn_mask[state_vec, target_vec] & changed
            syn_c[br_vec, col_vec] += is_syn
            nonsyn_c[br_vec, col_vec] += changed & ~is_syn
    return syn_c, nonsyn_c


# ----------------------------------------------------------------------
def sample_substitution_mapping(
    bound,
    values: Dict[str, float],
    branch_lengths: Optional[Sequence[float]] = None,
    n_samples: int = 16,
    seed: int = 0,
    method: str = "batched",
) -> SubstitutionMapping:
    """Sample substitution histories for a bound problem at ``values``.

    Parameters
    ----------
    bound:
        A :class:`repro.core.engine.BoundLikelihood` (any engine).
    values:
        Model parameter values (typically the MLEs).
    branch_lengths:
        Defaults to the bound problem's current vector.
    n_samples:
        Histories per site; the returned counts are means over them.
    seed:
        Seed for the sampler's private generator (reproducible runs).
    method:
        ``"batched"`` (default) or ``"serial"``; bit-identical outputs
        for the same seed (see module docstring), the serial path being
        the PR-9-shaped reference the benchmark gate compares against.

    Notes
    -----
    Uniformized kernels are obtained through the engine's
    ``_uniformized_for`` memo, so a recovery rung 4 that already fired
    during the fit shares its cached powers of ``R`` with the sampler
    (and vice versa); the per-class inside CLVs come from one batched
    level-order pass (``BoundLikelihood.class_states``), sharing the
    transition cache and the class graph's subtree aliasing with the
    fit that produced ``values``.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if method not in ("batched", "serial"):
        raise ValueError(f"method must be 'batched' or 'serial', got {method!r}")
    start = time.perf_counter()
    tree = bound.tree
    patterns = bound.patterns
    pi = bound.pi
    lengths = (
        np.asarray(branch_lengths, dtype=float)
        if branch_lengths is not None
        else bound.branch_lengths
    )
    engine = bound.engine

    # Batched conditionals: one level-order pass fills every node's
    # inside CLV for every class (sharing plan included), plus the exact
    # class log-likelihood matrix the NEB posteriors need.
    class_lnl, graph, decomps, states = bound.class_states(values, lengths)
    classes = graph.nodes
    class_post = class_posteriors(class_lnl, graph.proportions)
    unis = {omega: engine._uniformized_for(decomp) for omega, decomp in decomps.items()}

    non_root = [n for n in tree.nodes if not n.is_root]
    pos_of = {n.index: k for k, n in enumerate(non_root)}
    n_patterns = patterns.n_patterns

    inside: List[List[np.ndarray]] = []
    for ci in range(len(classes)):
        state = states[ci]
        missing = state.missing_nodes()
        if missing:
            raise RuntimeError(
                f"class {ci} pruning state left nodes {missing} without CLVs"
            )
        inside.append(list(state.clvs))

    # Dense P(t) per (ω, t) via the LRU operator cache — fixed across
    # samples, computed once, token-aligned with the evaluation above.
    p_memo: Dict[tuple, np.ndarray] = {}

    def p_matrix(omega: float, t: float) -> np.ndarray:
        key = (omega, t)
        if key not in p_memo:
            op = engine._operator_for(decomps[omega], t)
            p_memo[key] = engine._operator_probability_matrix(op)
        return p_memo[key]

    # Preorder child visits: the canonical branch order of the variate
    # matrices (row 1+k of u_node, row k of u_jump).
    visits: List[Tuple[int, int, int, float, bool]] = []
    for node in tree.preorder():
        for child in node.children:
            visits.append(
                (
                    len(visits),
                    child.index,
                    node.index,
                    float(lengths[pos_of[child.index]]),
                    bool(child.foreground),
                )
            )

    plan = _Plan(
        classes=list(classes),
        class_post=class_post,
        inside=inside,
        unis=unis,
        p_matrix=p_matrix,
        visits=visits,
        root_index=tree.root.index,
        pi=pi,
        syn_mask=classification_table(engine.code).synonymous,
        n_patterns=n_patterns,
        n_samples=n_samples,
    )

    rng = np.random.default_rng(seed)
    sampler = (
        _sample_histories_batched if method == "batched" else _sample_histories_serial
    )
    syn_c, nonsyn_c = sampler(plan, rng)

    # Reorder visit rows into the engine's branch-vector order before
    # summarising (counts were accumulated per visit).
    n_branches = len(non_root)
    visit_to_pos = np.empty(n_branches, dtype=np.intp)
    for k, child, _, _, _ in visits:
        visit_to_pos[k] = pos_of[child]
    order = np.argsort(visit_to_pos)
    syn_c = syn_c[order].reshape(n_branches, n_samples, n_patterns)
    nonsyn_c = nonsyn_c[order].reshape(n_branches, n_samples, n_patterns)

    weights = np.asarray(patterns.weights, dtype=float)
    fg_flags = np.asarray([bool(n.foreground) for n in non_root], dtype=bool)

    def summarise(counts: np.ndarray):
        mean = counts.mean(axis=1)
        if n_samples > 1:
            site_var = counts.var(axis=1, ddof=1)
            totals = counts @ weights  # (n_branches, n_samples) per-draw totals
            total_var = totals.var(axis=1, ddof=1)
            fg_draws = (
                counts[fg_flags].sum(axis=0)
                if fg_flags.any()
                else np.zeros((n_samples, n_patterns))
            )
            fg_var = fg_draws.var(axis=0, ddof=1)
        else:
            site_var = np.zeros_like(mean)
            total_var = np.zeros(counts.shape[0])
            fg_var = np.zeros(n_patterns)
        return mean, site_var, total_var, fg_var

    syn_mean, syn_site_var, syn_total_var, fg_syn_var = summarise(syn_c)
    nonsyn_mean, nonsyn_site_var, nonsyn_total_var, fg_nonsyn_var = summarise(nonsyn_c)

    labels = [n.name if n.name else f"node#{n.index}" for n in non_root]
    return SubstitutionMapping(
        branch_labels=labels,
        foreground=[bool(f) for f in fg_flags],
        branch_lengths=np.asarray(
            [float(lengths[pos_of[n.index]]) for n in non_root]
        ),
        syn=patterns.expand(syn_mean, axis=1),
        nonsyn=patterns.expand(nonsyn_mean, axis=1),
        n_samples=n_samples,
        syn_var=patterns.expand(syn_site_var, axis=1),
        nonsyn_var=patterns.expand(nonsyn_site_var, axis=1),
        syn_total_var=syn_total_var,
        nonsyn_total_var=nonsyn_total_var,
        fg_syn_site_var=patterns.expand(fg_syn_var, axis=0),
        fg_nonsyn_site_var=patterns.expand(fg_nonsyn_var, axis=0),
        seconds=time.perf_counter() - start,
        method=method,
    )
