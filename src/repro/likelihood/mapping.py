"""Stochastic substitution mapping via uniformization (``scan --map``).

The branch-site test reports *that* positive selection acted on the
foreground branch; stochastic mapping reports *how much substitution*
that conclusion rests on.  Following Nielsen (2002) and the
uniformization sampler of Irvahn & Minin (arXiv:1403.5040), we draw
substitution histories from the posterior ``P(history | data, MLEs)``
and summarise them as expected synonymous / non-synonymous counts per
branch per site.

One sample proceeds in four conditioned stages, each exact:

1. **Site class** per alignment pattern, from the NEB posteriors
   ``P(class | data)`` (:func:`repro.likelihood.mixture.class_posteriors`).
2. **Node states**, jointly, top-down: the root from
   ``π · L_root``, then each child from ``P(t)[parent, ·] · L_child``
   — the inside vectors ``L`` make this the exact joint conditional,
   and leaves with ambiguity resolve themselves because their inside
   vector *is* the ambiguity indicator.
3. **Jump count** ``N`` on each branch, endpoint-conditioned:
   ``P(N = n | a, b, t) ∝ w_n(μt) · R^n[a, b]`` with the Poisson
   weights ``w_n`` and jump matrix ``R`` of the branch generator's
   :class:`~repro.core.uniformization.UniformizedOperator` (whose
   cached powers ``R^n`` are shared with recovery rung 4).
4. **Intermediate states** of the jump chain, left to right:
   ``P(s_k = x | s_{k-1}, b) ∝ R[s_{k-1}, x] · R^{N-k}[x, b]``.

Self-jumps of ``R`` are *virtual* (uniformization's bookkeeping) and
are discarded; real changes are classified synonymous vs
non-synonymous with the genetic code's pair table — single-nucleotide
by construction, since ``R`` inherits ``Q``'s sparsity.

Averaging over ``n_samples`` histories gives Rao-Blackwell-free Monte
Carlo estimates of ``E[N_syn]``, ``E[N_nonsyn]`` per (branch, site);
their ratio next to the BEB table localises the inferred selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codon.classify import classification_table
from repro.models.scaling import build_class_matrices

__all__ = ["SubstitutionMapping", "sample_substitution_mapping"]


@dataclass
class SubstitutionMapping:
    """Posterior expected substitution counts per branch per site.

    Attributes
    ----------
    branch_labels:
        One label per non-root node (the node the branch leads *to*),
        in the engine's branch-vector order.
    foreground:
        Per-branch foreground flags, same order.
    branch_lengths:
        The branch lengths the histories were sampled under.
    syn / nonsyn:
        ``(n_branches, n_sites)`` expected synonymous and
        non-synonymous substitution counts (posterior means over the
        sampled histories).
    n_samples:
        Histories averaged per site.
    """

    branch_labels: List[str]
    foreground: List[bool]
    branch_lengths: np.ndarray
    syn: np.ndarray
    nonsyn: np.ndarray
    n_samples: int

    @property
    def n_branches(self) -> int:
        return self.syn.shape[0]

    @property
    def n_sites(self) -> int:
        return self.syn.shape[1]

    def branch_totals(self) -> List[Dict[str, object]]:
        """Per-branch event table: totals over sites plus the N/S ratio."""
        rows = []
        for b, label in enumerate(self.branch_labels):
            s = float(self.syn[b].sum())
            n = float(self.nonsyn[b].sum())
            rows.append(
                {
                    "branch": label,
                    "foreground": bool(self.foreground[b]),
                    "length": float(self.branch_lengths[b]),
                    "syn": s,
                    "nonsyn": n,
                    # Event-count analogue of dN/dS; None when no
                    # synonymous events were sampled (ratio undefined).
                    "ratio": (n / s) if s > 0.0 else None,
                }
            )
        return rows

    def to_payload(self) -> Dict[str, object]:
        """Compact journal payload (v7 ``mapping`` field).

        Per-branch totals always; the per-site table only for
        foreground branches (summed), which is what the report renders
        next to BEB — full per-branch-per-site matrices would bloat
        the journal quadratically.
        """
        fg = np.asarray(self.foreground, dtype=bool)
        fg_syn = self.syn[fg].sum(axis=0) if fg.any() else np.zeros(self.n_sites)
        fg_nonsyn = self.nonsyn[fg].sum(axis=0) if fg.any() else np.zeros(self.n_sites)
        return {
            "n_samples": int(self.n_samples),
            "branches": self.branch_totals(),
            "foreground_sites": {
                "syn": [round(float(x), 6) for x in fg_syn],
                "nonsyn": [round(float(x), 6) for x in fg_nonsyn],
            },
        }


def _sample_columns(weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One categorical draw per column of a non-negative ``(S, m)`` array."""
    cum = np.cumsum(weights, axis=0)
    totals = cum[-1]
    safe = np.where(totals > 0.0, totals, 1.0)
    u = rng.random(weights.shape[1]) * safe
    idx = (cum < u[None, :]).sum(axis=0)
    return np.minimum(idx, weights.shape[0] - 1)


def _rescale_columns(matrix: np.ndarray) -> None:
    col_max = matrix.max(axis=0)
    safe = np.where(col_max > 0, col_max, 1.0)
    matrix /= safe[None, :]


def _sample_branch_events(
    uni,
    a: np.ndarray,
    b: np.ndarray,
    t: float,
    syn_mask: np.ndarray,
    rng: np.random.Generator,
) -> tuple:
    """Endpoint-conditioned (syn, nonsyn) counts for one branch.

    ``a``/``b`` are the sampled parent/child states per column; the
    jump count and intermediate states come from ``uni``'s cached
    powers (stages 3–4 of the module docstring).
    """
    m = a.shape[0]
    syn_c = np.zeros(m)
    nonsyn_c = np.zeros(m)
    if uni.mu * t == 0.0:
        return syn_c, nonsyn_c
    weights = uni.jump_weights(t)
    k_max = weights.shape[0] - 1
    uni.power(k_max)  # extend the shared power cache once
    contrib = np.empty((k_max + 1, m))
    for n in range(k_max + 1):
        contrib[n] = weights[n] * uni.power(n)[a, b]
    cum = np.cumsum(contrib, axis=0)
    totals = cum[-1]
    safe = np.where(totals > 0.0, totals, 1.0)
    u = rng.random(m) * safe
    jumps = (cum < u[None, :]).sum(axis=0)
    jumps = np.minimum(jumps, k_max)
    jumps[totals <= 0.0] = 0
    r = uni.r
    for j in np.nonzero(jumps > 0)[0]:
        n_j = int(jumps[j])
        state = int(a[j])
        target = int(b[j])
        for k in range(1, n_j):
            w = r[state, :] * uni.power(n_j - k)[:, target]
            cw = np.cumsum(w)
            if cw[-1] <= 0.0:
                break
            nxt = int(np.searchsorted(cw, rng.random() * cw[-1], side="right"))
            nxt = min(nxt, w.shape[0] - 1)
            if nxt != state:
                if syn_mask[state, nxt]:
                    syn_c[j] += 1.0
                else:
                    nonsyn_c[j] += 1.0
            state = nxt
        # The final jump lands on the conditioned endpoint by
        # construction; only a real change counts.
        if state != target:
            if syn_mask[state, target]:
                syn_c[j] += 1.0
            else:
                nonsyn_c[j] += 1.0
    return syn_c, nonsyn_c


def sample_substitution_mapping(
    bound,
    values: Dict[str, float],
    branch_lengths: Optional[Sequence[float]] = None,
    n_samples: int = 16,
    seed: int = 0,
) -> SubstitutionMapping:
    """Sample substitution histories for a bound problem at ``values``.

    Parameters
    ----------
    bound:
        A :class:`repro.core.engine.BoundLikelihood` (any engine).
    values:
        Model parameter values (typically the MLEs).
    branch_lengths:
        Defaults to the bound problem's current vector.
    n_samples:
        Histories per site; the returned counts are means over them.
    seed:
        Seed for the sampler's private generator (reproducible runs).

    Notes
    -----
    Uniformized kernels are obtained through the engine's
    ``_uniformized_for`` memo, so a recovery rung 4 that already fired
    during the fit shares its cached powers of ``R`` with the sampler
    (and vice versa).
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    tree = bound.tree
    patterns = bound.patterns
    pi = bound.pi
    lengths = (
        np.asarray(branch_lengths, dtype=float)
        if branch_lengths is not None
        else bound.branch_lengths
    )
    engine = bound.engine
    graph = bound.model.site_class_graph(values)
    classes = graph.nodes
    matrices = build_class_matrices(values["kappa"], classes, pi, engine.code)
    decomps = {omega: engine._decompose(matrix) for omega, matrix in matrices.items()}
    unis = {omega: engine._uniformized_for(decomp) for omega, decomp in decomps.items()}

    non_root = [n for n in tree.nodes if not n.is_root]
    pos_of = {n.index: k for k, n in enumerate(non_root)}
    n_nodes = len(tree.nodes)
    n_patterns = patterns.n_patterns
    n_states = pi.shape[0]
    leaf_clvs = bound._leaf_clvs

    class_lnl, proportions = bound.site_class_matrix(values, lengths)
    from repro.likelihood.mixture import class_posteriors

    class_post = class_posteriors(class_lnl, proportions)

    # Dense P(t) per (ω, t) via the LRU operator cache, and per-class
    # inside vectors — both fixed across samples, computed once.
    p_memo: Dict[tuple, np.ndarray] = {}

    def p_matrix(omega: float, t: float) -> np.ndarray:
        key = (omega, t)
        if key not in p_memo:
            op = engine._operator_for(decomps[omega], t)
            p_memo[key] = engine._operator_probability_matrix(op)
        return p_memo[key]

    def branch_omega(cls, node) -> float:
        return cls.omega_foreground if node.foreground else cls.omega_background

    inside_by_class: List[List[Optional[np.ndarray]]] = []
    for cls in classes:
        inside: List[Optional[np.ndarray]] = [None] * n_nodes
        for i, clv in enumerate(leaf_clvs):
            inside[i] = clv
        for node in tree.postorder():
            if node.is_leaf:
                continue
            acc = np.ones((n_states, n_patterns))
            for child in node.children:
                t = float(lengths[pos_of[child.index]])
                acc *= p_matrix(branch_omega(cls, child), t) @ inside[child.index]
            _rescale_columns(acc)
            inside[node.index] = acc
        inside_by_class.append(inside)

    syn_mask = classification_table(engine.code).synonymous
    rng = np.random.default_rng(seed)
    syn = np.zeros((len(non_root), n_patterns))
    nonsyn = np.zeros((len(non_root), n_patterns))
    all_cols = np.arange(n_patterns)
    class_cum = np.cumsum(class_post, axis=0)

    for _ in range(n_samples):
        u = rng.random(n_patterns)
        cls_idx = (class_cum < u[None, :]).sum(axis=0)
        cls_idx = np.minimum(cls_idx, len(classes) - 1)
        for ci, cls in enumerate(classes):
            cols = all_cols[cls_idx == ci]
            if cols.size == 0:
                continue
            inside = inside_by_class[ci]
            states: Dict[int, np.ndarray] = {
                tree.root.index: _sample_columns(
                    pi[:, None] * inside[tree.root.index][:, cols], rng
                )
            }
            for node in tree.preorder():
                parent_states = states[node.index]
                for child in node.children:
                    t = float(lengths[pos_of[child.index]])
                    omega = branch_omega(cls, child)
                    p = p_matrix(omega, t)
                    # Exact joint conditional: rows of P at the sampled
                    # parent state, shaped (S, m), times L_child.
                    w = p[parent_states, :].T * inside[child.index][:, cols]
                    child_states = _sample_columns(w, rng)
                    states[child.index] = child_states
                    s_add, n_add = _sample_branch_events(
                        unis[omega], parent_states, child_states, t, syn_mask, rng
                    )
                    syn[pos_of[child.index], cols] += s_add
                    nonsyn[pos_of[child.index], cols] += n_add

    syn /= n_samples
    nonsyn /= n_samples
    labels = [n.name if n.name else f"node#{n.index}" for n in non_root]
    return SubstitutionMapping(
        branch_labels=labels,
        foreground=[bool(n.foreground) for n in non_root],
        branch_lengths=np.asarray(
            [float(lengths[pos_of[n.index]]) for n in non_root]
        ),
        syn=patterns.expand(syn, axis=1),
        nonsyn=patterns.expand(nonsyn, axis=1),
        n_samples=n_samples,
    )
