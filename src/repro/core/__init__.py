"""The paper's primary contribution: optimized likelihood kernels.

* :mod:`repro.core.eigen` — the symmetrising transform (paper Eq. 2) and
  the per-ω spectral decomposition, computed with LAPACK's MRRR solver
  (``dsyevr``) exactly as §III-A step 2 prescribes.
* :mod:`repro.core.expm` — the three reconstruction paths for
  ``P(t) = exp(Qt)``: the baseline ``dgemm`` product (Eq. 9, CodeML), the
  ``dsyrk`` half-flops product (Eq. 10-11, SlimCodeML), and the symmetric
  branch-matrix form for CLV propagation (Eq. 12-13).
* :mod:`repro.core.flops` — analytic flop/memory-traffic accounting used
  to verify the 2n³ → n³ claim independently of wall-clock noise.
* :mod:`repro.core.engine` — full likelihood engines (Baseline / Slim /
  Slim-v2) that differ *only* in which kernels they call.
"""

from repro.core.eigen import SpectralDecomposition, decompose, symmetrize
from repro.core.expm import (
    symmetric_branch_matrix,
    transition_matrix_einsum,
    transition_matrix_gemm,
    transition_matrix_scipy,
    transition_matrix_syrk,
)
from repro.core.flops import FlopCounter, gemm_flops, gemv_flops, symm_flops, syrk_flops

# The engine module imports tree/alignment/model substrates, so it is
# re-exported lazily at the bottom to keep kernel-only imports light.
__all__ = [
    "BaselineEngine",
    "FlopCounter",
    "LikelihoodEngine",
    "SlimEngine",
    "SlimV2Engine",
    "SpectralDecomposition",
    "decompose",
    "gemm_flops",
    "gemv_flops",
    "make_engine",
    "symm_flops",
    "symmetric_branch_matrix",
    "symmetrize",
    "syrk_flops",
    "transition_matrix_einsum",
    "transition_matrix_gemm",
    "transition_matrix_scipy",
    "transition_matrix_syrk",
]


def __getattr__(name):  # noqa: D105 - lazy re-export of the engine layer
    if name in {"BaselineEngine", "LikelihoodEngine", "SlimEngine", "SlimV2Engine", "make_engine"}:
        from repro.core import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
