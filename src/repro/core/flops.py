"""Analytic floating-point and memory-traffic accounting.

The paper's central claim is arithmetic: reconstructing ``e^{At}`` as
``(X e^{Λt}) Xᵀ`` (``dgemm``) costs ≈2n³ flops while ``Y Yᵀ`` with
``Y = X e^{Λt/2}`` (``dsyrk``) costs ≈n³ (§II-C1, citing van de Geijn &
Quintana-Ortí).  This module encodes those cost models so tests and
benchmarks can verify the claimed ratio exactly, independent of
wall-clock noise, and so the engines can report how their work divides
between exponentials and CLV propagation.

Flop conventions (one fused multiply-add = 2 flops):

* ``gemm``  C(m×n) += A(m×k) B(k×n):          2·m·n·k
* ``syrk``  C(n×n) = A(n×k) Aᵀ (half stored):  k·n·(n+1)
* ``gemv``  y(m) = A(m×n) x:                   2·m·n
* ``symv``  y(n) = A(sym n×n) x:               2·n²  (but ~half the matrix reads)
* ``symm``  C(m×n) = A(sym m×m) B(m×n):        2·m²·n (half the A reads)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "FlopCounter",
    "blas_level",
    "gemm_flops",
    "gemv_flops",
    "symm_flops",
    "symv_flops",
    "syrk_flops",
    "eigh_flops",
    "gemm_matrix_reads",
    "symm_matrix_reads",
]


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops of a general matrix product C(m×n) = A(m×k)·B(k×n)."""
    return 2 * m * n * k


def syrk_flops(n: int, k: int) -> int:
    """Flops of a symmetric rank-k update C(n×n) = A(n×k)·Aᵀ (half stored)."""
    return k * n * (n + 1)


def gemv_flops(m: int, n: int) -> int:
    """Flops of a general matrix-vector product y(m) = A(m×n)·x."""
    return 2 * m * n


def symv_flops(n: int) -> int:
    """Flops of a symmetric matrix-vector product (same flops, half reads)."""
    return 2 * n * n


def symm_flops(m: int, n: int) -> int:
    """Flops of C(m×n) = A(sym m×m)·B(m×n)."""
    return 2 * m * m * n


def eigh_flops(n: int) -> int:
    """Rough cost of a dense symmetric eigendecomposition (≈ 9n³).

    Tridiagonalisation (≈4/3 n³) + MRRR eigenvalues/vectors + back
    transformation (≈2n³); the constant follows LAPACK working notes.
    Only the n³ scaling matters for our accounting.
    """
    return 9 * n * n * n


def gemm_matrix_reads(m: int, n: int) -> int:
    """Matrix elements touched when a general m×n operand is streamed once."""
    return m * n


def symm_matrix_reads(n: int) -> int:
    """Matrix elements touched for a symmetric operand (packed half)."""
    return n * (n + 1) // 2


#: Kernel substrings → BLAS level.  Matrix-matrix kernels (level 3) are
#: the ones the paper — and the batched engine — push work towards;
#: matrix-vector kernels (level 2) are what they displace.  ``symv`` and
#: ``gemv`` must be tested before ``symm``/``gemm`` since the names share
#: prefixes.  Anything unmatched (einsum reference paths, Padé fallback
#: scaling-and-squaring) counts as ``nonblas``.
_LEVEL_MARKERS = (
    ("symv", "blas2"),
    ("gemv", "blas2"),
    ("gemm", "blas3"),
    ("syrk", "blas3"),
    ("symm", "blas3"),
    ("eigh", "lapack"),
    ("syevr", "lapack"),
)


def blas_level(operation: str) -> str:
    """Classify a counter operation name into a BLAS level bucket.

    Returns one of ``"blas3"``, ``"blas2"``, ``"lapack"``, ``"nonblas"``.
    The classification is a pure function of the name so counters need
    no extra state and :meth:`FlopCounter.merge` stays a plain re-add.
    """
    for marker, level in _LEVEL_MARKERS:
        if marker in operation:
            return level
    return "nonblas"


@dataclass
class FlopCounter:
    """Mutable accumulator of analytic flops and matrix-element reads.

    Engines and kernels call :meth:`add`; the benchmark harness reads
    :attr:`total_flops` / :attr:`by_operation` to report the arithmetic
    story next to the wall-clock one.
    """

    by_operation: Dict[str, int] = field(default_factory=dict)
    matrix_reads: Dict[str, int] = field(default_factory=dict)
    #: Work *not* performed because a cached result was reused (the
    #: incremental CLV layer reports skipped ``dsymm``/``dgemv`` calls
    #: here).  Kept separate so :attr:`total_flops` stays an honest
    #: count of arithmetic actually executed.
    saved_by_operation: Dict[str, int] = field(default_factory=dict)
    saved_reads: Dict[str, int] = field(default_factory=dict)

    def add(self, operation: str, flops: int, reads: int = 0) -> None:
        self.by_operation[operation] = self.by_operation.get(operation, 0) + int(flops)
        if reads:
            self.matrix_reads[operation] = self.matrix_reads.get(operation, 0) + int(reads)

    def note_saved(self, operation: str, flops: int = 0, reads: int = 0) -> None:
        """Record work that a cache/reuse path avoided (never in totals)."""
        if flops:
            self.saved_by_operation[operation] = (
                self.saved_by_operation.get(operation, 0) + int(flops)
            )
        if reads:
            self.saved_reads[operation] = self.saved_reads.get(operation, 0) + int(reads)

    @property
    def total_flops(self) -> int:
        return sum(self.by_operation.values())

    @property
    def total_reads(self) -> int:
        return sum(self.matrix_reads.values())

    @property
    def total_saved_flops(self) -> int:
        return sum(self.saved_by_operation.values())

    @property
    def total_saved_reads(self) -> int:
        return sum(self.saved_reads.values())

    @property
    def by_level(self) -> Dict[str, int]:
        """Executed flops bucketed by BLAS level (blas3/blas2/lapack/nonblas)."""
        levels: Dict[str, int] = {}
        for op, fl in self.by_operation.items():
            level = blas_level(op)
            levels[level] = levels.get(level, 0) + fl
        return levels

    @property
    def blas3_fraction(self) -> float:
        """Fraction of executed flops spent in matrix-matrix (level-3) kernels.

        The paper's optimisation story in one number: per-site ``dgemv``
        loops push this down, bundled/batched ``dgemm``/``dsymm``/``dsyrk``
        push it towards 1.  Returns 0.0 on an empty counter.
        """
        total = self.total_flops
        if total == 0:
            return 0.0
        return self.by_level.get("blas3", 0) / total

    def reset(self) -> None:
        self.by_operation.clear()
        self.matrix_reads.clear()
        self.saved_by_operation.clear()
        self.saved_reads.clear()

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter's totals into this one (for parallel fits)."""
        for op, fl in other.by_operation.items():
            self.add(op, fl)
        for op, rd in other.matrix_reads.items():
            self.matrix_reads[op] = self.matrix_reads.get(op, 0) + rd
        for op, fl in other.saved_by_operation.items():
            self.note_saved(op, flops=fl)
        for op, rd in other.saved_reads.items():
            self.note_saved(op, reads=rd)

    def summary(self) -> str:
        rows = sorted(self.by_operation.items(), key=lambda kv: -kv[1])
        lines = [
            f"{op:<28s} {fl:>16,d} flops  [{blas_level(op)}]" for op, fl in rows
        ]
        lines.append(f"{'TOTAL':<28s} {self.total_flops:>16,d} flops")
        levels = self.by_level
        if levels:
            parts = ", ".join(
                f"{level}={levels[level]:,d}"
                for level in ("blas3", "blas2", "lapack", "nonblas")
                if level in levels
            )
            lines.append(f"{'BY LEVEL':<28s} {parts}")
            lines.append(f"{'BLAS-3 FRACTION':<28s} {self.blas3_fraction:>16.4f}")
        if self.saved_by_operation or self.saved_reads:
            lines.append("saved by reuse:")
            ops = sorted(
                set(self.saved_by_operation) | set(self.saved_reads),
                key=lambda op: -self.saved_by_operation.get(op, 0),
            )
            for op in ops:
                lines.append(
                    f"{op:<28s} {self.saved_by_operation.get(op, 0):>16,d} flops "
                    f"{self.saved_reads.get(op, 0):>14,d} reads"
                )
            lines.append(
                f"{'TOTAL SAVED':<28s} {self.total_saved_flops:>16,d} flops "
                f"{self.total_saved_reads:>14,d} reads"
            )
        return "\n".join(lines)
