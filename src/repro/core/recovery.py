"""Numerical self-healing: event taxonomy, typed errors, recovery configs.

The paper's claim (§II-C1) is that the symmetrised eigenpath is the
numerically *well-conditioned* route to ``P(t) = e^{Qt}``.  This module
is what the rest of the library uses to notice when that promise is
violated and to recover instead of failing — the way gcodeml (Moretti
et al., arXiv:1203.3092) restarts failed codeml runs, and in the spirit
of Woodhams et al. (arXiv:1709.05079), who show codon-model matrix
paths do go numerically bad in practice.

Three cooperating pieces:

* :class:`NumericalEvent` / :class:`NumericalEventRecorder` — every
  guard trigger and fallback is recorded as a structured event, so a
  genome scan can report *which* genes needed recovery and why.
* :class:`NumericalError` — a typed ``ValueError`` subclass carrying
  site-pattern/branch context.  Being a ``ValueError`` means the
  optimizer's existing barrier logic (``except ValueError → +inf``)
  keeps working unchanged; being *typed* means callers and tests can
  tell a diagnosed numerical fault from a plain validation error.
* :class:`RecoveryConfig` (engine-side guards + fallback ladder) and
  :class:`RecoveryPolicy` (optimizer-side restarts) — both are plain
  frozen dataclasses so they pickle into batch-worker payloads.

Zero-cost contract: recovery is **opt-in**.  With ``recovery=None``
(the default everywhere) no guard code runs and every engine's output
is bit-identical to the unguarded implementation.

Event taxonomy (``NumericalEvent.kind``)
----------------------------------------
``eigh_failure``          LAPACK eigensolver raised (per-rung).
``eigh_residual``         ``‖A − XΛXᵀ‖`` residual check failed (per-rung).
``eigh_fallback``         decomposition served by a lower rung of the
                          ladder (``detail`` names the rung: ``ev`` or
                          ``pade``).
``uniformization_fallback``  a branch operator whose Padé (or, in
                          cross-check mode, spectral) ``P(t)`` failed
                          its guard was served by the uniformized
                          kernel instead — rung 4
                          (:mod:`repro.core.uniformization`).
``uniformization_cross_check``  cross-check mode compared the failing
                          path's ``P(t)`` against the uniformized
                          result; ``detail``/``context`` attribute
                          which path diverged and by how much.
``ladder_exhausted``      every rung — spectral, Padé *and* the
                          uniformized kernel — failed for one branch
                          operator; the single structured event carries
                          the per-rung residuals/errors and the matching
                          :class:`NumericalError` is raised.
``pt_negative_clamped``   P(t) entries below zero but within tolerance
                          were clamped.
``pt_row_renormalized``   P(t) row sums drifted beyond tolerance and the
                          rows were renormalised.
``pt_row_drift``          symmetric-operator row sums drifted beyond
                          tolerance (recorded; renormalising would break
                          the symmetry the BLAS kernel relies on).
``pt_invalid``            P(t) was unrecoverable (non-finite / far from
                          stochastic) — raised as :class:`NumericalError`.
``clv_zero_column``       a pattern column went entirely zero during
                          pruning (underflow past rescue, or genuinely
                          impossible data under the current parameters).
``clv_nonfinite``         NaN/Inf appeared in a CLV during pruning.
``mixture_nonfinite``     NaN or +Inf in a per-class site log-likelihood.
``nonfinite_start``       the objective was non-finite at an optimizer
                          start point.
``optimizer_restart``     the optimizer was restarted from a perturbed
                          start point (``detail`` says why).
``boundary_parked``       a converged fit left parameters parked on
                          their transform walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

__all__ = [
    "NumericalEvent",
    "NumericalEventRecorder",
    "NumericalError",
    "RecoveryConfig",
    "RecoveryPolicy",
    "FitDiagnostics",
    "PruningGuard",
    "guard_transition_matrix",
    "guard_symmetric_operator",
]

#: JSON-representable context value.
ContextValue = Union[str, int, float, bool, None]


@dataclass(frozen=True)
class NumericalEvent:
    """One structured record of a guard trigger or recovery action.

    ``kind`` is drawn from the module-level taxonomy; ``where`` names
    the subsystem that fired (``eigen``, ``expm``, ``pruning``,
    ``mixture``, ``optimizer``); ``context`` carries the numerical
    scene — ω, t, node/pattern indices — as JSON-friendly scalars.
    """

    kind: str
    where: str
    detail: str = ""
    context: Mapping[str, ContextValue] = field(default_factory=dict)

    def describe(self) -> str:
        ctx = ", ".join(f"{k}={v}" for k, v in self.context.items())
        bits = [f"[{self.where}] {self.kind}"]
        if self.detail:
            bits.append(f": {self.detail}")
        if ctx:
            bits.append(f" ({ctx})")
        return "".join(bits)

    def to_dict(self) -> Dict[str, ContextValue]:
        payload: Dict = {"kind": self.kind, "where": self.where}
        if self.detail:
            payload["detail"] = self.detail
        if self.context:
            payload["context"] = dict(self.context)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "NumericalEvent":
        return cls(
            kind=str(payload["kind"]),
            where=str(payload.get("where", "")),
            detail=str(payload.get("detail", "")),
            context=dict(payload.get("context", {})),
        )


class NumericalEventRecorder:
    """Append-only sink for :class:`NumericalEvent` records.

    Engines own one of these when recovery is enabled; the optimizer and
    the batch layer read it back to build per-fit / per-gene diagnostics.
    """

    def __init__(self) -> None:
        self.events: List[NumericalEvent] = []

    def record(
        self, kind: str, where: str, detail: str = "", **context: ContextValue
    ) -> NumericalEvent:
        event = NumericalEvent(kind=kind, where=where, detail=detail, context=context)
        self.events.append(event)
        return event

    def counts(self) -> Dict[str, int]:
        """Event kind → occurrence count."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def since(self, mark: int) -> List[NumericalEvent]:
        """Events recorded after position ``mark`` (see :meth:`mark`)."""
        return list(self.events[mark:])

    def mark(self) -> int:
        """Current position, for later :meth:`since` slicing."""
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[NumericalEvent]:
        return iter(self.events)


class NumericalError(ValueError):
    """A *diagnosed* numerical failure with structured context.

    Subclasses :class:`ValueError` so the optimizer's existing
    ``except (ValueError, FloatingPointError) → +inf`` barrier treats a
    diagnosed fault exactly like the legacy undiagnosed one — but the
    context (site-pattern / branch / parameter scene) survives on the
    exception and, when a recorder is attached, in the event stream.
    """

    def __init__(
        self,
        message: str,
        *,
        where: str = "",
        context: Optional[Mapping[str, ContextValue]] = None,
    ) -> None:
        super().__init__(message)
        self.where = where
        self.context: Dict[str, ContextValue] = dict(context or {})

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context.items())
            return f"{base} ({ctx})"
        return base


@dataclass(frozen=True)
class RecoveryConfig:
    """Engine-side guard tolerances and fallback-ladder switches.

    Passing one of these to an engine (``make_engine(name,
    recovery=RecoveryConfig())``) turns on the eigensolver fallback
    ladder, the P(t) reconstruction guards and the CLV/mixture checks;
    ``recovery=None`` (default) runs the historical unguarded code.

    Tolerances are chosen so a *healthy* evaluation never trips a guard:
    double-precision eigendecomposition residuals and row-sum drift sit
    around 1e-14, orders below every threshold here — which is what
    keeps recovery-enabled runs bit-identical on clean data.
    """

    #: Relative residual ``‖A − XΛXᵀ‖_max / max(1, ‖A‖_max)`` above which
    #: a decomposition is rejected and the next rung tried.
    residual_tol: float = 1e-9
    #: P(t) rows whose sums deviate from 1 by more than this are
    #: renormalised (and the event recorded).
    row_sum_tol: float = 1e-8
    #: Row-sum deviation beyond this is unrecoverable: hard error.
    row_sum_error: float = 1e-3
    #: P(t) entries below ``-negative_tol`` are a hard error; entries in
    #: ``[-negative_tol, 0)`` are clamped to zero.
    negative_tol: float = 1e-8
    #: Rung 4: when a Padé-built branch ``P(t)`` fails its guard, degrade
    #: gracefully to the uniformized kernel instead of raising
    #: :class:`NumericalError`.  Only ever consulted *after* a guard
    #: failure, so the healthy path stays bit-identical either way.
    uniformization: bool = True
    #: Poisson-tail truncation bound for the uniformized series.
    uniformization_tol: float = 1e-12
    #: Opt-in: on a *spectral* guard failure too, validate the failing
    #: path against the uniformized ``P(t)``, record which path diverged
    #: (``uniformization_cross_check``), and serve the uniformized
    #: operator instead of raising.
    cross_check: bool = False
    #: Max-abs deviation from the uniformized ``P(t)`` above which a
    #: cross-checked path is attributed as "diverged".
    cross_check_tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.residual_tol <= 0 or self.row_sum_tol <= 0 or self.negative_tol <= 0:
            raise ValueError("recovery tolerances must be positive")
        if self.row_sum_error <= self.row_sum_tol:
            raise ValueError("row_sum_error must exceed row_sum_tol")
        if self.uniformization_tol <= 0 or self.cross_check_tol <= 0:
            raise ValueError("recovery tolerances must be positive")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Optimizer-side restart policy (seeded, deterministic).

    Used by :func:`repro.optimize.ml.fit_model`: on a non-finite
    objective at the start point, or a line search that collapses before
    taking a single step, the fit restarts from a perturbed start drawn
    from the fit's own seeded RNG (:mod:`repro.utils.rng`) — so recovery
    is reproducible from the same master seed, per the paper's
    fixed-seed fairness rule (§IV).
    """

    #: Restart budget across all triggers within one fit.
    max_restarts: int = 3
    #: Std-dev of the Gaussian perturbation, relative to ``|x| + 0.1``
    #: per unconstrained coordinate.
    perturb_scale: float = 0.25
    #: Restart when the very first line search fails to find a decrease
    #: (a collapse *after* progress is treated as convergence, as before).
    restart_on_line_search_collapse: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.perturb_scale <= 0:
            raise ValueError("perturb_scale must be positive")

    def perturb(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """A perturbed copy of unconstrained start vector ``x``."""
        x = np.asarray(x, dtype=float)
        sigma = self.perturb_scale * (np.abs(x) + 0.1)
        return x + rng.normal(0.0, 1.0, size=x.shape) * sigma


@dataclass
class FitDiagnostics:
    """Convergence diagnostics riding on a :class:`~repro.optimize.ml.FitResult`.

    Serialises to a flat JSON dict so it travels through gene-result
    journals and batch summaries unchanged.
    """

    #: Optimizer restarts performed (0 on the healthy path).
    restarts: int = 0
    #: Names of parameters parked on their transform walls at the optimum
    #: (e.g. ``"omega2"``, ``"branch[3]"``).
    boundary_flags: List[str] = field(default_factory=list)
    #: Numerical events recorded during this fit (engine + optimizer).
    events: List[NumericalEvent] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when any recovery machinery actually fired."""
        return self.restarts > 0 or bool(self.events)

    def event_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def describe(self) -> str:
        bits = []
        if self.restarts:
            bits.append(f"{self.restarts} restart{'s' if self.restarts != 1 else ''}")
        if self.boundary_flags:
            bits.append("at bounds: " + ",".join(self.boundary_flags))
        counts = self.event_counts()
        if counts:
            bits.append(
                "events: " + ", ".join(f"{k}x{v}" for k, v in sorted(counts.items()))
            )
        return "; ".join(bits) if bits else "clean"

    def to_dict(self) -> Dict:
        return {
            "restarts": self.restarts,
            "boundary_flags": list(self.boundary_flags),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Optional[Mapping]) -> "FitDiagnostics":
        if not payload:
            return cls()
        return cls(
            restarts=int(payload.get("restarts", 0)),
            boundary_flags=list(payload.get("boundary_flags", [])),
            events=[NumericalEvent.from_dict(e) for e in payload.get("events", [])],
        )


@dataclass
class PruningGuard:
    """CLV sanity checks threaded into :func:`repro.likelihood.pruning.prune_site_class`.

    Carries the recorder plus whatever identifying context the engine
    knows (site-class label, ω), so a diagnosed fault names the exact
    scene: *which class, which node, which patterns*.
    """

    recorder: Optional[NumericalEventRecorder] = None
    context: Dict[str, ContextValue] = field(default_factory=dict)

    def fail(self, kind: str, message: str, **context: ContextValue) -> "NumericalError":
        """Record ``kind`` and build the matching typed error (not raised here)."""
        merged = {**self.context, **context}
        if self.recorder is not None:
            self.recorder.record(kind, "pruning", message, **merged)
        return NumericalError(message, where="pruning", context=merged)


# ----------------------------------------------------------------------
# Transition-operator guards
# ----------------------------------------------------------------------
def _summarize_indices(indices: np.ndarray, limit: int = 8) -> str:
    idx = [int(i) for i in np.atleast_1d(indices)[:limit]]
    more = np.atleast_1d(indices).shape[0] - len(idx)
    return str(idx) + (f" (+{more} more)" if more > 0 else "")


def guard_transition_matrix(
    p: np.ndarray,
    config: RecoveryConfig,
    recorder: Optional[NumericalEventRecorder],
    *,
    t: float,
    where: str = "expm",
    **context: ContextValue,
) -> np.ndarray:
    """Validate/repair a reconstructed ``P(t)`` (stochastic matrix).

    In order: non-finite entries are a hard error; entries below
    ``-negative_tol`` are a hard error and tiny negatives are clamped;
    row sums within ``row_sum_tol`` of 1 are left untouched (bit-identity
    on the healthy path), drift up to ``row_sum_error`` is renormalised
    with an event, and anything beyond is a hard error.  May modify
    ``p`` in place; returns it.
    """
    ctx: Dict[str, ContextValue] = {"t": float(t), **context}
    if not np.all(np.isfinite(p)):
        bad = np.argwhere(~np.isfinite(p))
        if recorder is not None:
            recorder.record("pt_invalid", where, "non-finite entries in P(t)", **ctx)
        raise NumericalError(
            f"P(t) has {bad.shape[0]} non-finite entries "
            f"(first at {tuple(int(v) for v in bad[0])})",
            where=where,
            context=ctx,
        )
    min_entry = float(p.min())
    if min_entry < 0.0:
        if min_entry < -config.negative_tol:
            if recorder is not None:
                recorder.record(
                    "pt_invalid", where,
                    f"P(t) entry {min_entry:.3e} below -{config.negative_tol:.0e}", **ctx
                )
            raise NumericalError(
                f"P(t) has an entry {min_entry:.3e} far below zero",
                where=where,
                context=ctx,
            )
        if recorder is not None:
            recorder.record(
                "pt_negative_clamped", where,
                f"min entry {min_entry:.3e} clamped to 0", **ctx
            )
        np.maximum(p, 0.0, out=p)
    row_sums = p.sum(axis=1)
    drift = float(np.max(np.abs(row_sums - 1.0)))
    if drift > config.row_sum_tol:
        if drift > config.row_sum_error:
            rows = np.argwhere(np.abs(row_sums - 1.0) > config.row_sum_error).ravel()
            if recorder is not None:
                recorder.record(
                    "pt_invalid", where,
                    f"row sums off by {drift:.3e} in rows {_summarize_indices(rows)}",
                    **ctx,
                )
            raise NumericalError(
                f"P(t) row sums deviate from 1 by {drift:.3e} "
                f"(rows {_summarize_indices(rows)}) — beyond repair tolerance",
                where=where,
                context=ctx,
            )
        p /= row_sums[:, None]
        if recorder is not None:
            recorder.record(
                "pt_row_renormalized", where,
                f"row-sum drift {drift:.3e} renormalised", **ctx
            )
    return p


def guard_symmetric_operator(
    m: np.ndarray,
    pi: np.ndarray,
    config: RecoveryConfig,
    recorder: Optional[NumericalEventRecorder],
    *,
    t: float,
    where: str = "expm",
    **context: ContextValue,
) -> np.ndarray:
    """Validate a symmetric branch operator ``M`` with ``P(t)w = M(Πw)``.

    The stochasticity condition translates to ``M π = 1``.  Unlike the
    plain P(t) guard this never renormalises: scaling rows of ``M``
    would break the exact symmetry the ``dsymv``/``dsymm`` kernels rely
    on, so drift beyond ``row_sum_tol`` is recorded (``pt_row_drift``)
    and drift beyond ``row_sum_error`` is a hard error.
    """
    ctx: Dict[str, ContextValue] = {"t": float(t), **context}
    if not np.all(np.isfinite(m)):
        if recorder is not None:
            recorder.record("pt_invalid", where, "non-finite entries in M", **ctx)
        raise NumericalError(
            "symmetric branch operator has non-finite entries", where=where, context=ctx
        )
    row_sums = m @ pi
    drift = float(np.max(np.abs(row_sums - 1.0)))
    if drift > config.row_sum_tol:
        if drift > config.row_sum_error:
            if recorder is not None:
                recorder.record(
                    "pt_invalid", where, f"M·π off by {drift:.3e}", **ctx
                )
            raise NumericalError(
                f"symmetric branch operator drifts from stochasticity by {drift:.3e}",
                where=where,
                context=ctx,
            )
        if recorder is not None:
            recorder.record(
                "pt_row_drift", where,
                f"M·π drift {drift:.3e} (within repair threshold; left symmetric)",
                **ctx,
            )
    return m
