"""Symmetrisation and spectral decomposition of the codon rate matrix.

Paper §II-C1 / §III-A steps 1–2.  Because the model is time-reversible,
``Q = SΠ`` with ``S`` symmetric, so

    A := Π^{1/2} S Π^{1/2}        (Eq. 2)

is symmetric and similar to ``Q`` (``A = Π^{1/2} Q Π^{-1/2}``).  Its
eigenproblem is always well-conditioned (Moler & Van Loan) and solved
with LAPACK's ``dsyevr`` — multiple relatively robust representations —
which is exactly what ``scipy.linalg.eigh(driver="evr")`` calls.

One decomposition per distinct ω value serves *every* branch of the tree
(only the ``e^{Λt}`` rescaling depends on the branch length), which is
why the engines cache :class:`SpectralDecomposition` objects keyed by the
rate-matrix parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Optional, Union

import numpy as np
import scipy.linalg

from repro.codon.matrix import CodonRateMatrix
from repro.core.flops import FlopCounter, eigh_flops
from repro.core.recovery import NumericalEventRecorder, RecoveryConfig
from repro.utils.numerics import validate_probability_vector, validate_square

__all__ = [
    "SpectralDecomposition",
    "PadeFallback",
    "symmetrize",
    "decompose",
    "decompose_guarded",
    "DecompositionCache",
]


def symmetrize(rate_matrix: CodonRateMatrix) -> np.ndarray:
    """Return ``A = Π^{1/2} S Π^{1/2}`` (Eq. 2) for a built rate matrix.

    The result is numerically symmetrised (averaged with its transpose)
    so the symmetric eigensolver sees an exactly symmetric input.
    """
    pi = rate_matrix.pi
    sqrt_pi = np.sqrt(pi)
    a = (sqrt_pi[:, None] * rate_matrix.s) * sqrt_pi[None, :]
    return 0.5 * (a + a.T)


#: Process-wide monotone sequence backing ``SpectralDecomposition.token``.
_TOKENS = count()


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigendecomposition ``A = X Λ Xᵀ`` plus the Π^{±1/2} scalings.

    Attributes
    ----------
    eigenvalues:
        Real eigenvalues ``λ_1..λ_n`` of ``A`` (all ≤ 0 apart from the
        zero eigenvalue corresponding to the stationary distribution).
    eigenvectors:
        Orthonormal eigenvector matrix ``X`` stored Fortran-ordered so
        the BLAS kernels consume it without copies (paper §V-C storage
        rule of thumb).
    pi, sqrt_pi, inv_sqrt_pi:
        The stationary distribution and its elementwise square roots.
    token:
        Process-unique monotone id.  Unlike ``id()`` it is never reused
        after garbage collection, so downstream caches (the engines'
        transition-matrix cache) can key on it without risking a stale
        hit from a recycled address.
    rung:
        Which ladder rung produced this decomposition — the eigh driver
        name (``"evr"``/``"ev"``); feeds the engines' per-rung usage
        counters (``cache_stats()['rung_*']``).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    pi: np.ndarray
    sqrt_pi: np.ndarray
    inv_sqrt_pi: np.ndarray
    token: int = field(default_factory=lambda: next(_TOKENS))
    rung: str = "evr"

    @property
    def n_states(self) -> int:
        return self.eigenvalues.shape[0]

    def reconstruct_a(self) -> np.ndarray:
        """Rebuild ``A`` from the factors (used by round-trip tests)."""
        x = self.eigenvectors
        return (x * self.eigenvalues[None, :]) @ x.T

    def reconstruct_q(self) -> np.ndarray:
        """Rebuild ``Q = Π^{-1/2} A Π^{1/2}`` from the factors."""
        a = self.reconstruct_a()
        return (self.inv_sqrt_pi[:, None] * a) * self.sqrt_pi[None, :]


def decompose(
    rate_matrix: CodonRateMatrix,
    driver: str = "evr",
    counter: Optional[FlopCounter] = None,
) -> SpectralDecomposition:
    """Spectrally decompose a codon rate matrix via its symmetric form.

    Parameters
    ----------
    rate_matrix:
        Output of :func:`repro.codon.matrix.build_rate_matrix`.
    driver:
        LAPACK driver for :func:`scipy.linalg.eigh`; ``"evr"`` (dsyevr /
        MRRR) is the paper's choice, ``"ev"`` (QR) is also accepted.
    counter:
        Optional flop accounting sink.
    """
    a = symmetrize(rate_matrix)
    validate_square(a, name="A")
    eigenvalues, eigenvectors = scipy.linalg.eigh(a, driver=driver)
    if counter is not None:
        counter.add("eigh(dsyevr)" if driver == "evr" else f"eigh({driver})", eigh_flops(a.shape[0]))
    pi = validate_probability_vector(rate_matrix.pi, name="pi")
    sqrt_pi = np.sqrt(pi)
    return SpectralDecomposition(
        eigenvalues=np.ascontiguousarray(eigenvalues),
        eigenvectors=np.asfortranarray(eigenvectors),
        pi=pi,
        sqrt_pi=sqrt_pi,
        inv_sqrt_pi=1.0 / sqrt_pi,
        rung=driver,
    )


@dataclass(frozen=True)
class PadeFallback:
    """Last rung of the fallback ladder: no usable eigendecomposition.

    When every eigensolver rung fails (LAPACK error or residual check),
    the engines fall back to building each branch's ``P(t)`` directly
    with :func:`scipy.linalg.expm` (Padé + scaling-and-squaring) on the
    stored generator ``Q`` — slower (one O(n³) expm per distinct branch
    length instead of one eigendecomposition per ω) but algorithmically
    independent of the spectral path that just failed.

    Quacks like :class:`SpectralDecomposition` where the caches care:
    it carries ``pi`` and a process-unique ``token``.  ``ladder``
    records why each eigensolver rung above was rejected — ``(driver,
    reason)`` pairs — so a later ``ladder_exhausted`` event (rung 4
    failing too) can report the *whole* failure history rather than
    the last raw exception.
    """

    q: np.ndarray
    pi: np.ndarray
    token: int = field(default_factory=lambda: next(_TOKENS))
    #: Why each eigh rung was rejected: tuple of (driver, reason) pairs.
    ladder: tuple = ()

    #: Ladder-rung identity (see ``SpectralDecomposition.rung``).
    rung = "pade"

    @property
    def n_states(self) -> int:
        return self.q.shape[0]


#: What the guarded path can hand to an engine.
AnyDecomposition = Union[SpectralDecomposition, PadeFallback]


def _residual(a: np.ndarray, eigenvalues: np.ndarray, eigenvectors: np.ndarray) -> float:
    """Relative reconstruction residual ``‖A − XΛXᵀ‖_max / max(1, ‖A‖_max)``."""
    recon = (eigenvectors * eigenvalues[None, :]) @ eigenvectors.T
    return float(np.max(np.abs(a - recon))) / max(1.0, float(np.max(np.abs(a))))


def decompose_guarded(
    rate_matrix: CodonRateMatrix,
    driver: str = "evr",
    counter: Optional[FlopCounter] = None,
    config: Optional[RecoveryConfig] = None,
    recorder: Optional[NumericalEventRecorder] = None,
) -> AnyDecomposition:
    """:func:`decompose` with the §II-C1 promise *checked* and a fallback ladder.

    Rungs, in order:

    1. ``eigh(driver=driver)`` — the engine's configured solver
       (``dsyevr``/MRRR for the slim engines);
    2. ``eigh(driver="ev")`` — the classic QR solver, skipped when it
       *is* the configured driver;
    3. :class:`PadeFallback` — per-branch ``scipy.linalg.expm``;
    4. (operator-level, when ``config.uniformization``) the expm-free
       uniformized kernel (:mod:`repro.core.uniformization`) — engaged
       by the engines when a Padé-built ``P(t)`` fails its guard, so a
       Padé residual failure degrades gracefully instead of raising
       :class:`~repro.core.recovery.NumericalError`.

    A rung is rejected when LAPACK raises or when the reconstruction
    residual ``‖A − XΛXᵀ‖`` exceeds ``config.residual_tol`` (relative);
    every rejection and every fallback is recorded on ``recorder``, and
    the returned :class:`PadeFallback` carries the per-rung rejection
    reasons on ``ladder`` for a potential ``ladder_exhausted`` report.
    """
    config = config if config is not None else RecoveryConfig()
    a = symmetrize(rate_matrix)
    validate_square(a, name="A")
    pi = validate_probability_vector(rate_matrix.pi, name="pi")
    sqrt_pi = np.sqrt(pi)

    ladder = [driver] + (["ev"] if driver != "ev" else [])
    ctx = {"kappa": float(rate_matrix.kappa), "omega": float(rate_matrix.omega)}
    rejections = []
    for rung, drv in enumerate(ladder):
        try:
            eigenvalues, eigenvectors = scipy.linalg.eigh(a, driver=drv)
        except (np.linalg.LinAlgError, scipy.linalg.LinAlgError, ValueError) as exc:
            rejections.append((drv, f"raised {type(exc).__name__}: {exc}"))
            if recorder is not None:
                recorder.record(
                    "eigh_failure", "eigen", f"eigh(driver={drv!r}) raised: {exc}",
                    driver=drv, **ctx,
                )
            continue
        residual = _residual(a, eigenvalues, eigenvectors)
        if not np.isfinite(residual) or residual > config.residual_tol:
            rejections.append((drv, f"residual {residual:.3e}"))
            if recorder is not None:
                recorder.record(
                    "eigh_residual", "eigen",
                    f"eigh(driver={drv!r}) residual {residual:.3e} "
                    f"> {config.residual_tol:.0e}",
                    driver=drv, residual=residual, **ctx,
                )
            continue
        if counter is not None:
            counter.add(
                "eigh(dsyevr)" if drv == "evr" else f"eigh({drv})",
                eigh_flops(a.shape[0]),
            )
        if rung > 0 and recorder is not None:
            recorder.record(
                "eigh_fallback", "eigen", drv, driver=drv, rung=rung, **ctx
            )
        return SpectralDecomposition(
            eigenvalues=np.ascontiguousarray(eigenvalues),
            eigenvectors=np.asfortranarray(eigenvectors),
            pi=pi,
            sqrt_pi=sqrt_pi,
            inv_sqrt_pi=1.0 / sqrt_pi,
            rung=drv,
        )
    if recorder is not None:
        recorder.record(
            "eigh_fallback", "eigen", "pade",
            rung=len(ladder), **ctx,
        )
    return PadeFallback(
        q=np.array(rate_matrix.q, dtype=float, copy=True),
        pi=pi,
        ladder=tuple(rejections),
    )


class DecompositionCache:
    """LRU cache of spectral decompositions keyed by model parameters.

    A branch-site likelihood evaluation needs decompositions for at most
    three distinct ω values (ω0, ω1 = 1, ω2) regardless of tree size;
    within one evaluation — and across evaluations that leave (κ, ω)
    untouched, e.g. the branch-length sweeps of a finite-difference
    gradient — the cache turns repeat decompositions into dictionary
    lookups.  Keys quantise parameters to 15 significant digits so the
    cache is insensitive to benign float formatting round-trips.

    ``decomposer`` overrides the decomposition call itself — the seam
    through which the engines route :func:`decompose_guarded` so the
    fallback ladder's product (including a :class:`PadeFallback`) is
    cached exactly like a healthy decomposition.
    """

    def __init__(
        self,
        maxsize: int = 16,
        driver: str = "evr",
        decomposer: Optional[
            Callable[[CodonRateMatrix, Optional[FlopCounter]], "AnyDecomposition"]
        ] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        self._driver = driver
        self._decomposer = decomposer
        self._store: dict[tuple, AnyDecomposition] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(rate_matrix: CodonRateMatrix) -> tuple:
        return (
            round(float(rate_matrix.kappa), 15),
            round(float(rate_matrix.omega), 15),
            round(float(rate_matrix.scale), 15),
            hash(rate_matrix.pi.tobytes()),
        )

    def get(
        self,
        rate_matrix: CodonRateMatrix,
        counter: Optional[FlopCounter] = None,
    ) -> "AnyDecomposition":
        key = self._key(rate_matrix)
        found = self._store.pop(key, None)
        if found is not None:
            self.hits += 1
            self._store[key] = found  # refresh LRU position
            return found
        self.misses += 1
        if self._decomposer is not None:
            decomp = self._decomposer(rate_matrix, counter)
        else:
            decomp = decompose(rate_matrix, driver=self._driver, counter=counter)
        self._store[key] = decomp
        while len(self._store) > self._maxsize:
            self._store.pop(next(iter(self._store)))
        return decomp

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)
