"""Symmetrisation and spectral decomposition of the codon rate matrix.

Paper §II-C1 / §III-A steps 1–2.  Because the model is time-reversible,
``Q = SΠ`` with ``S`` symmetric, so

    A := Π^{1/2} S Π^{1/2}        (Eq. 2)

is symmetric and similar to ``Q`` (``A = Π^{1/2} Q Π^{-1/2}``).  Its
eigenproblem is always well-conditioned (Moler & Van Loan) and solved
with LAPACK's ``dsyevr`` — multiple relatively robust representations —
which is exactly what ``scipy.linalg.eigh(driver="evr")`` calls.

One decomposition per distinct ω value serves *every* branch of the tree
(only the ``e^{Λt}`` rescaling depends on the branch length), which is
why the engines cache :class:`SpectralDecomposition` objects keyed by the
rate-matrix parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

import numpy as np
import scipy.linalg

from repro.codon.matrix import CodonRateMatrix
from repro.core.flops import FlopCounter, eigh_flops
from repro.utils.numerics import validate_probability_vector, validate_square

__all__ = ["SpectralDecomposition", "symmetrize", "decompose", "DecompositionCache"]


def symmetrize(rate_matrix: CodonRateMatrix) -> np.ndarray:
    """Return ``A = Π^{1/2} S Π^{1/2}`` (Eq. 2) for a built rate matrix.

    The result is numerically symmetrised (averaged with its transpose)
    so the symmetric eigensolver sees an exactly symmetric input.
    """
    pi = rate_matrix.pi
    sqrt_pi = np.sqrt(pi)
    a = (sqrt_pi[:, None] * rate_matrix.s) * sqrt_pi[None, :]
    return 0.5 * (a + a.T)


#: Process-wide monotone sequence backing ``SpectralDecomposition.token``.
_TOKENS = count()


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigendecomposition ``A = X Λ Xᵀ`` plus the Π^{±1/2} scalings.

    Attributes
    ----------
    eigenvalues:
        Real eigenvalues ``λ_1..λ_n`` of ``A`` (all ≤ 0 apart from the
        zero eigenvalue corresponding to the stationary distribution).
    eigenvectors:
        Orthonormal eigenvector matrix ``X`` stored Fortran-ordered so
        the BLAS kernels consume it without copies (paper §V-C storage
        rule of thumb).
    pi, sqrt_pi, inv_sqrt_pi:
        The stationary distribution and its elementwise square roots.
    token:
        Process-unique monotone id.  Unlike ``id()`` it is never reused
        after garbage collection, so downstream caches (the engines'
        transition-matrix cache) can key on it without risking a stale
        hit from a recycled address.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    pi: np.ndarray
    sqrt_pi: np.ndarray
    inv_sqrt_pi: np.ndarray
    token: int = field(default_factory=lambda: next(_TOKENS))

    @property
    def n_states(self) -> int:
        return self.eigenvalues.shape[0]

    def reconstruct_a(self) -> np.ndarray:
        """Rebuild ``A`` from the factors (used by round-trip tests)."""
        x = self.eigenvectors
        return (x * self.eigenvalues[None, :]) @ x.T

    def reconstruct_q(self) -> np.ndarray:
        """Rebuild ``Q = Π^{-1/2} A Π^{1/2}`` from the factors."""
        a = self.reconstruct_a()
        return (self.inv_sqrt_pi[:, None] * a) * self.sqrt_pi[None, :]


def decompose(
    rate_matrix: CodonRateMatrix,
    driver: str = "evr",
    counter: Optional[FlopCounter] = None,
) -> SpectralDecomposition:
    """Spectrally decompose a codon rate matrix via its symmetric form.

    Parameters
    ----------
    rate_matrix:
        Output of :func:`repro.codon.matrix.build_rate_matrix`.
    driver:
        LAPACK driver for :func:`scipy.linalg.eigh`; ``"evr"`` (dsyevr /
        MRRR) is the paper's choice, ``"ev"`` (QR) is also accepted.
    counter:
        Optional flop accounting sink.
    """
    a = symmetrize(rate_matrix)
    validate_square(a, name="A")
    eigenvalues, eigenvectors = scipy.linalg.eigh(a, driver=driver)
    if counter is not None:
        counter.add("eigh(dsyevr)" if driver == "evr" else f"eigh({driver})", eigh_flops(a.shape[0]))
    pi = validate_probability_vector(rate_matrix.pi, name="pi")
    sqrt_pi = np.sqrt(pi)
    return SpectralDecomposition(
        eigenvalues=np.ascontiguousarray(eigenvalues),
        eigenvectors=np.asfortranarray(eigenvectors),
        pi=pi,
        sqrt_pi=sqrt_pi,
        inv_sqrt_pi=1.0 / sqrt_pi,
    )


class DecompositionCache:
    """LRU cache of spectral decompositions keyed by model parameters.

    A branch-site likelihood evaluation needs decompositions for at most
    three distinct ω values (ω0, ω1 = 1, ω2) regardless of tree size;
    within one evaluation — and across evaluations that leave (κ, ω)
    untouched, e.g. the branch-length sweeps of a finite-difference
    gradient — the cache turns repeat decompositions into dictionary
    lookups.  Keys quantise parameters to 15 significant digits so the
    cache is insensitive to benign float formatting round-trips.
    """

    def __init__(self, maxsize: int = 16, driver: str = "evr") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        self._driver = driver
        self._store: dict[tuple, SpectralDecomposition] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(rate_matrix: CodonRateMatrix) -> tuple:
        return (
            round(float(rate_matrix.kappa), 15),
            round(float(rate_matrix.omega), 15),
            round(float(rate_matrix.scale), 15),
            hash(rate_matrix.pi.tobytes()),
        )

    def get(
        self,
        rate_matrix: CodonRateMatrix,
        counter: Optional[FlopCounter] = None,
    ) -> SpectralDecomposition:
        key = self._key(rate_matrix)
        found = self._store.pop(key, None)
        if found is not None:
            self.hits += 1
            self._store[key] = found  # refresh LRU position
            return found
        self.misses += 1
        decomp = decompose(rate_matrix, driver=self._driver, counter=counter)
        self._store[key] = decomp
        while len(self._store) > self._maxsize:
            self._store.pop(next(iter(self._store)))
        return decomp

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)
