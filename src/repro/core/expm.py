"""Transition-probability-matrix kernels: the paper's central optimization.

Given the spectral decomposition ``A = X Λ Xᵀ`` of the symmetrised rate
matrix, the transition matrix for branch length ``t`` is

    P(t) = Π^{-1/2} · e^{At} · Π^{1/2},        e^{At} = X e^{Λt} Xᵀ.

The three reconstruction paths implemented here differ only in how
``e^{At}`` (or its action on a vector) is computed:

``transition_matrix_einsum``  (Eq. 9 — CodeML v4.4c comparator)
    The same left-to-right product evaluated with numpy's non-BLAS
    contraction engine.  CodeML v4.4c contains *no* BLAS — its matrix
    products are hand-written portable C loops — so the faithful Python
    stand-in for the paper's comparator is a compiled-but-untuned
    contraction, not ``dgemm``.  (Calibration on this host: einsum
    ≈ 68 µs vs dsyrk-path ≈ 20 µs at n = 61, matching the paper's
    2–3× per-iteration kernel gap.)

``transition_matrix_gemm``  (Eq. 9 with ``dgemm`` — ablation)
    ``Ỹ = X · diag(e^{λ_i t})`` then ``Z = Ỹ Xᵀ`` with ``dgemm``:
    ≈ 2n³ flops.  This isolates the *algorithmic* half-flops claim from
    the BLAS-adoption claim: gemm-vs-syrk is Eq. 9 vs Eq. 10 with the
    BLAS held fixed.

``transition_matrix_syrk``  (Eq. 10–11 — SlimCodeML)
    ``Y = X · diag(e^{λ_i t/2})`` then ``Z = Y Yᵀ`` with ``dsyrk``:
    ≈ n³ flops — the paper's headline kernel improvement.

``symmetric_branch_matrix``  (Eq. 12–13 — post-paper improvement)
    ``M = Ŷ Ŷᵀ`` with ``Ŷ = Π^{-1/2} X e^{Λt/2}``; then
    ``P(t)·w = M·(Πw)`` for any CLV ``w``, so per-site propagation uses
    the *symmetric* ``M`` (``dsymv``/``dsymm``: half the matrix reads).

All kernels call the BLAS through :mod:`scipy.linalg.blas` so the
measured difference is the documented ``dgemm``/``dsyrk`` contract, the
same routines the paper links against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg
from scipy.linalg.blas import dgemm, dsyrk

from repro.core.eigen import SpectralDecomposition
from repro.core.flops import (
    FlopCounter,
    gemm_flops,
    gemm_matrix_reads,
    syrk_flops,
)

__all__ = [
    "transition_matrix_einsum",
    "transition_matrix_gemm",
    "transition_matrix_syrk",
    "transition_matrix_scipy",
    "symmetric_branch_matrix",
    "fill_symmetric_from_lower",
]


def _validate_t(t: float) -> float:
    t = float(t)
    if not np.isfinite(t) or t < 0:
        raise ValueError(f"branch length must be finite and non-negative, got {t}")
    return t


def _exp_eigenvalues(eigenvalues: np.ndarray, t: float) -> np.ndarray:
    """``exp(λ_i t)`` with the exponent clamped to the double range.

    A generator's eigenvalues are non-positive; any positive value is
    eigensolver rounding noise, and extreme parameter corners probed by
    the optimizer (huge ω with long branches) can push ``λt`` past the
    exp overflow threshold.  Clamping to [-745, 40] keeps the kernel
    finite everywhere without affecting any legitimate evaluation.
    """
    return np.exp(np.clip(eigenvalues * t, -745.0, 40.0))


def _apply_pi_scalings(z: np.ndarray, decomp: SpectralDecomposition) -> np.ndarray:
    """Step 5 of §III-A: ``P = Π^{-1/2} Z Π^{1/2}`` (O(n²) scalings)."""
    return (decomp.inv_sqrt_pi[:, None] * z) * decomp.sqrt_pi[None, :]


def fill_symmetric_from_lower(lower: np.ndarray) -> np.ndarray:
    """Mirror the lower triangle of a ``dsyrk`` result into a full matrix.

    ``dsyrk`` leaves the strict upper triangle as garbage (zeros here);
    ``L + Lᵀ`` then restoring the diagonal is the cheapest O(n²)
    vectorised mirror (~5× faster than masked ``np.tril`` copies at
    n = 61, which matters because this runs once per branch).
    """
    full = lower + lower.T
    diag = np.einsum("ii->i", full)
    diag *= 0.5
    return full


def transition_matrix_einsum(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """CodeML v4.4c comparator: Eq. 9 via a non-BLAS contraction.

    Identical arithmetic to :func:`transition_matrix_gemm` (≈2n³ flops),
    evaluated by ``np.einsum`` with ``optimize=False`` so that no vendor
    BLAS is involved — modelling CodeML's hand-written portable C loops
    (see the module docstring for the calibration rationale).
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_tilde = x * _exp_eigenvalues(decomp.eigenvalues, t)[None, :]
    z = np.einsum("ij,kj->ik", y_tilde, x, optimize=False)
    if counter is not None:
        counter.add("expm:einsum(eq9)", gemm_flops(n, n, n), reads=2 * gemm_matrix_reads(n, n))
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_gemm(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """Baseline Eq. 9 path: ``Z = (X e^{Λt}) Xᵀ`` via ``dgemm`` (≈2n³ flops).

    This reproduces how CodeML v4.4c (Yang 2003 technical note)
    reconstructs ``P(t)`` — the comparator in every benchmark.

    Parameters
    ----------
    decomp:
        Per-ω spectral decomposition from :func:`repro.core.eigen.decompose`.
    t:
        Branch length (expected substitutions per codon), ``t ≥ 0``.
    counter:
        Optional flop accounting sink.
    clip_negative:
        Round-off can leave entries at ``-1e-17``; when True (default,
        matching PAML) such entries are clamped to zero.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_tilde = np.asfortranarray(x * _exp_eigenvalues(decomp.eigenvalues, t)[None, :])
    z = dgemm(1.0, y_tilde, x, trans_b=True)
    if counter is not None:
        counter.add("expm:dgemm", gemm_flops(n, n, n), reads=2 * gemm_matrix_reads(n, n))
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_syrk(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """SlimCodeML Eq. 10–11 path: ``Z = YYᵀ``, ``Y = X e^{Λt/2}`` (≈n³ flops).

    The symmetric rank-k update writes only one triangle; the mirror copy
    is an O(n²) memory operation.  Arguments as in
    :func:`transition_matrix_gemm`.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y = np.asfortranarray(x * _exp_eigenvalues(decomp.eigenvalues, 0.5 * t)[None, :])
    z_lower = dsyrk(1.0, y, lower=True)
    if counter is not None:
        counter.add("expm:dsyrk", syrk_flops(n, n), reads=gemm_matrix_reads(n, n))
    z = fill_symmetric_from_lower(z_lower)
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_scipy(q: np.ndarray, t: float) -> np.ndarray:
    """Reference path: ``scipy.linalg.expm(Q t)`` (Padé/scaling-squaring).

    Used only by the test suite to cross-validate the decomposition
    kernels against an independent algorithm.
    """
    t = _validate_t(t)
    return scipy.linalg.expm(np.asarray(q, dtype=float) * t)


def symmetric_branch_matrix(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Eq. 12–13: symmetric ``M = Ŷ Ŷᵀ`` with ``P(t) w = M (Π w)``.

    ``Ŷ = Π^{-1/2} X e^{Λt/2}``.  The returned matrix is exactly
    symmetric (built by ``dsyrk`` + mirror), so CLV propagation can use
    symmetric BLAS kernels that read only half of it — the paper's §II-C2
    "further improvement", here powering the ``slim-v2`` engine.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_hat = np.asfortranarray(
        (decomp.inv_sqrt_pi[:, None] * x) * _exp_eigenvalues(decomp.eigenvalues, 0.5 * t)[None, :]
    )
    m_lower = dsyrk(1.0, y_hat, lower=True)
    if counter is not None:
        counter.add("expm:dsyrk(sym-branch)", syrk_flops(n, n), reads=gemm_matrix_reads(n, n))
    return fill_symmetric_from_lower(m_lower)
