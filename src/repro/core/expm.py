"""Transition-probability-matrix kernels: the paper's central optimization.

Given the spectral decomposition ``A = X Λ Xᵀ`` of the symmetrised rate
matrix, the transition matrix for branch length ``t`` is

    P(t) = Π^{-1/2} · e^{At} · Π^{1/2},        e^{At} = X e^{Λt} Xᵀ.

The three reconstruction paths implemented here differ only in how
``e^{At}`` (or its action on a vector) is computed:

``transition_matrix_einsum``  (Eq. 9 — CodeML v4.4c comparator)
    The same left-to-right product evaluated with numpy's non-BLAS
    contraction engine.  CodeML v4.4c contains *no* BLAS — its matrix
    products are hand-written portable C loops — so the faithful Python
    stand-in for the paper's comparator is a compiled-but-untuned
    contraction, not ``dgemm``.  (Calibration on this host: einsum
    ≈ 68 µs vs dsyrk-path ≈ 20 µs at n = 61, matching the paper's
    2–3× per-iteration kernel gap.)

``transition_matrix_gemm``  (Eq. 9 with ``dgemm`` — ablation)
    ``Ỹ = X · diag(e^{λ_i t})`` then ``Z = Ỹ Xᵀ`` with ``dgemm``:
    ≈ 2n³ flops.  This isolates the *algorithmic* half-flops claim from
    the BLAS-adoption claim: gemm-vs-syrk is Eq. 9 vs Eq. 10 with the
    BLAS held fixed.

``transition_matrix_syrk``  (Eq. 10–11 — SlimCodeML)
    ``Y = X · diag(e^{λ_i t/2})`` then ``Z = Y Yᵀ`` with ``dsyrk``:
    ≈ n³ flops — the paper's headline kernel improvement.

``symmetric_branch_matrix``  (Eq. 12–13 — post-paper improvement)
    ``M = Ŷ Ŷᵀ`` with ``Ŷ = Π^{-1/2} X e^{Λt/2}``; then
    ``P(t)·w = M·(Πw)`` for any CLV ``w``, so per-site propagation uses
    the *symmetric* ``M`` (``dsymv``/``dsymm``: half the matrix reads).

All kernels call the BLAS through :mod:`scipy.linalg.blas` so the
measured difference is the documented ``dgemm``/``dsyrk`` contract, the
same routines the paper links against.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.linalg
from scipy.linalg.blas import dgemm, dsyrk

from repro.core.eigen import SpectralDecomposition
from repro.core.flops import (
    FlopCounter,
    gemm_flops,
    gemm_matrix_reads,
    syrk_flops,
)

__all__ = [
    "transition_matrix_einsum",
    "transition_matrix_gemm",
    "transition_matrix_syrk",
    "transition_matrix_scipy",
    "symmetric_branch_matrix",
    "stacked_syrk_operators",
    "stacked_symmetric_operators",
    "fill_symmetric_from_lower",
]


def _validate_t(t: float) -> float:
    t = float(t)
    if not np.isfinite(t) or t < 0:
        raise ValueError(f"branch length must be finite and non-negative, got {t}")
    return t


def _exp_eigenvalues(eigenvalues: np.ndarray, t: float) -> np.ndarray:
    """``exp(λ_i t)`` with the exponent clamped to the double range.

    A generator's eigenvalues are non-positive; any positive value is
    eigensolver rounding noise, and extreme parameter corners probed by
    the optimizer (huge ω with long branches) can push ``λt`` past the
    exp overflow threshold.  Clamping to [-745, 40] keeps the kernel
    finite everywhere without affecting any legitimate evaluation.
    """
    return np.exp(np.clip(eigenvalues * t, -745.0, 40.0))


def _apply_pi_scalings(z: np.ndarray, decomp: SpectralDecomposition) -> np.ndarray:
    """Step 5 of §III-A: ``P = Π^{-1/2} Z Π^{1/2}`` (O(n²) scalings)."""
    return (decomp.inv_sqrt_pi[:, None] * z) * decomp.sqrt_pi[None, :]


def fill_symmetric_from_lower(lower: np.ndarray) -> np.ndarray:
    """Mirror the lower triangle of a ``dsyrk`` result into a full matrix.

    ``dsyrk`` leaves the strict upper triangle as garbage (zeros here);
    ``L + Lᵀ`` then restoring the diagonal is the cheapest O(n²)
    vectorised mirror (~5× faster than masked ``np.tril`` copies at
    n = 61, which matters because this runs once per branch).
    """
    full = lower + lower.T
    diag = np.einsum("ii->i", full)
    diag *= 0.5
    return full


def transition_matrix_einsum(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """CodeML v4.4c comparator: Eq. 9 via a non-BLAS contraction.

    Identical arithmetic to :func:`transition_matrix_gemm` (≈2n³ flops),
    evaluated by ``np.einsum`` with ``optimize=False`` so that no vendor
    BLAS is involved — modelling CodeML's hand-written portable C loops
    (see the module docstring for the calibration rationale).
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_tilde = x * _exp_eigenvalues(decomp.eigenvalues, t)[None, :]
    z = np.einsum("ij,kj->ik", y_tilde, x, optimize=False)
    if counter is not None:
        counter.add("expm:einsum(eq9)", gemm_flops(n, n, n), reads=2 * gemm_matrix_reads(n, n))
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_gemm(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """Baseline Eq. 9 path: ``Z = (X e^{Λt}) Xᵀ`` via ``dgemm`` (≈2n³ flops).

    This reproduces how CodeML v4.4c (Yang 2003 technical note)
    reconstructs ``P(t)`` — the comparator in every benchmark.

    Parameters
    ----------
    decomp:
        Per-ω spectral decomposition from :func:`repro.core.eigen.decompose`.
    t:
        Branch length (expected substitutions per codon), ``t ≥ 0``.
    counter:
        Optional flop accounting sink.
    clip_negative:
        Round-off can leave entries at ``-1e-17``; when True (default,
        matching PAML) such entries are clamped to zero.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_tilde = np.asfortranarray(x * _exp_eigenvalues(decomp.eigenvalues, t)[None, :])
    z = dgemm(1.0, y_tilde, x, trans_b=True)
    if counter is not None:
        counter.add("expm:dgemm", gemm_flops(n, n, n), reads=2 * gemm_matrix_reads(n, n))
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_syrk(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """SlimCodeML Eq. 10–11 path: ``Z = YYᵀ``, ``Y = X e^{Λt/2}`` (≈n³ flops).

    The symmetric rank-k update writes only one triangle; the mirror copy
    is an O(n²) memory operation.  Arguments as in
    :func:`transition_matrix_gemm`.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y = np.asfortranarray(x * _exp_eigenvalues(decomp.eigenvalues, 0.5 * t)[None, :])
    z_lower = dsyrk(1.0, y, lower=True)
    if counter is not None:
        counter.add("expm:dsyrk", syrk_flops(n, n), reads=gemm_matrix_reads(n, n))
    z = fill_symmetric_from_lower(z_lower)
    p = _apply_pi_scalings(z, decomp)
    if clip_negative:
        np.maximum(p, 0.0, out=p)
    return p


def transition_matrix_scipy(q: np.ndarray, t: float) -> np.ndarray:
    """Reference path: ``scipy.linalg.expm(Q t)`` (Padé/scaling-squaring).

    Used only by the test suite to cross-validate the decomposition
    kernels against an independent algorithm.
    """
    t = _validate_t(t)
    return scipy.linalg.expm(np.asarray(q, dtype=float) * t)


def symmetric_branch_matrix(
    decomp: SpectralDecomposition,
    t: float,
    counter: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Eq. 12–13: symmetric ``M = Ŷ Ŷᵀ`` with ``P(t) w = M (Π w)``.

    ``Ŷ = Π^{-1/2} X e^{Λt/2}``.  The returned matrix is exactly
    symmetric (built by ``dsyrk`` + mirror), so CLV propagation can use
    symmetric BLAS kernels that read only half of it — the paper's §II-C2
    "further improvement", here powering the ``slim-v2`` engine.
    """
    t = _validate_t(t)
    n = decomp.n_states
    x = decomp.eigenvectors
    y_hat = np.asfortranarray(
        (decomp.inv_sqrt_pi[:, None] * x) * _exp_eigenvalues(decomp.eigenvalues, 0.5 * t)[None, :]
    )
    m_lower = dsyrk(1.0, y_hat, lower=True)
    if counter is not None:
        counter.add("expm:dsyrk(sym-branch)", syrk_flops(n, n), reads=gemm_matrix_reads(n, n))
    return fill_symmetric_from_lower(m_lower)


# ---------------------------------------------------------------------------
# Stacked (batched) operator builds
#
# All branch operators of one ω class share the decomposition, so the
# whole batch can be laid out in one F-ordered n×(n·B) buffer whose
# column block b is branch b's operator.  The O(n²) stages — the Ŷ
# scaling, the triangle mirror, the Π^{±1/2} scalings, the clip — run
# once as vectorised elementwise passes over the 3-D view
# ``stack.T.reshape(B, n, n)`` (element (b, j, i) aliases stack[i, b·n+j],
# i.e. slab b is operator b transposed).  The O(n³) stage stays one
# ``dsyrk`` per F-contiguous column-block view: on this host a fused
# wide GEMM is *not* faster (BLAS is already at peak at n = 61) and a
# GEMM reformulation of the rank-k update could not be bit-identical to
# the per-branch kernel.  Elementwise IEEE ops on identical operand
# pairs are bitwise deterministic regardless of shape or strides, and a
# dsyrk on an F-contiguous view has the same lda as a standalone call —
# so every column block is bit-for-bit the per-branch kernel's output.
# Only np.exp is layout-sensitive (SIMD path can differ by stride), so
# the exponent vectors are computed per branch on 1-D arrays exactly as
# :func:`_exp_eigenvalues` does.
# ---------------------------------------------------------------------------


def _exp_stack(eigenvalues: np.ndarray, ts: Sequence[float], half: bool) -> np.ndarray:
    """Rows of ``exp(λ t_b)`` (or ``t_b/2``), bit-identical to the 1-D kernel.

    The multiply and clamp are batched 2-D (elementwise ufuncs are
    stride-insensitive, and IEEE multiplication commutes bitwise), but
    ``np.exp`` must run on each contiguous 61-element row separately:
    its SIMD kernel's scalar tail handling depends on an element's
    position in the flattened buffer, so one exp over the (B, n) block
    would differ in the last few ulps from the per-branch kernel.
    """
    scaled = np.array(
        [0.5 * _validate_t(t) if half else _validate_t(t) for t in ts], dtype=float
    )
    args = scaled.reshape(-1, 1) * eigenvalues[None, :]
    np.clip(args, -745.0, 40.0, out=args)
    e = np.empty_like(args)
    for b in range(args.shape[0]):
        np.exp(args[b], out=e[b])
    return e


def _syrk_into_views(lower_stack: np.ndarray, y_stack: np.ndarray, n: int) -> None:
    """One ``dsyrk`` per column-block view, writing in place.

    ``lower_stack`` must be zero-initialised: BLAS only writes the lower
    triangle, and the mirror stage reads the (zero) strict upper half —
    exactly as the per-branch kernels do with scipy's zero-allocated
    result array.
    """
    n_branches = y_stack.shape[1] // n
    for b in range(n_branches):
        view = lower_stack[:, b * n : (b + 1) * n]
        res = dsyrk(1.0, y_stack[:, b * n : (b + 1) * n], c=view, lower=True, overwrite_c=1)
        if res is not view and not np.shares_memory(res, view):  # pragma: no cover
            view[...] = res


def _mirror_stack(lower_stack: np.ndarray, n: int) -> np.ndarray:
    """Vectorised :func:`fill_symmetric_from_lower` over all column blocks."""
    n_branches = lower_stack.shape[1] // n
    out = np.empty_like(lower_stack, order="F")
    l3 = lower_stack.T.reshape(n_branches, n, n)
    o3 = out.T.reshape(n_branches, n, n)
    np.add(l3, l3.transpose(0, 2, 1), out=o3)
    diag = np.einsum("bii->bi", o3)
    diag *= 0.5
    return out


def _y_stack(scaled_x: np.ndarray, exps: np.ndarray, n: int) -> np.ndarray:
    """``Y_b = scaled_x · diag(e_b)`` for all b, as one elementwise pass."""
    n_branches = exps.shape[0]
    y = np.empty((n, n * n_branches), order="F")
    y3 = y.T.reshape(n_branches, n, n)
    np.multiply(scaled_x.T[None, :, :], exps[:, :, None], out=y3)
    return y


def stacked_syrk_operators(
    decomp: SpectralDecomposition,
    ts: Sequence[float],
    counter: Optional[FlopCounter] = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """Batched :func:`transition_matrix_syrk`: ``P(t_b)`` for every branch.

    Returns an F-ordered ``(n, n·B)`` stack whose column block b equals
    ``transition_matrix_syrk(decomp, ts[b])`` bit for bit.
    """
    n = decomp.n_states
    if len(ts) == 0:
        return np.empty((n, 0), order="F")
    exps = _exp_stack(decomp.eigenvalues, ts, half=True)
    y = _y_stack(decomp.eigenvectors, exps, n)
    lower = np.zeros((n, n * len(ts)), order="F")
    _syrk_into_views(lower, y, n)
    if counter is not None:
        counter.add(
            "expm:dsyrk",
            len(ts) * syrk_flops(n, n),
            reads=len(ts) * gemm_matrix_reads(n, n),
        )
    stack = _mirror_stack(lower, n)
    n_branches = len(ts)
    s3 = stack.T.reshape(n_branches, n, n)
    # _apply_pi_scalings, same operand order: (Π^{-1/2} z) first, then Π^{1/2}.
    # In the (b, j, i) view the row scaling is axis 2, the column axis 1.
    np.multiply(s3, decomp.inv_sqrt_pi[None, None, :], out=s3)
    np.multiply(s3, decomp.sqrt_pi[None, :, None], out=s3)
    if clip_negative:
        np.maximum(stack, 0.0, out=stack)
    return stack


def stacked_symmetric_operators(
    decomp: SpectralDecomposition,
    ts: Sequence[float],
    counter: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Batched :func:`symmetric_branch_matrix`: ``M(t_b)`` for every branch.

    Returns an F-ordered ``(n, n·B)`` stack whose column block b equals
    ``symmetric_branch_matrix(decomp, ts[b])`` bit for bit.
    """
    n = decomp.n_states
    if len(ts) == 0:
        return np.empty((n, 0), order="F")
    exps = _exp_stack(decomp.eigenvalues, ts, half=True)
    scaled_x = decomp.inv_sqrt_pi[:, None] * decomp.eigenvectors
    y = _y_stack(scaled_x, exps, n)
    lower = np.zeros((n, n * len(ts)), order="F")
    _syrk_into_views(lower, y, n)
    if counter is not None:
        counter.add(
            "expm:dsyrk(sym-branch)",
            len(ts) * syrk_flops(n, n),
            reads=len(ts) * gemm_matrix_reads(n, n),
        )
    return _mirror_stack(lower, n)
