"""Uniformized (expm-free) transition kernel — the ladder's fourth rung.

Uniformization rewrites a CTMC generator ``Q`` as a Poisson-subordinated
jump chain (Jensen 1953; Irvahn & Minin, arXiv:1403.5040): with

    μ = max_i |q_ii|        and        R = I + Q / μ

``R`` is a *stochastic* matrix (non-negative rows summing to one), and

    P(t) = e^{-μt} Σ_{k=0}^{∞} (μt)^k / k! · R^k .

Every term of the series is non-negative, so — unlike the spectral
reconstruction (signed cancellation of ``e^{λt}`` terms) and Padé
(rational approximation with subtractions) — no catastrophic
cancellation is possible: the partial sums increase monotonically
towards ``P(t)`` entrywise.  That makes uniformization the natural
*independent witness* for the recovery ladder: it fails in none of the
regimes (huge ``ω·t``, saturated branches, near-degenerate spectra)
where the first three rungs lose accuracy together.

Truncation is adaptive: the series is cut at the smallest ``K`` whose
Poisson tail mass ``1 − Σ_{k≤K} w_k`` is below the configured bound
(``tol``), which bounds the entrywise truncation error by the same
amount (``‖R^k‖_∞ = 1``).  The truncated sum has row sums equal to the
accumulated Poisson mass; dividing by it restores exact stochasticity
while keeping every entry non-negative — the "guaranteed-nonnegative
rows" contract the acceptance tests pin.

For large ``μt`` the Poisson mass spreads over ``O(μt)`` terms; rather
than summing thousands of matrix powers the kernel computes
``P(t/2^s)`` with ``μ·t/2^s ≤ squaring_threshold`` and squares ``s``
times — squaring a stochastic matrix preserves non-negativity and row
sums to rounding, so the invariants survive.  The per-segment tolerance
is tightened by ``2^s`` to absorb the error doubling of each squaring.

:class:`UniformizedOperator` is the reusable per-decomposition object:
it caches the powers ``R^k`` (shared by every branch length *and* by
the stochastic-mapping sampler in :mod:`repro.likelihood.mapping`) and
carries ``pi`` plus a probe-stable ``token`` exactly like
:class:`~repro.core.eigen.SpectralDecomposition`, so the engines' LRU
transition cache can key on it without special cases.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.eigen import _TOKENS

__all__ = [
    "UniformizedOperator",
    "uniformized_transition_matrix",
    "poisson_truncation",
]

#: Series length above which ``transition_matrix`` switches to
#: scaling-and-squaring; also the cap passed to :func:`poisson_truncation`
#: by the endpoint-conditioned sampler (which cannot square).
DEFAULT_SQUARING_THRESHOLD = 48.0

#: Hard cap on series terms per segment — far above anything the
#: squaring logic permits; a backstop against a runaway ``μt``.
MAX_TERMS = 4096


def poisson_truncation(mu_t: float, tol: float, max_terms: int = MAX_TERMS) -> np.ndarray:
    """Truncated Poisson(μt) weights ``w_0..w_K`` with tail mass ≤ ``tol``.

    Weights are computed by the stable forward recurrence
    ``w_{k+1} = w_k · μt/(k+1)`` from ``w_0 = e^{-μt}`` (no factorials,
    no overflow for the ``μt ≤ squaring_threshold`` range the kernel
    feeds it).  Raises :class:`ValueError` when ``max_terms`` terms do
    not reach the requested tail bound.
    """
    if mu_t < 0.0 or not np.isfinite(mu_t):
        raise ValueError(f"mu_t must be finite and non-negative, got {mu_t!r}")
    if mu_t == 0.0:
        return np.ones(1)
    weights: List[float] = []
    w = math.exp(-mu_t)
    cum = 0.0
    for k in range(max_terms):
        weights.append(w)
        cum += w
        if 1.0 - cum <= tol:
            return np.asarray(weights)
        w *= mu_t / (k + 1)
    raise ValueError(
        f"Poisson truncation did not reach tail {tol:.1e} within "
        f"{max_terms} terms (mu_t={mu_t:.3g})"
    )


class UniformizedOperator:
    """Reusable uniformization of one generator ``Q`` (see module docstring).

    Quacks like :class:`~repro.core.eigen.SpectralDecomposition` where
    the caches care — ``pi``, ``n_states``, a process-unique ``token``
    drawn from the same monotone sequence — and adds the jump-chain
    pieces (``mu``, ``r``, cached powers) the recovery rung and the
    stochastic-mapping sampler share.

    Parameters
    ----------
    q:
        The generator (off-diagonal entries are clamped to ≥ 0; the
        largest clamp magnitude is kept on :attr:`r_clip` so callers
        can report how damaged the input was).
    pi:
        Stationary distribution, carried for the engines'
        ``_wrap_probability_matrix`` hook.
    tol:
        Poisson-tail truncation bound per series evaluation.
    squaring_threshold:
        Largest ``μt`` summed directly; beyond it the kernel halves
        ``t`` until under the threshold and squares back up.
    """

    #: Ladder-rung identity, mirroring ``SpectralDecomposition.rung``
    #: / ``PadeFallback.rung`` for the engines' per-rung usage counters.
    rung = "uniformization"

    def __init__(
        self,
        q: np.ndarray,
        pi: np.ndarray,
        tol: float = 1e-12,
        squaring_threshold: float = DEFAULT_SQUARING_THRESHOLD,
        counter=None,
    ) -> None:
        q = np.asarray(q, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError(f"Q must be square, got shape {q.shape}")
        if not np.all(np.isfinite(q)):
            raise ValueError("Q has non-finite entries; uniformization needs a finite generator")
        if tol <= 0.0:
            raise ValueError("tol must be positive")
        self.q = q
        self.pi = np.asarray(pi, dtype=float)
        self.tol = float(tol)
        self.squaring_threshold = float(squaring_threshold)
        self.token = next(_TOKENS)
        n = q.shape[0]
        diag = np.diagonal(q)
        #: Uniformization rate μ = max |q_ii| (0 for the zero generator).
        self.mu = float(np.max(-diag)) if n else 0.0
        if self.mu < 0.0:
            # Positive diagonal entries mean Q is not a generator at all.
            raise ValueError(f"Q has a positive diagonal entry ({-self.mu:.3e})")
        if self.mu > 0.0:
            r = np.eye(n) + q / self.mu
        else:
            r = np.eye(n)
        # Guarantee the jump matrix is non-negative even when the input
        # generator carries small negative off-diagonal noise (it can:
        # rung 4 sees Q rebuilt from damaged spectral factors).
        min_entry = float(r.min())
        #: Largest negative excursion clamped out of R (0.0 = clean input).
        self.r_clip = -min_entry if min_entry < 0.0 else 0.0
        if self.r_clip > 0.0:
            r = np.maximum(r, 0.0)
        #: The jump-chain matrix R = I + Q/μ, rows renormalised to sum
        #: exactly to 1 so cached powers stay stochastic.
        row_sums = r.sum(axis=1)
        r /= np.where(row_sums > 0.0, row_sums, 1.0)[:, None]
        self.r = r
        self._powers: List[np.ndarray] = [np.eye(n), r]
        self._stack: Optional[np.ndarray] = None
        self._weights_memo: dict = {}
        #: Series evaluations performed (diagnostics/benchmarks).
        self.evaluations = 0
        #: Power-cache reuse ledger: ``power_hits`` counts requests served
        #: from :attr:`_powers` without arithmetic, ``power_builds`` the
        #: ``R^{k-1}·R`` products actually run, ``draws_served`` the
        #: endpoint-conditioned histories the mapping sampler drew off
        #: this kernel (see :meth:`note_draws`).
        self.power_hits = 0
        self.power_builds = 0
        self.draws_served = 0
        self._counter = counter

    @property
    def n_states(self) -> int:
        return self.q.shape[0]

    @property
    def n_cached_powers(self) -> int:
        return len(self._powers)

    def power(self, k: int) -> np.ndarray:
        """``R^k`` from the cache, extending it on demand."""
        if k < 0:
            raise ValueError("power exponent must be non-negative")
        if k < len(self._powers):
            self.power_hits += 1
            return self._powers[k]
        n = self.n_states
        while len(self._powers) <= k:
            self._powers.append(self._powers[-1] @ self.r)
            self.power_builds += 1
            if self._counter is not None:
                self._counter.add("uniformization:power-dgemm", 2 * n * n * n,
                                  reads=2 * n * n)
        return self._powers[k]

    def power_stack(self, k_max: int) -> np.ndarray:
        """Contiguous ``(k_max+1, n, n)`` array of ``R^0..R^{k_max}``.

        The batched sampler gathers ``R^k[a, b]`` across many sites and
        jump counts at once; a stacked copy turns those gathers into
        single fancy-index reads.  The stack is cached and rebuilt only
        when the underlying power list has grown past it, and
        ``np.asarray`` copies preserve bits, so ``stack[k] ==
        self.power(k)`` exactly.
        """
        self.power(k_max)
        if self._stack is None or self._stack.shape[0] < k_max + 1:
            self._stack = np.asarray(self._powers)
        return self._stack[: k_max + 1]

    def note_draws(self, n_draws: int) -> None:
        """Record endpoint-conditioned histories served off this kernel."""
        self.draws_served += int(n_draws)

    def jump_weights(self, t: float, max_terms: int = MAX_TERMS) -> np.ndarray:
        """Truncated Poisson(μt) weights for the jump-count distribution.

        Used by the endpoint-conditioned sampler, which needs the raw
        series (no squaring shortcut exists for path sampling).  Memoised
        per ``(t, max_terms)`` — the sampler asks for the same branch
        lengths on every draw batch, and the kernel outlives one call.
        """
        key = (float(t), max_terms)
        cached = self._weights_memo.get(key)
        if cached is None:
            cached = poisson_truncation(self.mu * float(t), self.tol, max_terms=max_terms)
            self._weights_memo[key] = cached
        return cached

    def _series(self, mu_t: float, tol: float) -> np.ndarray:
        """Direct truncated series at ``μt`` (caller keeps μt moderate)."""
        weights = poisson_truncation(mu_t, tol)
        n = self.n_states
        p = np.zeros((n, n))
        for k, w in enumerate(weights):
            p += w * self.power(k)
        return p

    def transition_matrix(self, t: float) -> np.ndarray:
        """``P(t)`` with guaranteed non-negative rows summing to 1.

        Adaptive truncation to :attr:`tol`; scaling-and-squaring above
        :attr:`squaring_threshold` (see module docstring).  The result
        is freshly allocated and row-normalised — the one float of
        drift the truncation leaves is divided out, never left for a
        downstream guard to flag.
        """
        t = float(t)
        if t < 0.0 or not np.isfinite(t):
            raise ValueError(f"branch length must be finite and non-negative, got {t!r}")
        self.evaluations += 1
        n = self.n_states
        mu_t = self.mu * t
        if mu_t == 0.0:
            return np.eye(n)
        squarings = 0
        if mu_t > self.squaring_threshold:
            squarings = int(math.ceil(math.log2(mu_t / self.squaring_threshold)))
        # Each squaring can double the accumulated error: tighten the
        # per-segment tolerance accordingly (floored well above
        # underflow so the Poisson recurrence stays meaningful).
        seg_tol = max(self.tol / (2.0 ** squarings), 1e-300)
        p = self._series(mu_t / (2 ** squarings), seg_tol)
        for _ in range(squarings):
            p = p @ p
        p /= p.sum(axis=1)[:, None]
        return p

    def terms_for(self, t: float) -> Tuple[int, int]:
        """(series terms, squarings) ``transition_matrix(t)`` would use."""
        mu_t = self.mu * float(t)
        if mu_t == 0.0:
            return 1, 0
        squarings = 0
        if mu_t > self.squaring_threshold:
            squarings = int(math.ceil(math.log2(mu_t / self.squaring_threshold)))
        seg_tol = max(self.tol / (2.0 ** squarings), 1e-300)
        return poisson_truncation(mu_t / (2 ** squarings), seg_tol).shape[0], squarings


def uniformized_transition_matrix(
    q: np.ndarray,
    t: float,
    pi: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """One-shot ``P(t)`` via uniformization (tests/benchmarks convenience).

    Building a throwaway :class:`UniformizedOperator` per call forfeits
    the power cache; the engines keep one operator per decomposition
    instead (see ``LikelihoodEngine._uniformized_for``).
    """
    q = np.asarray(q, dtype=float)
    if pi is None:
        pi = np.full(q.shape[0], 1.0 / q.shape[0])
    return UniformizedOperator(q, pi, tol=tol).transition_matrix(t)
