"""Likelihood engines: CodeML-comparator, SlimCodeML, and Slim-v2.

The three engines share *everything* — tree handling, pattern
compression, pruning, mixture combination, rate normalisation, the
optimizer — and differ only in the §II-C kernels, mirroring the paper's
single-variable comparison:

=============  ======================  ==========================  =================
engine         eigensolver             P(t) reconstruction          CLV propagation
=============  ======================  ==========================  =================
``baseline``   ``dsyev`` (QL, the      Eq. 9 left-to-right via     per-site non-BLAS
(CodeML)       classic EISPACK-style   non-BLAS ``einsum``          matvec
               method CodeML's C       (≈2n³, untuned loops)
               code implements)
``slim``       ``dsyevr`` (MRRR,       Eq. 10–11 ``dsyrk``          per-site ``dgemv``
(SlimCodeML)   §III-A step 2)          (≈n³)
``slim-v2``    ``dsyevr``              Eq. 12–13 symmetric          bundled ``dsymm``
(extension)                            branch matrix ``ŶŶᵀ``        on Π-scaled CLVs
                                                                    (BLAS-3, §III-B)
=============  ======================  ==========================  =================

See DESIGN.md §4–5 for why ``einsum`` models CodeML v4.4c (which contains
no BLAS — its products are hand-written portable C loops).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.linalg.blas import dgemm, dgemv, dsymm, dsymv

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import PatternAlignment, compress_patterns
from repro.codon.frequencies import estimate_codon_frequencies
from repro.codon.genetic_code import GeneticCode, UNIVERSAL
from repro.codon.matrix import CodonRateMatrix
from repro.core.eigen import (
    DecompositionCache,
    PadeFallback,
    SpectralDecomposition,
    decompose,
    decompose_guarded,
)
from repro.core.expm import (
    stacked_symmetric_operators,
    stacked_syrk_operators,
    symmetric_branch_matrix,
    transition_matrix_einsum,
    transition_matrix_scipy,
    transition_matrix_syrk,
)
from repro.core.recovery import (
    NumericalError,
    NumericalEventRecorder,
    PruningGuard,
    RecoveryConfig,
    guard_symmetric_operator,
    guard_transition_matrix,
)
from repro.core.uniformization import UniformizedOperator
from repro.core.flops import (
    FlopCounter,
    gemm_flops,
    gemm_matrix_reads,
    gemv_flops,
    symm_flops,
    symv_flops,
    syrk_flops,
)
from repro.likelihood.mixture import (
    check_finite_site_log_likelihoods,
    mixture_log_likelihood,
    site_class_log_likelihoods,
)
from repro.likelihood.pruning import (
    LevelSchedule,
    PruningResult,
    PruningState,
    build_leaf_clvs,
    build_level_schedule,
    compute_recompute_rows,
    prune_site_class,
    prune_site_class_batched,
)
from repro.models.base import CodonSiteModel, SiteClass
from repro.models.class_graph import ClassPlan, SiteClassGraph
from repro.models.scaling import build_class_matrices
from repro.trees.tree import Tree
from repro.utils.timing import Stopwatch

__all__ = [
    "LikelihoodEngine",
    "BaselineEngine",
    "SlimEngine",
    "SlimV2Engine",
    "BatchedOperatorSet",
    "BoundLikelihood",
    "make_engine",
]


class BatchedOperatorSet:
    """All branch operators of one ω class, possibly backed by one stack.

    ``stack`` is the frozen F-ordered ``(n, n·B)`` buffer from a stacked
    build (``None`` when the operators were built per branch — Padé
    fallback decompositions, engines without a stacked kernel, or
    transition-cache hits).  Each entry of ``operators`` (keyed by
    branch length) is then a zero-copy, read-only, F-contiguous
    column-block view of the stack, packaged in the engine's operator
    form.  Because the views only *reference* the stack, replacing one
    branch's operator (a recovery-ladder rebuild) never invalidates the
    others.
    """

    __slots__ = ("operators", "stack")

    def __init__(self, operators: Dict[float, object], stack: Optional[np.ndarray] = None):
        self.operators = operators
        self.stack = stack

    def view(self, t: float) -> object:
        """The operator for branch length ``t`` (KeyError if unplanned)."""
        return self.operators[float(t)]

    def __len__(self) -> int:
        return len(self.operators)

    def __contains__(self, t: object) -> bool:
        return float(t) in self.operators


class LikelihoodEngine:
    """Abstract engine: owns the kernels and cross-evaluation caches.

    Parameters
    ----------
    code:
        Genetic code (61-state universal by default).
    counter:
        Optional :class:`FlopCounter` accumulating analytic flops.
    stopwatch:
        Optional :class:`Stopwatch`; engines record ``eigh``, ``expm``
        and ``clv`` phases so benches can show where time goes.
    cache_decompositions:
        Reuse spectral decompositions across evaluations with unchanged
        (κ, ω, scale) — both comparison sides get this (it models the
        per-ω reuse CodeML itself performs), default on.
    cache_transition_matrices:
        Additionally reuse ``P(t)`` across evaluations keyed by
        (decomposition, t).  ``None`` (default) resolves to the
        engine's :attr:`default_cache_transitions` class attribute:
        off for ``codeml``/``slim`` (CodeML v4.4c recomputes P per
        evaluation and the paper's cost model assumes one expm per
        branch per iteration; turning it on is the ablation measured
        by ``benchmarks/bench_caching_ablation.py``), on for
        ``slim-v2`` where the batched evaluation path keeps
        decomposition tokens stable across the optimizer's
        single-coordinate gradient probes, so a probe of one branch
        length reuses every other branch's operator (DESIGN.md §10).
    recovery:
        A :class:`~repro.core.recovery.RecoveryConfig` enables the
        numerical self-healing layer: the eigensolver fallback ladder
        (``evr`` → ``ev`` → per-branch Padé ``expm``), reconstruction
        guards on every branch operator, and CLV/mixture sanity checks
        during pruning — every trigger recorded on :attr:`events`.
        ``None`` (default) runs the historical unguarded code and is
        bit-identical to it.
    """

    name = "abstract"
    eigh_driver = "evr"
    #: Whether CLVs are propagated with one BLAS-3 call over all patterns.
    bundled = False
    #: Whether bindings default to the batched (stacked operators +
    #: level-order propagation) evaluation path (DESIGN.md §10).
    default_batched = False
    #: Default for ``cache_transition_matrices`` when the constructor
    #: argument is left at ``None``.
    default_cache_transitions = False

    def __init__(
        self,
        code: GeneticCode = UNIVERSAL,
        counter: Optional[FlopCounter] = None,
        stopwatch: Optional[Stopwatch] = None,
        cache_decompositions: bool = True,
        cache_transition_matrices: Optional[bool] = None,
        transition_cache_size: int = 4096,
        recovery: Optional[RecoveryConfig] = None,
        batched: Optional[bool] = None,
    ) -> None:
        self.code = code
        self.batched = self.default_batched if batched is None else bool(batched)
        self.counter = counter
        self.stopwatch = stopwatch if stopwatch is not None else Stopwatch()
        self.recovery = recovery
        #: Structured numerical-event stream (``None`` when recovery is off).
        self.events: Optional[NumericalEventRecorder] = (
            NumericalEventRecorder() if recovery is not None else None
        )
        decomposer = (
            (lambda matrix, counter: decompose_guarded(
                matrix, driver=self.eigh_driver, counter=counter,
                config=self.recovery, recorder=self.events,
            ))
            if recovery is not None
            else None
        )
        self._decomp_cache: Optional[DecompositionCache] = (
            DecompositionCache(maxsize=16, driver=self.eigh_driver, decomposer=decomposer)
            if cache_decompositions
            else None
        )
        self._guarded_decomposer = decomposer
        self.cache_transition_matrices = (
            self.default_cache_transitions
            if cache_transition_matrices is None
            else bool(cache_transition_matrices)
        )
        # Keyed by (decomposition token, t).  The token is the
        # process-unique sequence number on SpectralDecomposition — NOT
        # id(): after the decomposition cache evicts and the object is
        # collected, a recycled id would silently alias a fresh
        # decomposition onto a stale P(t).
        self._transition_cache: "OrderedDict[Tuple[int, float], object]" = OrderedDict()
        self._transition_cache_size = transition_cache_size
        self.transition_hits = 0
        self.transition_misses = 0
        #: Branch operators *built* (cache misses) per ladder rung that
        #: served them: ``evr``/``ev`` (spectral), ``pade``,
        #: ``uniformization``.  Feeds ``cache_stats()['rung_*']`` and,
        #: through the batch layer, ``GeneResult.rung_usage``.
        self.rung_usage: Dict[str, int] = {}
        #: Rung 4 state: one reusable uniformized kernel per
        #: decomposition token (powers of R shared across branch lengths).
        self._uniformized: Dict[int, UniformizedOperator] = {}
        #: CLV propagations actually executed (all modes) and branch
        #: applications served from incremental-state buffers instead.
        self.clv_propagations = 0
        self.clv_reuses = 0
        #: Batched-mode operator ledger: distinct (ω, t) stacked builds
        #: requested, duplicate requests deduped across classes, and the
        #: per-class-independent baseline (what each class would build
        #: with only its own operator memo, no graph edges).  The
        #: N-class acceptance metric is ``1 − builds/naive``.
        self.operator_builds = 0
        self.operator_build_saves = 0
        self.operator_builds_naive = 0

    # ------------------------------------------------------------------
    # Kernel hooks (overridden per engine)
    # ------------------------------------------------------------------
    def _build_operator(self, decomp: SpectralDecomposition, t: float) -> object:
        """Branch operator for length ``t`` (a P matrix or symmetric M)."""
        raise NotImplementedError

    def _propagate(self, operator: object, clv: np.ndarray) -> np.ndarray:
        """Apply a branch operator to an ``(n_states, n_patterns)`` CLV."""
        raise NotImplementedError

    def _wrap_probability_matrix(self, p: np.ndarray, pi: np.ndarray) -> object:
        """Package a dense ``P(t)`` as this engine's operator type.

        The Padé fallback rung produces a plain probability matrix; the
        P-propagating engines use it as-is, while ``slim-v2`` overrides
        this to rebuild its symmetric operator form.
        """
        return p

    def _guard_operator(self, operator: object, t: float) -> object:
        """Reconstruction guards on a freshly built branch operator."""
        assert self.recovery is not None
        return guard_transition_matrix(
            operator, self.recovery, self.events, t=t, engine=self.name
        )

    def _count_saved_propagation(self, shape: Tuple[int, int]) -> None:
        """Ledger one branch application the incremental layer skipped.

        Mirrors exactly what this engine's :meth:`_propagate` would have
        charged to the flop counter, but into the *saved* ledger
        (:meth:`FlopCounter.note_saved`), so totals remain honest counts
        of executed arithmetic.  Only called when a counter is attached.
        """

    # ------------------------------------------------------------------
    # Batched-evaluation hooks (DESIGN.md §10)
    # ------------------------------------------------------------------
    def _build_operator_stack(
        self, decomp: SpectralDecomposition, ts: Sequence[float]
    ) -> Optional[np.ndarray]:
        """F-ordered ``(n, n·B)`` stack of branch operators for ``ts``.

        Column block b must equal :meth:`_build_operator` for ``ts[b]``
        bit for bit.  ``None`` (default) means this engine has no
        stacked kernel; the batched driver falls back to per-branch
        builds (the baseline einsum engine, for instance, still gains
        the planning/level amortisation without a stacked build).
        """
        return None

    def _operator_from_view(self, view: np.ndarray, decomp) -> object:
        """Package one column-block view of a stack as an operator."""
        return view

    def _operator_probability_matrix(self, operator: object) -> np.ndarray:
        """Dense ``P(t)`` from this engine's operator representation.

        Post-fit analyses (ancestral reconstruction) need plain
        transition probabilities; routing them through
        :meth:`_operator_for` keeps them on the LRU operator cache the
        fit already warmed.  P-propagating engines hold ``P`` directly.
        """
        return operator

    def _note_saved_build(self, decomp) -> None:
        """Ledger one operator build skipped by the batched (ω, t) dedupe.

        Model A's background-tied classes (0↔2a, 1↔2b) request the same
        (decomposition, t) operators; the batched planner builds each
        distinct pair once and records the aliases here.
        """

    def _propagate_level(
        self, items: Sequence[Tuple[object, np.ndarray]]
    ) -> List[np.ndarray]:
        """Propagate every (operator, child CLV) pair of one tree level.

        Default: the per-branch kernel in sequence.  Engines with a
        fused level kernel override this; results must stay bit-identical
        to per-item :meth:`_propagate` calls.
        """
        return [self._propagate(op, clv) for op, clv in items]

    def build_operator_set(
        self, decomp, ts: Sequence[float]
    ) -> BatchedOperatorSet:
        """Build (and guard) the operators of one decomposition for ``ts``.

        The stacked path guards every operator *before* freezing the
        stack (guards repair in place), then creates the public views
        from the frozen buffer so they are read-only.
        """
        ts = [float(t) for t in ts]
        stack = (
            None
            if isinstance(decomp, PadeFallback)
            else self._build_operator_stack(decomp, ts)
        )
        if stack is None:
            return BatchedOperatorSet({t: self._make_operator(decomp, t) for t in ts})
        n = decomp.n_states
        replacements: Dict[float, object] = {}
        if self.recovery is not None:
            for b, t in enumerate(ts):
                view_op = self._operator_from_view(stack[:, b * n : (b + 1) * n], decomp)
                try:
                    self._guard_operator(view_op, t)
                except NumericalError as exc:
                    if not self.recovery.cross_check:
                        raise
                    # Stack views never alias each other, so one bad
                    # branch can be replaced without touching the rest.
                    replacements[t] = self._recover_operator(
                        decomp, t, exc, path="spectral", failing=view_op
                    )
        stack.setflags(write=False)
        operators = {
            t: self._operator_from_view(stack[:, b * n : (b + 1) * n], decomp)
            for b, t in enumerate(ts)
        }
        operators.update(replacements)
        self._note_rung(getattr(decomp, "rung", "evr"), len(ts) - len(replacements))
        return BatchedOperatorSet(operators, stack)

    def operator_set_for(self, decomp, ts: Sequence[float]) -> BatchedOperatorSet:
        """Operators for every distinct ``t``, via the transition cache.

        The batched analogue of :meth:`_operator_for`: with the LRU
        transition cache enabled, cached lengths are served as hits and
        only the misses are built (stacked); fresh views are inserted
        back into the cache.
        """
        with self.stopwatch.measure("expm"):
            if not self._use_transition_cache(decomp):
                return self.build_operator_set(decomp, ts)
            cached: Dict[float, object] = {}
            missing: List[float] = []
            for t in ts:
                key = (decomp.token, float(t))
                op = self._transition_cache.get(key)
                if op is not None:
                    self.transition_hits += 1
                    self._transition_cache.move_to_end(key)
                    cached[float(t)] = op
                else:
                    self.transition_misses += 1
                    missing.append(float(t))
            if not missing:
                return BatchedOperatorSet(cached)
            built = self.build_operator_set(decomp, missing)
            for t, op in built.operators.items():
                self._transition_cache[(decomp.token, t)] = op
            while len(self._transition_cache) > self._transition_cache_size:
                self._transition_cache.popitem(last=False)
            cached.update(built.operators)
            return BatchedOperatorSet(cached, built.stack)

    # ------------------------------------------------------------------
    def _decompose(self, matrix: CodonRateMatrix):
        with self.stopwatch.measure("eigh"):
            if self._decomp_cache is not None:
                return self._decomp_cache.get(matrix, counter=self.counter)
            if self._guarded_decomposer is not None:
                return self._guarded_decomposer(matrix, self.counter)
            return decompose(matrix, driver=self.eigh_driver, counter=self.counter)

    def _make_operator(self, decomp, t: float) -> object:
        """Build (and, when recovery is on, guard) one branch operator."""
        if isinstance(decomp, PadeFallback):
            try:
                p = transition_matrix_scipy(decomp.q, t)
                if self.recovery is not None:
                    p = guard_transition_matrix(
                        p, self.recovery, self.events, t=t, engine=self.name, path="pade"
                    )
            except (ValueError, ArithmeticError, np.linalg.LinAlgError, RuntimeWarning) as exc:
                # Rung 4: a failed Padé residual check degrades to the
                # uniformized kernel instead of a hard NumericalError
                # (re-raised unchanged when rung 4 is disabled).
                return self._recover_operator(decomp, t, exc, path="pade")
            self._note_rung("pade")
            return self._wrap_probability_matrix(p, decomp.pi)
        op = self._build_operator(decomp, t)
        if self.recovery is not None:
            try:
                op = self._guard_operator(op, t)
            except NumericalError as exc:
                if self.recovery.cross_check:
                    # Opt-in: validate the failing spectral P(t) against
                    # the uniformized witness and serve the witness.
                    return self._recover_operator(decomp, t, exc, path="spectral",
                                                  failing=op)
                raise
        self._note_rung(getattr(decomp, "rung", "evr"))
        return op

    # ------------------------------------------------------------------
    # Rung 4: uniformized recovery (DESIGN.md §13)
    # ------------------------------------------------------------------
    def _note_rung(self, rung: str, count: int = 1) -> None:
        if count:
            self.rung_usage[rung] = self.rung_usage.get(rung, 0) + count

    def _uniformized_for(self, decomp) -> UniformizedOperator:
        """The per-decomposition uniformized kernel (cached R powers)."""
        uni = self._uniformized.get(decomp.token)
        if uni is None:
            q = decomp.q if isinstance(decomp, PadeFallback) else decomp.reconstruct_q()
            tol = (
                self.recovery.uniformization_tol if self.recovery is not None else 1e-12
            )
            uni = UniformizedOperator(q, decomp.pi, tol=tol, counter=self.counter)
            self._uniformized[decomp.token] = uni
        return uni

    def _recover_operator(
        self, decomp, t: float, exc: BaseException, path: str, failing: object = None
    ) -> object:
        """Serve one branch operator from the uniformized kernel (rung 4).

        Called after ``path``'s P(t) failed its guard with ``exc``.
        Records ``uniformization_fallback`` (plus the cross-check
        attribution when enabled and a failing operator is at hand); if
        the uniformized P(t) *also* fails, emits one structured
        ``ladder_exhausted`` event carrying every rung's rejection
        reason and raises a matching :class:`NumericalError` — never
        the last rung's raw LAPACK/scipy exception.
        """
        rec = self.recovery
        if rec is None or not rec.uniformization:
            raise exc
        history = [list(pair) for pair in getattr(decomp, "ladder", ())]
        history.append([path, str(exc)])
        try:
            uni = self._uniformized_for(decomp)
            p = uni.transition_matrix(t)
            p = guard_transition_matrix(
                p, rec, self.events, t=t, engine=self.name, path="uniformization"
            )
        except (ValueError, ArithmeticError, np.linalg.LinAlgError, RuntimeWarning) as last:
            history.append(["uniformization", str(last)])
            detail = "; ".join(f"{rung}: {why}" for rung, why in history)
            if self.events is not None:
                self.events.record(
                    "ladder_exhausted", "expm", detail,
                    t=float(t), engine=self.name, rungs_failed=len(history),
                )
            raise NumericalError(
                f"every recovery rung failed for P(t={float(t):g}) — {detail}",
                where="expm",
                context={"t": float(t), "engine": self.name, "rungs": detail},
            ) from last
        if self.events is not None:
            self.events.record(
                "uniformization_fallback", "expm",
                f"{path} P(t) guard failed ({exc}); served by uniformized kernel",
                t=float(t), path=path, mu=float(uni.mu), engine=self.name,
            )
            if rec.cross_check and failing is not None:
                self._cross_check(decomp, t, failing, p, path)
        self._note_rung("uniformization")
        return self._wrap_probability_matrix(p, decomp.pi)

    def _cross_check(
        self, decomp, t: float, failing: object, p_uni: np.ndarray, path: str
    ) -> None:
        """Attribute a guard failure: which path diverged from the witness?

        Compares the failing path's dense P(t) — and, for a spectral
        failure, an independently computed Padé P(t) — against the
        uniformized result, recording one ``uniformization_cross_check``
        event whose ``diverged`` context names every path beyond
        ``cross_check_tol``.
        """
        rec = self.recovery
        verdicts: List[Tuple[str, float]] = []
        p_fail = np.asarray(self._operator_probability_matrix(failing), dtype=float)
        dev = (
            float(np.max(np.abs(p_fail - p_uni)))
            if np.all(np.isfinite(p_fail))
            else float("inf")
        )
        verdicts.append((path, dev))
        if not isinstance(decomp, PadeFallback):
            try:
                p_pade = transition_matrix_scipy(decomp.reconstruct_q(), t)
                dev_pade = (
                    float(np.max(np.abs(p_pade - p_uni)))
                    if np.all(np.isfinite(p_pade))
                    else float("inf")
                )
            except (ValueError, ArithmeticError, np.linalg.LinAlgError, RuntimeWarning):
                dev_pade = float("inf")
            verdicts.append(("pade", dev_pade))
        diverged = [name for name, d in verdicts if not d <= rec.cross_check_tol]
        detail = "; ".join(
            f"{name} {'diverged' if not d <= rec.cross_check_tol else 'agrees'}"
            f" (max|dP|={d:.3e})"
            for name, d in verdicts
        )
        ctx = {f"dev_{name}": d for name, d in verdicts}
        self.events.record(
            "uniformization_cross_check", "expm", detail,
            t=float(t), diverged=",".join(diverged) or "none", **ctx,
        )

    def _use_transition_cache(self, decomp) -> bool:
        """Whether ``decomp``'s operators should ride the LRU cache.

        Padé-built operators always do, even when the engine's default
        is off: each build is a full scipy ``expm`` (orders costlier
        than a spectral rescale) and :class:`DecompositionCache` hands
        back the *same* ``PadeFallback`` per (κ, ω) so its token is
        exactly as probe-stable as a spectral one.  The same holds for
        rung-4 results, which are keyed by the decomposition that
        failed.
        """
        return self.cache_transition_matrices or isinstance(decomp, PadeFallback)

    def _operator_for(self, decomp: SpectralDecomposition, t: float) -> object:
        if self._use_transition_cache(decomp):
            key = (decomp.token, float(t))
            op = self._transition_cache.get(key)
            if op is not None:
                self.transition_hits += 1
                self._transition_cache.move_to_end(key)
                return op
            self.transition_misses += 1
            with self.stopwatch.measure("expm"):
                op = self._make_operator(decomp, t)
            self._transition_cache[key] = op
            # LRU eviction: drop the coldest entry, never the whole
            # working set (a full clear() thrashes the hot branches).
            while len(self._transition_cache) > self._transition_cache_size:
                self._transition_cache.popitem(last=False)
            return op
        with self.stopwatch.measure("expm"):
            return self._make_operator(decomp, t)

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for the caches (batch-scan metrics).

        ``clv_propagations``/``clv_reuses`` cover the incremental CLV
        layer: applications executed versus served from state buffers.
        """
        stats = {
            "transition_hits": self.transition_hits,
            "transition_misses": self.transition_misses,
            "transition_size": len(self._transition_cache),
            "clv_propagations": self.clv_propagations,
            "clv_reuses": self.clv_reuses,
            "operator_builds": self.operator_builds,
            "operator_build_saves": self.operator_build_saves,
            "operator_builds_naive": self.operator_builds_naive,
        }
        if self._decomp_cache is not None:
            stats.update(
                decomposition_hits=self._decomp_cache.hits,
                decomposition_misses=self._decomp_cache.misses,
                decomposition_size=len(self._decomp_cache),
            )
        if self._uniformized:
            # Rung-4 / mapping kernel reuse: R-power products actually
            # run vs served from the per-decomposition caches, and the
            # endpoint-conditioned histories drawn off those kernels.
            kernels = list(self._uniformized.values())
            stats["uniformized_kernels"] = len(kernels)
            stats["uniformized_power_builds"] = sum(u.power_builds for u in kernels)
            stats["uniformized_power_hits"] = sum(u.power_hits for u in kernels)
            stats["uniformized_draws_served"] = sum(u.draws_served for u in kernels)
        for rung, count in self.rung_usage.items():
            stats[f"rung_{rung}"] = count
        return stats

    # ------------------------------------------------------------------
    def bind(
        self,
        tree: Tree,
        data: Union[CodonAlignment, PatternAlignment],
        model: CodonSiteModel,
        pi: Optional[np.ndarray] = None,
        freq_method: str = "f3x4",
        incremental: bool = False,
        batched: Optional[bool] = None,
        leaf_clvs: Optional[Sequence[np.ndarray]] = None,
    ) -> "BoundLikelihood":
        """Bind this engine to a (tree, alignment, model) problem.

        ``pi`` defaults to the CodeML-style empirical estimate
        (``freq_method``, default F3x4) computed from the *uncompressed*
        alignment.  ``incremental=True`` enables dirty-path CLV caching
        and cross-class subtree sharing on the binding (bit-identical to
        full re-pruning; see :class:`BoundLikelihood`).  ``batched``
        selects the stacked-operator / level-order evaluation path
        (``None`` → this engine's default: on for ``slim-v2``, off
        elsewhere); also bit-identical.  ``leaf_clvs`` (indexed by leaf
        node index, as :func:`build_leaf_clvs` returns) lets several
        bindings over the *same* (topology, pattern alignment) — e.g.
        the survey mapper's per-candidate foreground marks — share one
        leaf-CLV build instead of redoing it per binding; the caller
        guarantees the leaf order matches ``tree.leaf_names()``.
        """
        if isinstance(data, PatternAlignment):
            patterns = data
            if pi is None:
                raise ValueError(
                    "pass pi explicitly when binding a pre-compressed PatternAlignment"
                )
        else:
            if pi is None:
                # Gap ('---') and ambiguous ('NNN') codons are skipped by
                # the estimators themselves.
                pi = estimate_codon_frequencies(
                    data.to_sequences(), method=freq_method, code=self.code
                )
            patterns = compress_patterns(data)
        return BoundLikelihood(
            self, tree, patterns, model, np.asarray(pi, dtype=float),
            incremental=incremental,
            batched=self.batched if batched is None else bool(batched),
            leaf_clvs=leaf_clvs,
        )


class BaselineEngine(LikelihoodEngine):
    """The CodeML v4.4c comparator (see module docstring)."""

    name = "codeml"
    eigh_driver = "ev"
    bundled = False

    def _build_operator(self, decomp: SpectralDecomposition, t: float) -> np.ndarray:
        return transition_matrix_einsum(decomp, t, counter=self.counter)

    def _propagate(self, operator: np.ndarray, clv: np.ndarray) -> np.ndarray:
        n, n_patterns = clv.shape
        out = np.empty_like(clv, order="F")
        for p in range(n_patterns):
            np.einsum("ij,j->i", operator, clv[:, p], out=out[:, p], optimize=False)
        if self.counter is not None:
            self.counter.add("clv:einsum-matvec", n_patterns * gemv_flops(n, n),
                             reads=n_patterns * n * n)
        return out

    def _count_saved_propagation(self, shape: Tuple[int, int]) -> None:
        n, n_patterns = shape
        self.counter.note_saved("clv:einsum-matvec", n_patterns * gemv_flops(n, n),
                                reads=n_patterns * n * n)

    def _note_saved_build(self, decomp) -> None:
        if self.counter is not None:
            n = decomp.n_states
            self.counter.note_saved("expm:einsum(eq9)", gemm_flops(n, n, n),
                                    reads=2 * gemm_matrix_reads(n, n))


class SlimEngine(LikelihoodEngine):
    """SlimCodeML as evaluated in the paper: dsyrk expm + per-site dgemv.

    ``bundled=True`` upgrades the CLV step to one ``dgemm`` over all
    patterns — the §III-B optimisation the paper describes but excluded
    from its evaluated prototype; off by default for fidelity.
    """

    name = "slim"
    eigh_driver = "evr"
    bundled = False

    def __init__(self, *args, bundled: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bundled = bundled

    def _build_operator(self, decomp: SpectralDecomposition, t: float) -> np.ndarray:
        # Fortran layout once at build time: every per-pattern dgemv (and
        # the bundled dgemm) then takes the operator as-is, instead of
        # re-deriving a BLAS-ready operand on each CLV application.
        return np.asfortranarray(transition_matrix_syrk(decomp, t, counter=self.counter))

    def _wrap_probability_matrix(self, p: np.ndarray, pi: np.ndarray) -> np.ndarray:
        return np.asfortranarray(p)

    def _propagate(self, operator: np.ndarray, clv: np.ndarray) -> np.ndarray:
        n, n_patterns = clv.shape
        if self.bundled:
            out = dgemm(1.0, operator, clv)
            if self.counter is not None:
                self.counter.add("clv:dgemm", gemm_flops(n, n_patterns, n), reads=n * n)
            return out
        out = np.empty_like(clv, order="F")
        for p in range(n_patterns):
            # Writing straight into the F-contiguous output column skips
            # the per-site result allocation + copy-back of `out[:, p] = ...`.
            dgemv(1.0, operator, clv[:, p], beta=0.0, y=out[:, p], overwrite_y=1)
        if self.counter is not None:
            self.counter.add("clv:dgemv", n_patterns * gemv_flops(n, n),
                             reads=n_patterns * n * n)
            self.counter.note_saved("clv:dgemv-writeback", reads=n_patterns * n)
        return out

    def _count_saved_propagation(self, shape: Tuple[int, int]) -> None:
        n, n_patterns = shape
        if self.bundled:
            self.counter.note_saved("clv:dgemm", gemm_flops(n, n_patterns, n),
                                    reads=n * n)
        else:
            self.counter.note_saved("clv:dgemv", n_patterns * gemv_flops(n, n),
                                    reads=n_patterns * n * n)

    def _build_operator_stack(
        self, decomp: SpectralDecomposition, ts: Sequence[float]
    ) -> np.ndarray:
        return stacked_syrk_operators(decomp, ts, counter=self.counter)

    def _note_saved_build(self, decomp) -> None:
        if self.counter is not None:
            n = decomp.n_states
            self.counter.note_saved("expm:dsyrk", syrk_flops(n, n),
                                    reads=gemm_matrix_reads(n, n))


class SlimV2Engine(LikelihoodEngine):
    """Eq. 12–13 + §III-B bundling: symmetric branch matrices, BLAS-3 CLVs.

    The branch operator is the symmetric ``M = Ŷ Ŷᵀ`` with
    ``P(t)·w = M·(Πw)``; propagation Π-scales the child CLV (O(n) per
    pattern) and applies one ``dsymm`` over all patterns (or per-site
    ``dsymv`` when ``bundled=False``).
    """

    name = "slim-v2"
    eigh_driver = "evr"
    bundled = True
    default_batched = True
    # The batched path memoizes class decompositions across evaluations,
    # so during a fit's finite-difference gradient the decomposition
    # tokens stay stable and a single-branch probe hits the transition
    # cache on every *other* branch — the dominant win of DESIGN.md §10.
    default_cache_transitions = True

    def __init__(self, *args, bundled: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bundled = bundled

    def _build_operator(self, decomp: SpectralDecomposition, t: float) -> tuple:
        # M is exactly symmetric by construction (lower + lowerᵀ), so the
        # Fortran relayout at build time changes which triangle dsymm
        # reads but not a single value — and drops the per-application
        # transpose-view/relayout work from the hot path.
        m = symmetric_branch_matrix(decomp, t, counter=self.counter)
        return (np.asfortranarray(m), decomp.pi)

    def _wrap_probability_matrix(self, p: np.ndarray, pi: np.ndarray) -> tuple:
        # Rebuild the symmetric form from a Padé P(t): M = P Π^{-1} is
        # symmetric in exact arithmetic; averaging with its transpose
        # removes the Padé round-off asymmetry the dsymm kernel would
        # otherwise silently half-read.
        m = p * (1.0 / pi)[None, :]
        return (np.asfortranarray(0.5 * (m + m.T)), pi)

    def _guard_operator(self, operator: tuple, t: float) -> tuple:
        assert self.recovery is not None
        m, pi = operator
        guard_symmetric_operator(
            m, pi, self.recovery, self.events, t=t, engine=self.name
        )
        return operator

    def _propagate(self, operator: tuple, clv: np.ndarray) -> np.ndarray:
        m, pi = operator
        n, n_patterns = clv.shape
        # Π-scale into a preallocated F buffer (no C-temp + relayout copy).
        scaled = np.empty((n, n_patterns), order="F")
        np.multiply(pi[:, None], clv, out=scaled)
        if self.bundled:
            out = dsymm(1.0, m, scaled, side=0, lower=0)
            if self.counter is not None:
                self.counter.add("clv:dsymm", symm_flops(n, n_patterns),
                                 reads=n * (n + 1) // 2)
            return out
        out = np.empty_like(clv, order="F")
        for p in range(n_patterns):
            dsymv(1.0, m, scaled[:, p], beta=0.0, y=out[:, p], overwrite_y=1, lower=0)
        if self.counter is not None:
            self.counter.add("clv:dsymv", n_patterns * symv_flops(n),
                             reads=n_patterns * n * (n + 1) // 2)
            self.counter.note_saved("clv:dsymv-writeback", reads=n_patterns * n)
        return out

    def _count_saved_propagation(self, shape: Tuple[int, int]) -> None:
        n, n_patterns = shape
        if self.bundled:
            self.counter.note_saved("clv:dsymm", symm_flops(n, n_patterns),
                                    reads=n * (n + 1) // 2)
        else:
            self.counter.note_saved("clv:dsymv", n_patterns * symv_flops(n),
                                    reads=n_patterns * n * (n + 1) // 2)

    def _build_operator_stack(
        self, decomp: SpectralDecomposition, ts: Sequence[float]
    ) -> np.ndarray:
        return stacked_symmetric_operators(decomp, ts, counter=self.counter)

    def _operator_from_view(self, view: np.ndarray, decomp) -> tuple:
        return (view, decomp.pi)

    def _operator_probability_matrix(self, operator: tuple) -> np.ndarray:
        # P(t)·w = M·(Πw), column-wise: P = M·Π.
        m, pi = operator
        return m * pi[None, :]

    def _note_saved_build(self, decomp) -> None:
        if self.counter is not None:
            n = decomp.n_states
            self.counter.note_saved("expm:dsyrk(sym-branch)", syrk_flops(n, n),
                                    reads=gemm_matrix_reads(n, n))

    def _propagate_level(
        self, items: Sequence[Tuple[object, np.ndarray]]
    ) -> List[np.ndarray]:
        """One fused level pass: shared Π-scale workspace, one output stack.

        Distinct per-branch operators rule out a *single* ``dsymm`` for
        the whole level (and at n = 61 a fused wide call is no faster —
        BLAS is already at peak); what the level fuses is everything
        around the kernels: one workspace allocation, one output stack,
        one counter/stopwatch entry.  Each block is still the per-branch
        arithmetic on identically-laid-out operands (``dsymm`` into an
        F-contiguous column view with ``beta=0`` is bit-identical to a
        standalone call), so results match :meth:`_propagate` bit for
        bit.
        """
        if not self.bundled or len(items) <= 1:
            return [self._propagate(op, clv) for op, clv in items]
        n, n_patterns = items[0][1].shape
        k = len(items)
        scaled = np.empty((n, n_patterns * k), order="F")
        for i, (op, clv) in enumerate(items):
            np.multiply(
                op[1][:, None], clv, out=scaled[:, i * n_patterns : (i + 1) * n_patterns]
            )
        out = np.empty((n, n_patterns * k), order="F")
        for i, (op, _) in enumerate(items):
            block = slice(i * n_patterns, (i + 1) * n_patterns)
            view = out[:, block]
            res = dsymm(1.0, op[0], scaled[:, block], c=view,
                        side=0, lower=0, overwrite_c=1)
            if res is not view and not np.shares_memory(res, view):  # pragma: no cover
                view[...] = res
        if self.counter is not None:
            self.counter.add("clv:dsymm", k * symm_flops(n, n_patterns),
                             reads=k * (n * (n + 1) // 2))
        return [out[:, i * n_patterns : (i + 1) * n_patterns] for i in range(k)]


class BoundLikelihood:
    """A (engine, tree, patterns, model) problem ready for evaluation.

    Owns a private branch-length vector (ordered like
    :meth:`Tree.branch_lengths`) so evaluations never mutate the caller's
    tree.  Exposes exactly what the optimizer and the empirical-Bayes
    step need.

    With ``incremental=True`` the binding keeps per-class
    :class:`~repro.likelihood.pruning.PruningState` buffers between
    evaluations and recomputes only dirty paths (DESIGN.md §9):

    * Dirty branches are derived from *exact value differences* against
      the last committed evaluation — same model values and one changed
      branch length re-prune one root path; changed model values
      invalidate everything.  Correctness therefore never depends on the
      optional ``touched`` hint.
    * ``touched`` (a finite-difference probe's coordinate hint) marks an
      evaluation as a transient probe: it is evaluated against the
      committed base state via derived (copy-on-write) states and does
      not advance it, so successive gradient probes each dirty one path
      instead of two.
    * Site classes sharing their background ω (model A pairs 0↔2a and
      1↔2b) alias each other's buffers and re-prune only the
      foreground-to-root path — or nothing when the foreground ω is
      also equal (e.g. H0's 1↔2b).

    All reuse is bit-identical to full re-pruning (exact float
    equality), enforced by ``tests/test_incremental.py``.
    """

    def __init__(
        self,
        engine: LikelihoodEngine,
        tree: Tree,
        patterns: PatternAlignment,
        model: CodonSiteModel,
        pi: np.ndarray,
        incremental: bool = False,
        batched: bool = False,
        leaf_clvs: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        tree.validate_branch_lengths()
        if model.requires_foreground:
            tree.require_single_foreground()
        leaf_names = tree.leaf_names()
        alignment = patterns.alignment
        if set(leaf_names) != set(alignment.names):
            missing = set(leaf_names) ^ set(alignment.names)
            raise ValueError(f"tree and alignment taxa differ: {sorted(missing)}")
        self.engine = engine
        self.tree = tree
        self.patterns = patterns
        self.model = model
        self.pi = pi
        self.n_evaluations = 0

        # Leaf CLVs indexed by leaf node index (alignment rows reordered);
        # an injected list (survey mapping's shared build) is trusted to
        # match this binding's leaf order.
        self._leaf_clvs = (
            leaf_clvs
            if leaf_clvs is not None
            else build_leaf_clvs(alignment.subset_taxa(leaf_names))
        )

        # Static branch structure; lengths layered in per evaluation.
        non_root = [n for n in tree.nodes if not n.is_root]
        self._pos_of_child = {node.index: pos for pos, node in enumerate(non_root)}
        self._rows = [
            (child, parent, self._pos_of_child[child], fg)
            for child, parent, _, fg in tree.branch_table()
        ]
        self._n_nodes = len(tree.nodes)
        self.branch_lengths = np.array(tree.branch_lengths(), dtype=float)

        # Incremental-evaluation state (see class docstring / DESIGN.md §9).
        self.incremental = bool(incremental)
        self._child_of_pos = {pos: child for child, _, pos, _ in self._rows}
        self._fg_children = [child for child, _, _, fg in self._rows if fg]
        self._inc_states: Dict[int, PruningState] = {}
        self._inc_values: Optional[Dict[str, float]] = None
        self._inc_lengths: Optional[np.ndarray] = None
        self._class_memo: Optional[Tuple[Dict[str, float], SiteClassGraph, Dict]] = None
        self._class_states_memo: Optional[Tuple[tuple, tuple]] = None

        # Batched evaluation (stacked operators + level-order pruning,
        # DESIGN.md §10); the level schedule is static per binding.
        self.batched = bool(batched)
        self._schedule: Optional[LevelSchedule] = None
        # Leaf-branch contributions are pure functions of
        # (decomposition token, t, leaf): the leaf CLV never changes and
        # tokens are process-unique, so a hit is bit-identical to
        # recomputation.  LRU-bounded; ~n_patterns·n_states·8 bytes per
        # entry.
        self._leaf_contrib_memo: "OrderedDict[Tuple[int, float, int], np.ndarray]" = (
            OrderedDict()
        )
        self._leaf_contrib_cap = max(256, 16 * len(self._leaf_clvs))

    def set_incremental(self, enabled: bool) -> None:
        """Toggle incremental evaluation, dropping any cached state."""
        self.incremental = bool(enabled)
        self._invalidate_incremental()

    def _invalidate_incremental(self) -> None:
        self._inc_states = {}
        self._inc_values = None
        self._inc_lengths = None
        self._class_memo = None
        self._class_states_memo = None

    # ------------------------------------------------------------------
    @property
    def n_branches(self) -> int:
        return len(self._rows)

    @property
    def n_patterns(self) -> int:
        return self.patterns.n_patterns

    def set_branch_lengths(self, lengths: Sequence[float]) -> None:
        lengths = np.asarray(lengths, dtype=float)
        if lengths.shape != self.branch_lengths.shape:
            raise ValueError(
                f"expected {self.branch_lengths.shape[0]} branch lengths, got {lengths.shape}"
            )
        if np.any(lengths < 0) or not np.all(np.isfinite(lengths)):
            raise ValueError("branch lengths must be finite and non-negative")
        self.branch_lengths = lengths.copy()

    # ------------------------------------------------------------------
    def _graph_and_decomps(self, values: Dict[str, float]):
        """Site-class graph + per-ω decompositions, memoised when stateful.

        The graph carries the class nodes plus their derived sharing
        edges (:mod:`repro.models.class_graph`); every evaluation mode
        below consumes it instead of hard-coding the model-A class
        shape.  Gradient probes of branch-length coordinates leave the
        model values untouched, so rebuilding the rate matrices per
        probe would dominate a dirty-path evaluation; one exact-value
        memo entry (last values seen) removes that cost.
        Non-incremental bindings keep the historical per-evaluation
        rebuild bit-for-bit.
        """
        memo = self._class_memo
        if memo is not None and memo[0] == values:
            return memo[1], memo[2]
        graph = self.model.site_class_graph(values)
        matrices = build_class_matrices(values["kappa"], graph.nodes, self.pi, self.engine.code)
        decomps = {omega: self.engine._decompose(m) for omega, m in matrices.items()}
        if self.incremental or self.batched:
            self._class_memo = (dict(values), graph, decomps)
        return graph, decomps

    def _note_reuse(self, contribution: np.ndarray) -> None:
        engine = self.engine
        engine.clv_reuses += 1
        if engine.counter is not None:
            engine._count_saved_propagation(contribution.shape)

    def _evaluate_classes(
        self,
        values: Dict[str, float],
        lengths: np.ndarray,
        touched: "Optional[object]" = None,
        skip_zero: bool = False,
    ) -> Tuple[List, SiteClassGraph]:
        if self.batched:
            results, graph, _ = self._evaluate_batched(
                values, lengths, touched, skip_zero
            )
            return results, graph
        graph, decomps = self._graph_and_decomps(values)
        operator_memo: Dict[Tuple[float, float], object] = {}

        def factory_for(cls: SiteClass):
            def transition(t: float, foreground: bool) -> object:
                omega = cls.omega_foreground if foreground else cls.omega_background
                key = (omega, t)
                op = operator_memo.get(key)
                if op is None:
                    op = self.engine._operator_for(decomps[omega], t)
                    operator_memo[key] = op
                return op

            return transition

        def propagate(op: object, clv: np.ndarray) -> np.ndarray:
            self.engine.clv_propagations += 1
            with self.engine.stopwatch.measure("clv"):
                return self.engine._propagate(op, clv)

        rows = [
            (child, parent, float(lengths[pos]), fg)
            for child, parent, pos, fg in self._rows
        ]
        guarded = self.engine.recovery is not None

        def guard_for(cls: SiteClass):
            if not guarded:
                return None
            return PruningGuard(
                recorder=self.engine.events,
                context={"site_class": cls.label, "engine": self.engine.name},
            )

        if not self.incremental:
            results = [
                prune_site_class(
                    rows, self._n_nodes, self._leaf_clvs, factory_for(cls), propagate,
                    guard=guard_for(cls),
                )
                for cls in graph.nodes
            ]
            return results, graph
        return self._evaluate_incremental(
            values, lengths, graph, rows, factory_for, propagate, guard_for, touched
        )

    def _has_ready_state(self, idx: int) -> bool:
        """Planner predicate: class ``idx`` has a committed pruning state."""
        state = self._inc_states.get(idx)
        return state is not None and state.ready

    def _evaluate_incremental(
        self, values, lengths, graph, rows, factory_for, propagate, guard_for, touched
    ) -> Tuple[List[PruningResult], SiteClassGraph]:
        commit = touched is None
        full = True
        dirty_children: set = set()
        if self._inc_values is not None and values == self._inc_values:
            diff = np.flatnonzero(np.asarray(lengths, dtype=float) != self._inc_lengths)
            dirty_children = {self._child_of_pos[int(p)] for p in diff}
            full = False

        plans = graph.plan(full=full, has_state=self._has_ready_state)
        try:
            results: List[PruningResult] = []
            new_states: Dict[int, PruningState] = {}
            for plan in plans:
                idx, cls = plan.index, graph.nodes[plan.index]
                if plan.mode == "derive":
                    # Cross-class subtree sharing along a graph edge:
                    # every background operator matches the base class,
                    # so subtrees not containing the foreground branch
                    # have bit-identical CLVs — alias them and re-prune
                    # only the foreground-to-root path (nothing at all
                    # on a full-share edge, e.g. H0's 1↔2b).
                    state = new_states[plan.base].derive()
                    cls_dirty = set() if plan.full_share else set(self._fg_children)
                    res = prune_site_class(
                        rows, self._n_nodes, self._leaf_clvs, factory_for(cls),
                        propagate, guard=guard_for(cls), state=state,
                        dirty=cls_dirty, on_reuse=self._note_reuse,
                    )
                elif plan.mode == "populate":
                    state = PruningState.empty(self._n_nodes)
                    res = prune_site_class(
                        rows, self._n_nodes, self._leaf_clvs, factory_for(cls),
                        propagate, guard=guard_for(cls), state=state,
                    )
                else:
                    state = self._inc_states[idx]
                    if not commit:
                        # Probe: evaluate against the base state via a
                        # copy-on-write derivation, leave it untouched.
                        state = state.derive()
                    res = prune_site_class(
                        rows, self._n_nodes, self._leaf_clvs, factory_for(cls),
                        propagate, guard=guard_for(cls), state=state,
                        dirty=dirty_children, on_reuse=self._note_reuse,
                    )
                new_states[idx] = state
                results.append(res)
        except Exception:
            # A committing evaluation may have advanced some class states
            # in place before failing; the cached base values would then
            # misdescribe them, so drop everything rather than risk a
            # stale-reuse miscomputation on the next call.
            self._invalidate_incremental()
            raise
        if commit:
            self._inc_states = new_states
            self._inc_values = dict(values)
            self._inc_lengths = np.asarray(lengths, dtype=float).copy()
        return results, graph

    # ------------------------------------------------------------------
    # Batched evaluation (DESIGN.md §10)
    # ------------------------------------------------------------------
    def _level_schedule(self) -> LevelSchedule:
        if self._schedule is None:
            self._schedule = build_level_schedule(self._rows, self._n_nodes)
        return self._schedule

    def _skipped_class_result(self) -> PruningResult:
        """Placeholder for a zero-weight class skipped without operators.

        An all-zero root CLV maps to ``-inf`` per-pattern
        log-likelihoods; :func:`logsumexp_weighted` masks zero-weight
        rows out of its max shift, so splicing this row in is bitwise
        neutral for the mixture.
        """
        n = self.engine.code.n_states
        return PruningResult(
            root_clv=np.zeros((n, self.n_patterns)),
            log_scalers=np.zeros(self.n_patterns),
        )

    def _evaluate_batched(
        self,
        values: Dict[str, float],
        lengths: np.ndarray,
        touched: "Optional[object]",
        skip_zero: bool,
    ) -> Tuple[List[PruningResult], SiteClassGraph, Dict[int, PruningState]]:
        """Stacked-operator, level-order evaluation of every site class.

        Plans the exact branch set each class will recompute (the class
        graph replays the incremental recurrence), aggregates the
        distinct (ω, t) operators those passes need, builds one stack
        per decomposition, then prunes level by level.  Non-incremental
        bindings run the same machinery over ephemeral per-evaluation
        states, which is what lets full evaluations alias
        background-tied subtrees along the graph's sharing edges (for
        model A: 0↔2a, 1↔2b) exactly like incremental ones — every
        reused CLV is bit-identical to what recomputation would produce,
        so results match the unbatched path bit for bit.

        Returns the per-class results, the class graph, and the
        per-class :class:`PruningState` dict (keyed by class index;
        absent for ``skip``-planned classes) — the states carry the
        per-node inside CLVs the stochastic-mapping sampler conditions
        on, so mapping rides the same batched pass instead of
        re-pruning privately.
        """
        graph, decomps = self._graph_and_decomps(values)
        rows = [
            (child, parent, float(lengths[pos]), fg)
            for child, parent, pos, fg in self._rows
        ]
        schedule = self._level_schedule()
        engine = self.engine
        guarded = engine.recovery is not None

        def guard_for(cls: SiteClass):
            if not guarded:
                return None
            return PruningGuard(
                recorder=engine.events,
                context={"site_class": cls.label, "engine": engine.name},
            )

        persist = self.incremental
        commit = touched is None
        full = True
        dirty_children: set = set()
        if persist and self._inc_values is not None and values == self._inc_values:
            diff = np.flatnonzero(np.asarray(lengths, dtype=float) != self._inc_lengths)
            dirty_children = {self._child_of_pos[int(p)] for p in diff}
            full = False

        # Plan: per-class evaluation mode plus the dirty set its pass
        # will use — the graph planner mirrors _evaluate_incremental's
        # choices exactly (skipped classes cannot anchor a sharing edge).
        plans = graph.plan(
            full=full,
            has_state=self._has_ready_state if persist else None,
            skip_zero=skip_zero,
        )

        def dirty_for(plan: ClassPlan) -> Optional[set]:
            if plan.mode == "derive":
                return set() if plan.full_share else set(self._fg_children)
            if plan.mode == "incremental":
                return dirty_children
            return None

        # Aggregate the distinct (ω, t) operators those passes will ask
        # for; duplicate requests (graph-edge-tied classes, equal branch
        # lengths) are built once and ledgered as saved builds.  The
        # naive ledger records the per-class-independent baseline — each
        # class pruning its full (or dirty) row set with only its own
        # operator memo, i.e. evaluation without the class graph's
        # sharing edges — so ``1 − builds/naive`` is the dedupe saving.
        requested: Dict[float, List[float]] = {}
        seen: set = set()
        for plan in plans:
            if plan.mode == "skip":
                continue
            cls = graph.nodes[plan.index]
            naive_keys = set()
            for ri in compute_recompute_rows(rows, None if full else dirty_children):
                child, parent, t, fg = rows[ri]
                omega = cls.omega_foreground if fg else cls.omega_background
                naive_keys.add((omega, t))
            engine.operator_builds_naive += len(naive_keys)
            recompute = None if plan.mode == "populate" else dirty_for(plan)
            for ri in compute_recompute_rows(rows, recompute):
                child, parent, t, fg = rows[ri]
                omega = cls.omega_foreground if fg else cls.omega_background
                key = (omega, t)
                if key in seen:
                    engine.operator_build_saves += 1
                    engine._note_saved_build(decomps[omega])
                    continue
                seen.add(key)
                engine.operator_builds += 1
                requested.setdefault(omega, []).append(t)

        opsets = {
            omega: engine.operator_set_for(decomps[omega], ts)
            for omega, ts in requested.items()
        }

        def factory_for(cls: SiteClass):
            fg_set = opsets.get(cls.omega_foreground)
            bg_set = opsets.get(cls.omega_background)

            def transition(t: float, foreground: bool) -> object:
                return (fg_set if foreground else bg_set).operators[t]

            return transition

        n_leaves = len(self._leaf_clvs)
        memo = self._leaf_contrib_memo
        memo_cap = self._leaf_contrib_cap
        stopwatch = engine.stopwatch

        def propagate_for(cls: SiteClass):
            # A leaf branch's contribution M(ω, t) · (Π · leaf_clv) is a
            # pure function of (decomposition token, t, leaf): leaf CLVs
            # are constant and tokens process-unique, so a memo hit is
            # bit-identical to recomputation (and during a gradient's
            # single-coordinate probes nearly every leaf branch hits).
            fg_tok = getattr(decomps[cls.omega_foreground], "token", None)
            bg_tok = getattr(decomps[cls.omega_background], "token", None)

            def propagate_level(items):
                contributions: List[Optional[np.ndarray]] = [None] * len(items)
                misses: List[Tuple[int, Optional[tuple], object, np.ndarray]] = []
                for j, (ri, op, clv) in enumerate(items):
                    child, _, t, fg = rows[ri]
                    key = None
                    if child < n_leaves:
                        tok = fg_tok if fg else bg_tok
                        if tok is not None:
                            key = (tok, t, child)
                            hit = memo.get(key)
                            if hit is not None:
                                memo.move_to_end(key)
                                contributions[j] = hit
                                self._note_reuse(hit)
                                continue
                    misses.append((j, key, op, clv))
                if misses:
                    engine.clv_propagations += len(misses)
                    start = time.perf_counter()
                    outs = engine._propagate_level(
                        [(op, clv) for _, _, op, clv in misses]
                    )
                    stopwatch.add("clv", time.perf_counter() - start)
                    for (j, key, _, _), out in zip(misses, outs):
                        contributions[j] = out
                        if key is not None:
                            memo[key] = out
                    while len(memo) > memo_cap:
                        memo.popitem(last=False)
                return contributions

            return propagate_level

        try:
            results: List[PruningResult] = []
            new_states: Dict[int, PruningState] = {}
            for plan in plans:
                if plan.mode == "skip":
                    results.append(self._skipped_class_result())
                    continue
                idx, cls = plan.index, graph.nodes[plan.index]
                cls_dirty = dirty_for(plan)
                if plan.mode == "derive":
                    state = new_states[plan.base].derive()
                    res = prune_site_class_batched(
                        rows, schedule, self._leaf_clvs, factory_for(cls),
                        propagate_for(cls), state, guard=guard_for(cls),
                        dirty=cls_dirty, on_reuse=self._note_reuse,
                    )
                elif plan.mode == "populate":
                    state = PruningState.empty(self._n_nodes)
                    res = prune_site_class_batched(
                        rows, schedule, self._leaf_clvs, factory_for(cls),
                        propagate_for(cls), state, guard=guard_for(cls),
                    )
                else:
                    state = self._inc_states[idx]
                    if not commit:
                        state = state.derive()
                    res = prune_site_class_batched(
                        rows, schedule, self._leaf_clvs, factory_for(cls),
                        propagate_for(cls), state, guard=guard_for(cls),
                        dirty=cls_dirty, on_reuse=self._note_reuse,
                    )
                new_states[idx] = state
                results.append(res)
        except Exception:
            self._invalidate_incremental()
            raise
        if persist and commit:
            self._inc_states = new_states
            self._inc_values = dict(values)
            self._inc_lengths = np.asarray(lengths, dtype=float).copy()
        return results, graph, new_states

    def class_states(
        self,
        values: Dict[str, float],
        branch_lengths: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, SiteClassGraph, Dict, Dict[int, PruningState]]:
        """Per-class inside CLVs via one batched level-order pass.

        The stochastic-mapping sampler's data plane: one evaluation
        fills every internal node's CLV for every site class (sharing
        plan included — background-tied classes alias subtrees), so the
        sampler never re-prunes privately.  Runs the batched driver
        regardless of this binding's ``batched`` flag — the driver only
        needs the engine hooks, and engines without a stacked kernel
        fall back to per-branch builds inside it.

        The decompositions handed back are the exact objects the pass
        evaluated with: the memo is pinned for the duration of the
        inner call so their tokens stay aligned with the transition
        cache and the uniformized kernels the sampler will key on.

        Returns ``(class_lnl, graph, decomps, states)`` where
        ``class_lnl`` is the ``(n_classes, n_patterns)``
        :func:`site_class_log_likelihoods` matrix (zero-weight classes
        included — ``skip_zero`` is off) and ``states`` maps class
        index → :class:`PruningState` with every node's CLV filled.
        """
        lengths = (
            np.asarray(branch_lengths, dtype=float)
            if branch_lengths is not None
            else self.branch_lengths
        )
        key = (tuple(sorted(values.items())), lengths.tobytes())
        if self._class_states_memo is not None and self._class_states_memo[0] == key:
            return self._class_states_memo[1]
        graph, decomps = self._graph_and_decomps(values)
        saved_memo = self._class_memo
        self._class_memo = (dict(values), graph, decomps)
        try:
            results, _, states = self._evaluate_batched(
                values, lengths, None, False
            )
        finally:
            if not (self.incremental or self.batched):
                self._class_memo = saved_memo
        class_lnl = site_class_log_likelihoods(results, self.pi)
        self.n_evaluations += 1
        out = (class_lnl, graph, decomps, states)
        # PruningState CLVs are immutable-once-written and the sampler
        # only reads them, so caching the last point is safe; mapping
        # is typically re-drawn at one MLE (more draws, serial gate,
        # several seeds), which makes the repeat hit the common case.
        self._class_states_memo = (key, out)
        return out

    def log_likelihood(
        self,
        values: Dict[str, float],
        branch_lengths: Optional[Sequence[float]] = None,
        touched: "Optional[object]" = None,
    ) -> float:
        """Evaluate lnL at ``values`` (model params) and branch lengths.

        ``touched`` (incremental bindings only) marks this evaluation as
        a transient finite-difference probe: either ``"model"`` or a
        tuple of branch-length positions the caller perturbed.  The hint
        is advisory — dirty paths are always derived from exact value
        differences — but a hinted evaluation does not advance the
        cached base state, so a gradient's probes each re-prune one
        path instead of two.
        """
        if touched is not None and not self.incremental:
            raise ValueError("touched hints require an incremental=True binding")
        lengths = (
            np.asarray(branch_lengths, dtype=float)
            if branch_lengths is not None
            else self.branch_lengths
        )
        results, graph = self._evaluate_classes(
            values, lengths, touched=touched, skip_zero=True
        )
        class_lnl = site_class_log_likelihoods(results, self.pi)
        if self.engine.recovery is not None:
            check_finite_site_log_likelihoods(
                class_lnl,
                recorder=self.engine.events,
                class_labels=list(graph.labels),
                engine=self.engine.name,
            )
        lnl, _ = mixture_log_likelihood(
            results, self.pi, graph.proportions, self.patterns.weights, class_lnl=class_lnl
        )
        self.n_evaluations += 1
        return lnl

    def site_class_matrix(
        self,
        values: Dict[str, float],
        branch_lengths: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-class per-pattern log-likelihoods and class proportions.

        The inputs to NEB/BEB site classification
        (:mod:`repro.optimize.beb`).
        """
        lengths = (
            np.asarray(branch_lengths, dtype=float)
            if branch_lengths is not None
            else self.branch_lengths
        )
        results, graph = self._evaluate_classes(values, lengths)
        class_lnl = site_class_log_likelihoods(results, self.pi)
        if self.engine.recovery is not None:
            check_finite_site_log_likelihoods(
                class_lnl,
                recorder=self.engine.events,
                class_labels=list(graph.labels),
                engine=self.engine.name,
            )
        self.n_evaluations += 1
        return class_lnl, graph.proportions


_ENGINES = {
    "codeml": BaselineEngine,
    "baseline": BaselineEngine,
    "slim": SlimEngine,
    "slimcodeml": SlimEngine,
    "slim-v2": SlimV2Engine,
    "slimv2": SlimV2Engine,
}


def make_engine(name: str, **kwargs) -> LikelihoodEngine:
    """Engine factory by CLI-friendly name (see module docstring table)."""
    try:
        cls = _ENGINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {sorted(set(_ENGINES))}"
        ) from None
    return cls(**kwargs)
