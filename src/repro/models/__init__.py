"""Codon model layer: site-class mixtures over branch categories.

Every model here reduces to the same engine-facing description: a list
of :class:`~repro.models.base.SiteClass` entries, each with a mixture
proportion and an ω for the *background* and *foreground* branch
categories (paper Table I), wrapped in a validated
:class:`~repro.models.class_graph.SiteClassGraph` whose sharing edges
the engines exploit.  The branch-site model A uses four classes with
distinct fore/background ω, the BS-REL family generalises it to 2K
classes, and the site models (M1a/M2a) and M0 are degenerate cases with
identical ω on both categories.
"""

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.branch import TwoRatioModel
from repro.models.branch_site import BranchSiteModelA
from repro.models.bsrel import BSRELModel
from repro.models.class_graph import ClassPlan, SharingEdge, SiteClassGraph
from repro.models.m0 import M0Model
from repro.models.parameters import IntervalTransform, PositiveTransform, Transform
from repro.models.registry import DEFAULT_MODEL_SPEC, ModelSpec, resolve_model_spec
from repro.models.sites import M1aModel, M2aModel

__all__ = [
    "BranchSiteModelA",
    "BSRELModel",
    "ClassPlan",
    "CodonSiteModel",
    "DEFAULT_MODEL_SPEC",
    "IntervalTransform",
    "M0Model",
    "M1aModel",
    "M2aModel",
    "ModelSpec",
    "PositiveTransform",
    "SharingEdge",
    "SiteClass",
    "SiteClassGraph",
    "Transform",
    "TwoRatioModel",
]
