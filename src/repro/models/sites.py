"""Site models M1a (nearly neutral) and M2a (positive selection).

These are the site-heterogeneous models of Yang et al.; they share all
machinery with the branch-site model (same mixture interface, same
engines) but apply the same ω on every branch — the degenerate case
where the foreground category equals the background.  Implemented as
the paper's §V-B extension ("the optimized likelihood computation can
also be applied to further maximum likelihood-based evolutionary
models"); the M1a/M2a LRT is the classic sites test for positive
selection.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.parameters import (
    IntervalTransform,
    PositiveTransform,
    simplex_pack,
    simplex_unpack,
)
from repro.utils.rng import RngLike, make_rng

__all__ = ["M1aModel", "M2aModel"]

_KAPPA = PositiveTransform(lower=0.0)
_OMEGA0 = IntervalTransform(0.0, 1.0)
_OMEGA2 = PositiveTransform(lower=1.0)
_UNIT = IntervalTransform(0.0, 1.0)


class M1aModel(CodonSiteModel):
    """M1a: two classes, conserved (ω0 < 1, proportion p0) and neutral (ω = 1)."""

    param_names: Tuple[str, ...] = ("kappa", "omega0", "p0")
    name = "M1a (nearly neutral)"

    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        return np.array(
            [
                _KAPPA.to_unconstrained(values["kappa"]),
                _OMEGA0.to_unconstrained(values["omega0"]),
                _UNIT.to_unconstrained(values["p0"]),
            ]
        )

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (3,):
            raise ValueError(f"M1a expects 3 values, got shape {x.shape}")
        return {
            "kappa": _KAPPA.to_constrained(x[0]),
            "omega0": _OMEGA0.to_constrained(x[1]),
            "p0": _UNIT.to_constrained(x[2]),
        }

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omega0, p0 = values["omega0"], values["p0"]
        return [
            SiteClass("0", p0, omega0, omega0),
            SiteClass("1", 1.0 - p0, 1.0, 1.0),
        ]

    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        start = {"kappa": 2.0, "omega0": 0.5, "p0": 0.7}
        if rng is not None:
            gen = make_rng(rng)
            start["kappa"] = float(start["kappa"] * np.exp(gen.uniform(-0.1, 0.1)))
            start["omega0"] = float(min(0.95, start["omega0"] * np.exp(gen.uniform(-0.1, 0.1))))
            start["p0"] = float(min(0.95, start["p0"] * np.exp(gen.uniform(-0.1, 0.1))))
        return start


class M2aModel(CodonSiteModel):
    """M2a: M1a plus a positively selected class (ω2 > 1)."""

    param_names: Tuple[str, ...] = ("kappa", "omega0", "omega2", "p0", "p1")
    name = "M2a (positive selection)"

    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        x_total, x_split = simplex_pack(values["p0"], values["p1"])
        return np.array(
            [
                _KAPPA.to_unconstrained(values["kappa"]),
                _OMEGA0.to_unconstrained(values["omega0"]),
                _OMEGA2.to_unconstrained(values["omega2"]),
                x_total,
                x_split,
            ]
        )

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (5,):
            raise ValueError(f"M2a expects 5 values, got shape {x.shape}")
        p0, p1 = simplex_unpack(x[3], x[4])
        return {
            "kappa": _KAPPA.to_constrained(x[0]),
            "omega0": _OMEGA0.to_constrained(x[1]),
            "omega2": _OMEGA2.to_constrained(x[2]),
            "p0": p0,
            "p1": p1,
        }

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omega0, omega2 = values["omega0"], values["omega2"]
        p0, p1 = values["p0"], values["p1"]
        p2 = 1.0 - p0 - p1
        if p2 < 0:
            raise ValueError(f"p0 + p1 = {p0 + p1} exceeds 1")
        return [
            SiteClass("0", p0, omega0, omega0),
            SiteClass("1", p1, 1.0, 1.0),
            SiteClass("2", p2, omega2, omega2, positive=True),
        ]

    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        start = {"kappa": 2.0, "omega0": 0.5, "omega2": 2.5, "p0": 0.6, "p1": 0.3}
        if rng is not None:
            gen = make_rng(rng)
            start["kappa"] = float(start["kappa"] * np.exp(gen.uniform(-0.1, 0.1)))
            start["omega0"] = float(min(0.95, start["omega0"] * np.exp(gen.uniform(-0.1, 0.1))))
            start["omega2"] = float(max(1.05, start["omega2"] * np.exp(gen.uniform(-0.1, 0.1))))
        return start
