"""Common interface for codon site-class models.

A *site-class model* is a finite mixture: each alignment column belongs
(with fixed prior probability) to a class that prescribes an ω for every
branch category.  The branch-site model A distinguishes two categories —
*background* and *foreground* (paper Table I) — and every other CodeML
model is the degenerate case where the two categories share ω.

The engine layer consumes only :meth:`CodonSiteModel.site_classes`
(proportions + per-category ω) and the pack/unpack transforms, so new
models plug in without engine changes — the paper's "further maximum
likelihood-based evolutionary models" future-work point (§V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.class_graph import SiteClassGraph

__all__ = ["SiteClass", "CodonSiteModel"]


@dataclass(frozen=True)
class SiteClass:
    """One mixture component: prior proportion and per-category ω.

    ``positive`` marks classes whose foreground ω may exceed 1 — the
    classes BEB/NEB report on — so downstream consumers look the flag up
    structurally instead of matching hard-coded labels or indices.
    """

    label: str
    proportion: float
    omega_background: float
    omega_foreground: float
    positive: bool = False

    def __post_init__(self) -> None:
        # NaN fails both comparisons below (``not NaN <= 1`` is True) so a
        # NaN proportion raises too; the explicit isfinite checks are for
        # the ω values, where ``NaN < 0`` is silently False and a NaN
        # would otherwise propagate into the rate matrices and only
        # surface later as a non-finite-CLV recovery event.
        if not 0.0 <= self.proportion <= 1.0:
            raise ValueError(f"class {self.label!r} proportion {self.proportion} outside [0,1]")
        if not (math.isfinite(self.omega_background) and math.isfinite(self.omega_foreground)):
            raise ValueError(f"class {self.label!r} has a non-finite omega")
        if self.omega_background < 0 or self.omega_foreground < 0:
            raise ValueError(f"class {self.label!r} has a negative omega")


class CodonSiteModel:
    """Abstract base: a parameterised site-class mixture.

    Concrete models define:

    * :attr:`param_names` — ordered free-parameter names;
    * :meth:`pack` / :meth:`unpack` — bounded dict ↔ unconstrained vector;
    * :meth:`site_classes` — the mixture for given parameter values;
    * :meth:`default_start` — optimizer start values (seedable, since the
      paper fixes the RNG seed to equalise start points, §IV).
    """

    #: Ordered names of the free parameters (class attribute).
    param_names: Tuple[str, ...] = ()
    #: Human-readable model name (e.g. "branch-site model A (H1)").
    name: str = "abstract"
    #: True when the model distinguishes branch categories, so the tree
    #: must carry exactly one foreground mark (branch-site models).
    requires_foreground: bool = False

    @property
    def n_params(self) -> int:
        return len(self.param_names)

    # -- interface ------------------------------------------------------
    def pack(self, values: Dict[str, float]) -> np.ndarray:
        """Map a bounded parameter dict to an unconstrained vector."""
        raise NotImplementedError

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        """Inverse of :meth:`pack`."""
        raise NotImplementedError

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        """Mixture components for the given parameter values."""
        raise NotImplementedError

    def site_class_graph(self, values: Dict[str, float]) -> "SiteClassGraph":
        """The validated class graph for the given parameter values.

        Default: build the graph straight from :meth:`site_classes`.
        Sharing edges are *derived* from operator identity (equal ω per
        branch partition), so models never declare alias pairs by hand.
        """
        from repro.models.class_graph import SiteClassGraph

        return SiteClassGraph.from_classes(self.site_classes(values))

    def default_start(self, rng: np.random.Generator | None = None) -> Dict[str, float]:
        """Reasonable start values, optionally jittered by ``rng``."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def validate(self, values: Dict[str, float]) -> Dict[str, float]:
        """Check that exactly the expected parameters are present."""
        expected = set(self.param_names)
        got = set(values)
        if expected != got:
            missing, extra = expected - got, got - expected
            raise ValueError(
                f"{self.name}: parameter mismatch"
                + (f"; missing {sorted(missing)}" if missing else "")
                + (f"; unexpected {sorted(extra)}" if extra else "")
            )
        return values

    def check_roundtrip(self, values: Dict[str, float], atol: float = 1e-9) -> None:
        """Assert ``unpack(pack(v)) == v`` (used by property tests)."""
        back = self.unpack(self.pack(values))
        for key, val in values.items():
            if abs(back[key] - val) > atol * max(1.0, abs(val)):
                raise AssertionError(f"round-trip failed for {key}: {val} -> {back[key]}")

    def proportions(self, values: Dict[str, float]) -> np.ndarray:
        """Class proportions as an array (sums to 1)."""
        props = np.array([c.proportion for c in self.site_classes(values)])
        if not np.isclose(props.sum(), 1.0):
            raise AssertionError(f"{self.name}: class proportions sum to {props.sum()}")
        return props

    def distinct_omegas(self, values: Dict[str, float]) -> List[float]:
        """Sorted distinct ω values across classes and branch categories.

        The engines build one spectral decomposition per entry — for the
        branch-site model that is at most three (ω0, 1, ω2) no matter how
        large the tree (paper §II-C1).
        """
        seen = set()
        for cls in self.site_classes(values):
            seen.add(round(cls.omega_background, 15))
            seen.add(round(cls.omega_foreground, 15))
        return sorted(seen)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={list(self.param_names)})"
