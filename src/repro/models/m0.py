"""M0 — the one-ratio model (Goldman & Yang 1994).

A single ω for all sites and branches.  Not a paper deliverable by
itself, but the workhorse substrate: CodeML fits M0 first to obtain
branch lengths and κ start values for the expensive branch-site fits,
and our pipeline does the same (see :func:`repro.optimize.ml.fit_model`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.parameters import PositiveTransform
from repro.utils.rng import RngLike, make_rng

__all__ = ["M0Model"]

_KAPPA = PositiveTransform(lower=0.0)
_OMEGA = PositiveTransform(lower=0.0)


class M0Model(CodonSiteModel):
    """One-ratio model: free parameters ``kappa`` and ``omega``."""

    param_names: Tuple[str, ...] = ("kappa", "omega")
    name = "M0 (one-ratio)"

    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        return np.array(
            [
                _KAPPA.to_unconstrained(values["kappa"]),
                _OMEGA.to_unconstrained(values["omega"]),
            ]
        )

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (2,):
            raise ValueError(f"M0 expects 2 values, got shape {x.shape}")
        return {
            "kappa": _KAPPA.to_constrained(x[0]),
            "omega": _OMEGA.to_constrained(x[1]),
        }

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omega = values["omega"]
        return [SiteClass("0", 1.0, omega, omega)]

    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        start = {"kappa": 2.0, "omega": 0.4}
        if rng is not None:
            gen = make_rng(rng)
            start = {k: float(v * np.exp(gen.uniform(-0.1, 0.1))) for k, v in start.items()}
        return start
