"""BS-REL: the N-class generalisation of the branch-site model A.

HyPhy's BranchSiteREL / BranchSiteRELMultiModel family (SNIPPETS.md)
fits a user-chosen number of ω rate classes per branch instead of model
A's fixed four.  This module reproduces that family on our mixture
stack: ``K`` *base* classes — ω₁..ω_{K−1} free in (0, 1) plus a neutral
ω_K = 1 — crossed with a *selected* variant of each that keeps the
background ω but applies a common foreground ω_fg ≥ 1, giving ``2K``
site classes::

    class   proportion           background   foreground
    b1      p1                   ω1           ω1
    ...
    bK      pK                   1            1
    s1      p_sel·p1/Σp          ω1           ω_fg
    ...
    sK      p_sel·pK/Σp          1            ω_fg

with ``p_sel = 1 − Σ pk`` split across the selected variants in
proportion to the base weights — exactly model A's 2a/2b construction.
``K = 2`` *is* model A up to labels (b1=0, b2=1, s1=2a, s2=2b), which
is the bit-identity hook ``tests/test_bsrel.py`` pins.

The H0/H1 pair mirrors model A: H1 estimates ω_fg ≥ 1, H0 fixes
ω_fg = 1 (one degree of freedom).  Affordability at larger K comes from
the site-class graph: every selected class rides a sharing edge to its
base class (same background decomposition), so of 2K pruning passes K
alias existing CLVs and the batched operator ledger dedupes their
background builds.

Start values follow HyPhy's ``_useGridSearch``: besides the seeded
default ladder, :meth:`BSRELModel.grid_start` scores a coarse grid of
ω placements against a bound problem and starts from the best cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.parameters import (
    IntervalTransform,
    PositiveTransform,
    stick_break_pack,
    stick_break_unpack,
)
from repro.utils.rng import RngLike, make_rng

__all__ = ["BSRELModel"]

_KAPPA = PositiveTransform(lower=0.0)
_OMEGA_BG = IntervalTransform(0.0, 1.0)
_OMEGA_FG = PositiveTransform(lower=1.0)


class BSRELModel(CodonSiteModel):
    """BS-REL with ``K`` base ω classes (``2K`` site classes), either hypothesis.

    Parameters
    ----------
    n_base_classes:
        ``K ≥ 2``.  Free background ω's are ``omega1..omega{K-1}``; the
        K-th base class is neutral (ω = 1).
    fix_omega_fg:
        ``True`` builds the null H0 (``ω_fg = 1`` fixed), ``False`` the
        alternative H1 (``ω_fg ≥ 1`` estimated).
    """

    requires_foreground = True

    def __init__(self, n_base_classes: int = 3, fix_omega_fg: bool = False) -> None:
        if int(n_base_classes) < 2:
            raise ValueError(f"BS-REL needs at least 2 base classes, got {n_base_classes}")
        self.n_base_classes = int(n_base_classes)
        self.fix_omega_fg = bool(fix_omega_fg)
        k = self.n_base_classes
        self._omega_names = tuple(f"omega{i}" for i in range(1, k))
        self._weight_names = tuple(f"p{i}" for i in range(1, k + 1))
        names = ("kappa",) + self._omega_names
        if not self.fix_omega_fg:
            names += ("omega_fg",)
        self.param_names: Tuple[str, ...] = names + self._weight_names
        hyp = "H0, omega_fg=1" if self.fix_omega_fg else "H1"
        self.name = f"BS-REL {2 * k}-class ({hyp})"

    @property
    def hypothesis(self) -> str:
        return "H0" if self.fix_omega_fg else "H1"

    # ------------------------------------------------------------------
    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        packed = [_KAPPA.to_unconstrained(values["kappa"])]
        packed += [_OMEGA_BG.to_unconstrained(values[n]) for n in self._omega_names]
        if not self.fix_omega_fg:
            packed.append(_OMEGA_FG.to_unconstrained(values["omega_fg"]))
        packed += stick_break_pack([values[n] for n in self._weight_names])
        return np.array(packed)

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_params,):
            raise ValueError(f"{self.name}: expected {self.n_params} values, got shape {x.shape}")
        k = self.n_base_classes
        pos = 0
        values = {"kappa": _KAPPA.to_constrained(x[pos])}
        pos += 1
        for name in self._omega_names:
            values[name] = _OMEGA_BG.to_constrained(x[pos])
            pos += 1
        if not self.fix_omega_fg:
            values["omega_fg"] = _OMEGA_FG.to_constrained(x[pos])
            pos += 1
        weights = stick_break_unpack(x[pos : pos + k])
        for name, w in zip(self._weight_names, weights):
            values[name] = w
        return values

    # ------------------------------------------------------------------
    def _base_omegas(self, values: Dict[str, float]) -> List[float]:
        return [values[n] for n in self._omega_names] + [1.0]

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omegas = self._base_omegas(values)
        omega_fg = 1.0 if self.fix_omega_fg else values["omega_fg"]
        weights = [values[n] for n in self._weight_names]
        total = sum(weights)
        if not 0.0 < total < 1.0:
            raise ValueError(f"base-class weights sum to {total}, must lie in (0, 1)")
        p_sel = 1.0 - total
        classes = [
            SiteClass(f"b{i + 1}", w, om, om)
            for i, (w, om) in enumerate(zip(weights, omegas))
        ]
        classes += [
            SiteClass(f"s{i + 1}", p_sel * w / total, om, omega_fg, positive=True)
            for i, (w, om) in enumerate(zip(weights, omegas))
        ]
        return classes

    # ------------------------------------------------------------------
    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        """Evenly-laddered start: ω_i = i/K, total base mass 0.85.

        With a generator supplied, values get the same ~10 % seeded
        multiplicative jitter as model A.
        """
        k = self.n_base_classes
        start: Dict[str, float] = {"kappa": 2.0}
        for i, name in enumerate(self._omega_names, start=1):
            start[name] = i / k
        if not self.fix_omega_fg:
            start["omega_fg"] = 2.0
        for name in self._weight_names:
            start[name] = 0.85 / k
        if rng is not None:
            gen = make_rng(rng)
            jitter = lambda v: float(v * np.exp(gen.uniform(-0.1, 0.1)))  # noqa: E731
            start["kappa"] = jitter(start["kappa"])
            for name in self._omega_names:
                start[name] = min(0.95, jitter(start[name]))
            if not self.fix_omega_fg:
                start["omega_fg"] = max(1.05, jitter(start["omega_fg"]))
            ws = [jitter(start[name]) for name in self._weight_names]
            scale = min(0.95 / sum(ws), 1.0)
            for name, w in zip(self._weight_names, ws):
                start[name] = w * scale
        return start

    def grid_start(
        self,
        bound,
        base_start: Optional[Dict[str, float]] = None,
        branch_lengths: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """ω-grid initialisation (HyPhy's ``_useGridSearch`` analogue).

        Scores a coarse deterministic grid — background ω ladders spaced
        over three (low, high) windows crossed with foreground ω
        candidates under H1 — by one likelihood evaluation each at the
        bound problem's current branch lengths, and returns the best
        cell merged over ``base_start`` (weights/kappa are taken from
        there, or the unjittered default).  Deterministic: no RNG, so
        competing engines given the same problem start identically.
        """
        start = dict(base_start) if base_start is not None else self.default_start(None)
        k = self.n_base_classes
        ladders = []
        for lo, hi in ((0.05, 0.5), (0.2, 0.8), (0.4, 0.95)):
            if k == 2:
                ladders.append([lo])
            else:
                ladders.append(list(np.linspace(lo, hi, k - 1)))
        fg_candidates = [None] if self.fix_omega_fg else [1.5, 3.0, 6.0]
        best: Optional[Dict[str, float]] = None
        best_lnl = -np.inf
        for ladder in ladders:
            for fg in fg_candidates:
                cand = dict(start)
                for name, om in zip(self._omega_names, ladder):
                    cand[name] = float(om)
                if fg is not None:
                    cand["omega_fg"] = fg
                try:
                    lnl = bound.log_likelihood(cand, branch_lengths)
                except (ValueError, FloatingPointError):
                    continue
                if lnl > best_lnl:
                    best_lnl, best = lnl, cand
        return best if best is not None else start

    # ------------------------------------------------------------------
    def null_model(self) -> "BSRELModel":
        """The matching H0 for an H1 instance (idempotent)."""
        return BSRELModel(self.n_base_classes, fix_omega_fg=True)

    def to_null_values(self, values: Dict[str, float]) -> Dict[str, float]:
        """Project H1 parameter values onto the H0 parameter set."""
        values = self.validate(values)
        return {k: values[k] for k in values if k != "omega_fg"}
