"""Branch-site model A — the model the whole paper is about.

Table I of the paper: four site classes over a background/foreground
branch dichotomy::

    class   proportion                  background   foreground
    0       p0                          ω0 ∈ (0,1)   ω0
    1       p1                          ω1 = 1       ω1 = 1
    2a      (1-p0-p1)·p0/(p0+p1)        ω0           ω2 > 1   (H1) / = 1 (H0)
    2b      (1-p0-p1)·p1/(p0+p1)        ω1 = 1       ω2       (H1) / = 1 (H0)

The alternative hypothesis H1 estimates ``ω2 ≥ 1``; the null H0 is the
same model with ``ω2 = 1`` fixed (Zhang, Nielsen & Yang 2005).  The LRT
compares them with one degree of freedom.

Free parameters: ``kappa, omega0, p0, p1`` (+ ``omega2`` under H1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.parameters import (
    IntervalTransform,
    PositiveTransform,
    simplex_pack,
    simplex_unpack,
)
from repro.utils.rng import RngLike, make_rng

__all__ = ["BranchSiteModelA"]

_KAPPA = PositiveTransform(lower=0.0)
_OMEGA0 = IntervalTransform(0.0, 1.0)
# ω2 ≥ 1 with slack: H1 estimates it above 1 (PAML constrains ω2 ≥ 1).
_OMEGA2 = PositiveTransform(lower=1.0)


class BranchSiteModelA(CodonSiteModel):
    """Branch-site model A, either hypothesis.

    Parameters
    ----------
    fix_omega2:
        ``True`` builds the null H0 (``ω2 = 1`` fixed, 4 free
        parameters); ``False`` the alternative H1 (5 free parameters).
    """

    requires_foreground = True

    def __init__(self, fix_omega2: bool = False) -> None:
        self.fix_omega2 = bool(fix_omega2)
        if self.fix_omega2:
            self.param_names: Tuple[str, ...] = ("kappa", "omega0", "p0", "p1")
            self.name = "branch-site model A (H0, omega2=1)"
        else:
            self.param_names = ("kappa", "omega0", "omega2", "p0", "p1")
            self.name = "branch-site model A (H1)"

    @property
    def hypothesis(self) -> str:
        return "H0" if self.fix_omega2 else "H1"

    # ------------------------------------------------------------------
    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        x_total, x_split = simplex_pack(values["p0"], values["p1"])
        packed = [
            _KAPPA.to_unconstrained(values["kappa"]),
            _OMEGA0.to_unconstrained(values["omega0"]),
            x_total,
            x_split,
        ]
        if not self.fix_omega2:
            packed.insert(2, _OMEGA2.to_unconstrained(values["omega2"]))
        return np.array(packed)

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_params,):
            raise ValueError(f"{self.name}: expected {self.n_params} values, got shape {x.shape}")
        if self.fix_omega2:
            kappa_x, omega0_x, total_x, split_x = x
            omega2 = 1.0
        else:
            kappa_x, omega0_x, omega2_x, total_x, split_x = x
            omega2 = _OMEGA2.to_constrained(omega2_x)
        p0, p1 = simplex_unpack(total_x, split_x)
        values = {
            "kappa": _KAPPA.to_constrained(kappa_x),
            "omega0": _OMEGA0.to_constrained(omega0_x),
            "p0": p0,
            "p1": p1,
        }
        if not self.fix_omega2:
            values["omega2"] = omega2
        return values

    # ------------------------------------------------------------------
    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omega0 = values["omega0"]
        omega2 = 1.0 if self.fix_omega2 else values["omega2"]
        p0, p1 = values["p0"], values["p1"]
        total = p0 + p1
        if not 0.0 < total < 1.0:
            raise ValueError(f"p0 + p1 = {total} must lie in (0, 1)")
        p2 = 1.0 - total
        # 2a/2b are the classes whose foreground ω can exceed 1 — flagged
        # structurally so BEB/NEB and reports need no label matching.
        return [
            SiteClass("0", p0, omega0, omega0),
            SiteClass("1", p1, 1.0, 1.0),
            SiteClass("2a", p2 * p0 / total, omega0, omega2, positive=True),
            SiteClass("2b", p2 * p1 / total, 1.0, omega2, positive=True),
        ]

    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        """CodeML-style start point with optional seeded jitter.

        With a generator supplied, values are perturbed multiplicatively
        by ~10 % — the role the fixed RNG seed plays in the paper's
        experimental setup.
        """
        start = {"kappa": 2.0, "omega0": 0.5, "p0": 0.55, "p1": 0.3}
        if not self.fix_omega2:
            start["omega2"] = 2.0
        if rng is not None:
            gen = make_rng(rng)
            jitter = lambda v: float(v * np.exp(gen.uniform(-0.1, 0.1)))  # noqa: E731
            start["kappa"] = jitter(start["kappa"])
            start["omega0"] = min(0.95, jitter(start["omega0"]))
            if not self.fix_omega2:
                start["omega2"] = max(1.05, jitter(start["omega2"]))
            p0, p1 = jitter(start["p0"]), jitter(start["p1"])
            scale = min(0.95 / (p0 + p1), 1.0)
            start["p0"], start["p1"] = p0 * scale, p1 * scale
        return start

    # ------------------------------------------------------------------
    def null_model(self) -> "BranchSiteModelA":
        """The matching H0 for an H1 instance (idempotent)."""
        return BranchSiteModelA(fix_omega2=True)

    def to_null_values(self, values: Dict[str, float]) -> Dict[str, float]:
        """Project H1 parameter values onto the H0 parameter set."""
        values = self.validate(values)
        return {k: values[k] for k in ("kappa", "omega0", "p0", "p1")}
