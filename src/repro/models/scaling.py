"""Shared rate normalisation across site classes.

For mixture models a branch length must mean the same thing in every
site class, so CodeML divides *all* class rate matrices by one common
factor instead of normalising each to unit mean rate.  We define that
factor as the class-proportion-weighted mean of the raw (unscaled) mean
rates of the **background** processes — background branches are every
branch but one, so this makes ``t`` ≈ expected substitutions per codon
on background branches, with the foreground branch evolving faster when
ω2 > 1.

Both the likelihood engines and the sequence simulator go through
:func:`build_class_matrices`, so simulated data and inference agree on
what a branch length is.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.codon.genetic_code import GeneticCode, UNIVERSAL
from repro.codon.matrix import CodonRateMatrix, build_rate_matrix, mean_rate
from repro.models.base import SiteClass

__all__ = ["mixture_scale", "build_class_matrices"]


def _raw_rate(kappa: float, omega: float, pi: np.ndarray, code: GeneticCode) -> float:
    """Mean rate of the unscaled Q(κ, ω)."""
    raw = build_rate_matrix(kappa, omega, pi, code=code, scale="none")
    return mean_rate(raw.q, pi)


def mixture_scale(
    kappa: float,
    classes: Sequence[SiteClass],
    pi: np.ndarray,
    code: GeneticCode = UNIVERSAL,
) -> float:
    """Common normalisation factor for a site-class mixture (see module doc)."""
    factor = 0.0
    rate_cache: Dict[float, float] = {}
    for cls in classes:
        omega = cls.omega_background
        if omega not in rate_cache:
            rate_cache[omega] = _raw_rate(kappa, omega, pi, code)
        factor += cls.proportion * rate_cache[omega]
    if factor <= 0:
        raise ValueError("mixture mean rate must be positive")
    return factor


def build_class_matrices(
    kappa: float,
    classes: Sequence[SiteClass],
    pi: np.ndarray,
    code: GeneticCode = UNIVERSAL,
) -> Dict[float, CodonRateMatrix]:
    """Build one commonly-scaled rate matrix per distinct ω in the mixture.

    Returns a dict keyed by ω value (both branch categories pooled); the
    branch-site model yields at most three entries however large the
    tree, which is what bounds the per-evaluation eigendecomposition
    count (§II-C1).
    """
    factor = mixture_scale(kappa, classes, pi, code)
    omegas: List[float] = []
    for cls in classes:
        for omega in (cls.omega_background, cls.omega_foreground):
            if omega not in omegas:
                omegas.append(omega)
    return {
        omega: build_rate_matrix(kappa, omega, pi, code=code, scale=factor)
        for omega in omegas
    }
