"""Bounded ↔ unconstrained parameter transforms.

The likelihood is maximised by an unconstrained quasi-Newton method
(paper §II-B), but every model parameter is bounded: ``κ > 0``,
``0 < ω0 < 1``, ``ω2 > 1``, proportions in the simplex, branch lengths
≥ 0.  PAML handles this with constrained line searches; we use the
cleaner smooth-transform approach so the optimizer sees ℝⁿ.

All transforms are monotone bijections with finite slack at the
boundaries (the optimizer cannot push a parameter to an exact bound,
where the likelihood may be singular).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Transform",
    "PositiveTransform",
    "IntervalTransform",
    "simplex_pack",
    "simplex_unpack",
    "stick_break_pack",
    "stick_break_unpack",
]

# Unconstrained values are clipped to this range before exponentials so a
# wild optimizer step cannot overflow to inf.
_X_CLIP = 40.0


class Transform:
    """Interface: a monotone bijection between a bounded and ℝ domain."""

    def to_unconstrained(self, theta: float) -> float:
        raise NotImplementedError

    def to_constrained(self, x: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class PositiveTransform(Transform):
    """``θ ∈ (lower, ∞)`` via ``θ = lower + exp(x)``.

    Used for κ, ω2 (with ``lower = 1``), and branch lengths (with a tiny
    ``lower`` so zero-length branches stay representable to ~1e-8).
    """

    lower: float = 0.0

    def to_unconstrained(self, theta: float) -> float:
        theta = float(theta)
        if theta <= self.lower:
            raise ValueError(f"value {theta} must exceed lower bound {self.lower}")
        return math.log(theta - self.lower)

    def to_constrained(self, x: float) -> float:
        return self.lower + math.exp(min(max(float(x), -_X_CLIP), _X_CLIP))


@dataclass(frozen=True)
class IntervalTransform(Transform):
    """``θ ∈ (lo, hi)`` via a logistic map.

    Used for ω0 ∈ (0, 1) and the stick-breaking coordinates of the
    class-proportion simplex.
    """

    lo: float = 0.0
    hi: float = 1.0

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"empty interval ({self.lo}, {self.hi})")

    def to_unconstrained(self, theta: float) -> float:
        theta = float(theta)
        if not self.lo < theta < self.hi:
            raise ValueError(f"value {theta} outside open interval ({self.lo}, {self.hi})")
        u = (theta - self.lo) / (self.hi - self.lo)
        return math.log(u / (1.0 - u))

    def to_constrained(self, x: float) -> float:
        x = min(max(float(x), -_X_CLIP), _X_CLIP)
        u = 1.0 / (1.0 + math.exp(-x))
        return self.lo + (self.hi - self.lo) * u


def simplex_pack(p0: float, p1: float) -> tuple[float, float]:
    """Stick-breaking coordinates for ``(p0, p1)`` with ``p0 + p1 < 1``.

    Returns unconstrained ``(x_total, x_split)`` where
    ``total = p0 + p1`` and ``split = p0 / total``.  The remaining mass
    ``1 - p0 - p1`` is the positively-selected proportion of Table I.
    """
    p0, p1 = float(p0), float(p1)
    total = p0 + p1
    if not (0.0 < p0 and 0.0 < p1 and total < 1.0):
        raise ValueError(f"(p0, p1) = ({p0}, {p1}) must be interior simplex points")
    unit = IntervalTransform(0.0, 1.0)
    return unit.to_unconstrained(total), unit.to_unconstrained(p0 / total)


def simplex_unpack(x_total: float, x_split: float) -> tuple[float, float]:
    """Inverse of :func:`simplex_pack`."""
    unit = IntervalTransform(0.0, 1.0)
    total = unit.to_constrained(x_total)
    split = unit.to_constrained(x_split)
    return total * split, total * (1.0 - split)


def stick_break_pack(weights: "list[float] | tuple[float, ...]") -> "list[float]":
    """Stick-breaking coordinates for K weights with ``sum(weights) < 1``.

    Generalises :func:`simplex_pack` to any K: the first coordinate is
    the logit of the total mass, each subsequent one the logit of the
    next weight's share of what remains.  ``K = 2`` reproduces
    ``simplex_pack`` exactly (same arithmetic, same order), which is
    what keeps the 2-class BS-REL model bit-compatible with model A.
    """
    ws = [float(w) for w in weights]
    total = sum(ws)
    if not (all(w > 0.0 for w in ws) and total < 1.0):
        raise ValueError(f"weights {ws} must be positive with sum < 1")
    unit = IntervalTransform(0.0, 1.0)
    coords = [unit.to_unconstrained(total)]
    remaining = total
    for w in ws[:-1]:
        coords.append(unit.to_unconstrained(w / remaining))
        remaining -= w
    return coords


def stick_break_unpack(coords: "list[float] | np.ndarray") -> "list[float]":
    """Inverse of :func:`stick_break_pack` (K coords → K weights)."""
    coords = [float(c) for c in coords]
    unit = IntervalTransform(0.0, 1.0)
    remaining = unit.to_constrained(coords[0])
    ws = []
    for c in coords[1:]:
        share = unit.to_constrained(c)
        ws.append(remaining * share)
        remaining = remaining * (1.0 - share)
    ws.append(remaining)
    return ws


def transform_array(values: np.ndarray, transform: Transform, to_unconstrained: bool) -> np.ndarray:
    """Vectorised helper applying one transform across an array."""
    fn = transform.to_unconstrained if to_unconstrained else transform.to_constrained
    return np.array([fn(v) for v in np.asarray(values, dtype=float)])
