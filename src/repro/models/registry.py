"""Model-spec registry: string names ↔ H0/H1 hypothesis pairs.

Scan payloads (``parallel/batch.py``) and the CLI carry the model as a
plain spec string, so a coordinator can broadcast "which test to run"
to workers without shipping model objects over the wire:

* ``"branch-site-A"`` (aliases ``"bsA"``, ``"A"``) — the paper's 4-class
  branch-site model A;
* ``"bsrel:K"`` (e.g. ``"bsrel:3"``) — the 2K-class BS-REL family with
  K base ω classes (:mod:`repro.models.bsrel`).

``resolve_model_spec`` returns a :class:`ModelSpec` whose ``h0()`` /
``h1()`` build fresh model instances per call — model objects hold
per-hypothesis parameter layouts and must never be shared across jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.models.base import CodonSiteModel
from repro.models.branch_site import BranchSiteModelA
from repro.models.bsrel import BSRELModel

__all__ = ["DEFAULT_MODEL_SPEC", "ModelSpec", "resolve_model_spec"]

#: The historical default: model A, as every pre-survey scan ran it.
DEFAULT_MODEL_SPEC = "branch-site-A"


@dataclass(frozen=True)
class ModelSpec:
    """A named H0/H1 pair, constructible from its wire string."""

    spec: str
    h0: Callable[[], CodonSiteModel]
    h1: Callable[[], CodonSiteModel]

    def pair(self) -> Tuple[CodonSiteModel, CodonSiteModel]:
        return self.h0(), self.h1()


_MODEL_A_ALIASES = {"branch-site-a", "bsa", "a", "model-a"}


def resolve_model_spec(spec: "str | None") -> ModelSpec:
    """Parse a model spec string (case-insensitive; ``None`` = default)."""
    raw = DEFAULT_MODEL_SPEC if spec is None else str(spec).strip()
    lowered = raw.lower()
    if lowered in _MODEL_A_ALIASES:
        return ModelSpec(
            spec=DEFAULT_MODEL_SPEC,
            h0=lambda: BranchSiteModelA(fix_omega2=True),
            h1=lambda: BranchSiteModelA(fix_omega2=False),
        )
    if lowered.startswith("bsrel:"):
        try:
            k = int(lowered.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"malformed BS-REL spec {raw!r}; expected 'bsrel:K'") from None
        if k < 2:
            raise ValueError(f"BS-REL needs K >= 2 base classes, got {k}")
        return ModelSpec(
            spec=f"bsrel:{k}",
            h0=lambda: BSRELModel(k, fix_omega_fg=True),
            h1=lambda: BSRELModel(k, fix_omega_fg=False),
        )
    raise ValueError(
        f"unknown model spec {raw!r}; use 'branch-site-A' or 'bsrel:K'"
    )
