"""The site-class graph: N mixture classes plus derived sharing edges.

Every layer of the mixture stack used to special-case the branch-site
model A's four classes — literal ``"0"/"1"/"2a"/"2b"`` names and the
hard-wired 0↔2a / 1↔2b background-tying pairs.  This module replaces
that shape with a model-agnostic graph:

* **Nodes** are :class:`repro.models.base.SiteClass` values — a weight
  plus one ω per branch partition (background / foreground).
* **Sharing edges** are *derived* from operator identity, never
  declared: class *i* can alias class *j*'s conditional vectors exactly
  when every transition operator the two pruning passes apply to a
  branch is the same object.  Operators are keyed by (decomposition, t),
  and :func:`repro.models.scaling.build_class_matrices` pools the rate
  matrices of both branch categories per distinct ω — so "same operator
  on every background branch" reduces to ``omega_background`` equality,
  and the alias is *total* when ``omega_foreground`` matches too.  An
  edge therefore means "bit-identical CLVs on every subtree not
  containing the foreground branch" (partial share: re-prune only the
  foreground-to-root path) or "bit-identical everywhere" (full share).

For model A this derivation reproduces the historical pairs — 0↔2a and
1↔2b share backgrounds always, and 1↔2b becomes a full share under H0
where ω2 is fixed to 1 — but it holds for any N-class mixture, which is
what makes the BS-REL family (``models/bsrel.py``) affordable: of 2K
classes, K ride sharing edges.

The graph also owns weight validation (finite, in [0, 1], summing to 1)
so malformed proportions raise here, at the model boundary, instead of
surfacing later as a non-finite-CLV recovery event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import SiteClass

__all__ = ["SharingEdge", "ClassPlan", "SiteClassGraph"]

#: Evaluation modes a planned class pass can take (see :meth:`SiteClassGraph.plan`).
_MODES = ("skip", "derive", "populate", "incremental")


@dataclass(frozen=True)
class SharingEdge:
    """A derived alias edge: ``target`` can reuse ``base``'s CLV state.

    ``full`` is True when the foreground operators match too, i.e. the
    target's entire pruning pass is bit-identical to the base's and no
    branch needs re-pruning at all.
    """

    target: int
    base: int
    full: bool


@dataclass(frozen=True)
class ClassPlan:
    """One class's planned pruning pass.

    ``mode`` is one of ``skip`` (zero-weight class elided), ``derive``
    (alias ``base``'s state; re-prune nothing when ``full_share`` else
    only the foreground-to-root path), ``populate`` (prune from scratch)
    or ``incremental`` (re-prune the caller's dirty paths against the
    class's own persisted state).
    """

    index: int
    mode: str
    base: Optional[int] = None
    full_share: bool = False


class SiteClassGraph:
    """Validated site-class nodes plus operator-identity sharing edges."""

    __slots__ = ("nodes", "edges", "_index_of")

    def __init__(self, nodes: Tuple[SiteClass, ...], edges: Tuple[Optional[SharingEdge], ...]):
        self.nodes = nodes
        self.edges = edges
        self._index_of: Dict[str, int] = {cls.label: i for i, cls in enumerate(nodes)}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_classes(cls, classes: Sequence[SiteClass]) -> "SiteClassGraph":
        """Build and validate the graph for a concrete class list.

        Raises ``ValueError`` (naming the offending class) on duplicate
        labels, non-finite or negative weights, or weights that do not
        sum to 1 — per-class range checks already live in
        :class:`SiteClass` itself.
        """
        nodes = tuple(classes)
        if not nodes:
            raise ValueError("site-class graph needs at least one class")
        seen_labels: Dict[str, int] = {}
        total = 0.0
        for i, node in enumerate(nodes):
            if node.label in seen_labels:
                raise ValueError(
                    f"duplicate site-class label {node.label!r} "
                    f"(classes {seen_labels[node.label]} and {i})"
                )
            seen_labels[node.label] = i
            if not math.isfinite(node.proportion) or node.proportion < 0.0:
                raise ValueError(
                    f"class {node.label!r} proportion {node.proportion} is not a weight"
                )
            total += node.proportion
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-8):
            raise ValueError(
                f"site-class proportions sum to {total!r}, not 1 "
                f"(classes {[n.label for n in nodes]})"
            )

        # Derive sharing edges: the base of class i is the *first* class
        # with the same background ω (hence the same pooled decomposition
        # and the same operator on every background branch).
        edges: List[Optional[SharingEdge]] = []
        first_with_bg: Dict[float, int] = {}
        for i, node in enumerate(nodes):
            base = first_with_bg.setdefault(node.omega_background, i)
            if base == i:
                edges.append(None)
            else:
                full = node.omega_foreground == nodes[base].omega_foreground
                edges.append(SharingEdge(target=i, base=base, full=full))
        return cls(nodes, tuple(edges))

    # -- node views -----------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.nodes)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(node.label for node in self.nodes)

    @property
    def proportions(self) -> np.ndarray:
        """Class weights as a float array (validated to sum to 1)."""
        return np.array([node.proportion for node in self.nodes], dtype=float)

    def index_of(self, label: str) -> int:
        """Index of the class named ``label`` (raises ``KeyError``)."""
        try:
            return self._index_of[label]
        except KeyError:
            raise KeyError(
                f"no site class labelled {label!r}; have {list(self._index_of)}"
            ) from None

    @property
    def positive_indices(self) -> Tuple[int, ...]:
        """Indices of classes flagged as potentially under positive selection."""
        return tuple(i for i, node in enumerate(self.nodes) if node.positive)

    @property
    def positive_labels(self) -> Tuple[str, ...]:
        return tuple(self.nodes[i].label for i in self.positive_indices)

    def distinct_omegas(self) -> List[float]:
        """Sorted distinct ω values across classes and branch partitions."""
        seen = set()
        for node in self.nodes:
            seen.add(round(node.omega_background, 15))
            seen.add(round(node.omega_foreground, 15))
        return sorted(seen)

    @property
    def shared_classes(self) -> Tuple[int, ...]:
        """Classes that ride a sharing edge (their background pass is free)."""
        return tuple(i for i, e in enumerate(self.edges) if e is not None)

    # -- evaluation planning -------------------------------------------
    def plan(
        self,
        *,
        full: bool,
        has_state: Optional[Callable[[int], bool]] = None,
        skip_zero: bool = False,
    ) -> List[ClassPlan]:
        """Per-class pruning plan for one likelihood evaluation.

        ``full`` marks a from-scratch evaluation (model values changed or
        no base state); when False, non-shared classes re-prune only the
        caller's dirty paths against their persisted state, which
        ``has_state(index)`` must confirm exists.  ``skip_zero`` elides
        zero-weight classes entirely (their mixture row is masked out).

        The static :attr:`edges` cannot be used verbatim here because a
        skipped or state-less base breaks the chain at runtime: sharing
        requires the base's state to be materialised *this* evaluation,
        so the base of record is the first class with a matching
        background ω that actually runs a populate/incremental pass.
        A partial share (differing foreground ω) additionally needs that
        state to be current everywhere off the foreground path, which
        only a ``full`` rebuild guarantees — under a dirty-path update
        each partially-shared class advances its own persisted state
        instead.
        """
        if has_state is None:
            has_state = lambda _idx: False  # noqa: E731 - trivial default
        plans: List[ClassPlan] = []
        first_live_bg: Dict[float, int] = {}
        for idx, node in enumerate(self.nodes):
            if skip_zero and node.proportion == 0.0:
                plans.append(ClassPlan(idx, "skip"))
                continue
            base_idx = first_live_bg.get(node.omega_background)
            same_fg = (
                base_idx is not None
                and node.omega_foreground == self.nodes[base_idx].omega_foreground
            )
            if base_idx is not None and (full or same_fg):
                plans.append(ClassPlan(idx, "derive", base=base_idx, full_share=same_fg))
                continue
            if full or not has_state(idx):
                plans.append(ClassPlan(idx, "populate"))
            else:
                plans.append(ClassPlan(idx, "incremental"))
            first_live_bg.setdefault(node.omega_background, idx)
        return plans

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __repr__(self) -> str:
        shared = ", ".join(
            f"{self.nodes[e.target].label}→{self.nodes[e.base].label}"
            f"{'(full)' if e.full else ''}"
            for e in self.edges
            if e is not None
        )
        return (
            f"SiteClassGraph({len(self.nodes)} classes: {list(self.labels)}"
            + (f"; shares {shared}" if shared else "")
            + ")"
        )
