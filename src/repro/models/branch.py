"""Branch models: lineage-specific ω without site heterogeneity.

The *two-ratio* branch model (Yang 1998) is the historical precursor of
the branch-site model: one ω for the foreground branch and one for the
rest of the tree, applied to *every* site.  The branch-site model A
(paper Table I) was introduced precisely because the branch model
averages over sites and loses power when only a fraction of sites is
selected; having both lets users run the classic comparison.

In the engine-facing mixture interface this is a single
:class:`~repro.models.base.SiteClass` with distinct background and
foreground ω — the mirror image of the site models (many classes, equal
ω across branch categories).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.base import CodonSiteModel, SiteClass
from repro.models.parameters import PositiveTransform
from repro.utils.rng import RngLike, make_rng

__all__ = ["TwoRatioModel"]

_KAPPA = PositiveTransform(lower=0.0)
_OMEGA = PositiveTransform(lower=0.0)


class TwoRatioModel(CodonSiteModel):
    """Two-ratio branch model: ``omega_background`` and ``omega_foreground``.

    Parameters
    ----------
    fix_foreground:
        When True, ``omega_foreground`` is fixed at 1 — the null of the
        classic branch test (foreground neutral), leaving 2 free
        parameters; otherwise 3.
    """

    requires_foreground = True

    def __init__(self, fix_foreground: bool = False) -> None:
        self.fix_foreground = bool(fix_foreground)
        if self.fix_foreground:
            self.param_names: Tuple[str, ...] = ("kappa", "omega_background")
            self.name = "two-ratio branch model (foreground omega = 1)"
        else:
            self.param_names = ("kappa", "omega_background", "omega_foreground")
            self.name = "two-ratio branch model"

    def pack(self, values: Dict[str, float]) -> np.ndarray:
        values = self.validate(values)
        packed = [
            _KAPPA.to_unconstrained(values["kappa"]),
            _OMEGA.to_unconstrained(values["omega_background"]),
        ]
        if not self.fix_foreground:
            packed.append(_OMEGA.to_unconstrained(values["omega_foreground"]))
        return np.array(packed)

    def unpack(self, x: Sequence[float]) -> Dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_params,):
            raise ValueError(
                f"{self.name}: expected {self.n_params} values, got shape {x.shape}"
            )
        values = {
            "kappa": _KAPPA.to_constrained(x[0]),
            "omega_background": _OMEGA.to_constrained(x[1]),
        }
        if not self.fix_foreground:
            values["omega_foreground"] = _OMEGA.to_constrained(x[2])
        return values

    def site_classes(self, values: Dict[str, float]) -> List[SiteClass]:
        values = self.validate(values)
        omega_fg = 1.0 if self.fix_foreground else values["omega_foreground"]
        return [SiteClass("0", 1.0, values["omega_background"], omega_fg)]

    def default_start(self, rng: RngLike = None) -> Dict[str, float]:
        start = {"kappa": 2.0, "omega_background": 0.3}
        if not self.fix_foreground:
            start["omega_foreground"] = 1.5
        if rng is not None:
            gen = make_rng(rng)
            start = {k: float(v * np.exp(gen.uniform(-0.1, 0.1))) for k, v in start.items()}
        return start

    def null_model(self) -> "TwoRatioModel":
        """The matching foreground-neutral null."""
        return TwoRatioModel(fix_foreground=True)
