"""Maximum-likelihood fit driver: the CodeML run loop.

``fit_model`` maximises one model's likelihood over its free parameters
and (optionally) all branch lengths, exactly the quantity whose runtime
and iteration count the paper reports per dataset (Table III).
``fit_branch_site_test`` runs the H0+H1 pair and the LRT — one row of
the paper's evaluation.

Both engines being compared are driven through this same code path with
the same seed-derived start values, reproducing the paper's fixed-seed
fairness rule (§IV).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np
import scipy.optimize

from repro.core.engine import BoundLikelihood
from repro.core.recovery import FitDiagnostics, NumericalEvent, RecoveryPolicy
from repro.models.base import CodonSiteModel
from repro.models.parameters import _X_CLIP
from repro.optimize.bfgs import OptimizeResult, minimize_bfgs
from repro.optimize.lrt import LRTResult, likelihood_ratio_test
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "FitResult",
    "BranchSiteTest",
    "SitesTest",
    "fit_model",
    "fit_branch_site_test",
    "fit_sites_test",
]

#: Branch lengths are optimised as log(t); shorter than this is "zero".
_MIN_BRANCH = 1e-7
_MAX_LOG_BRANCH = 6.0  # t ≤ e^6 ≈ 400 expected substitutions — a wall, not a prior

#: A packed model coordinate beyond this fraction of the transform clip
#: (±`repro.models.parameters._X_CLIP`) counts as parked on its wall.
_BOUNDARY_FRACTION = 0.9


@dataclass
class FitResult:
    """One maximised model fit.

    ``n_iterations`` counts optimizer iterations (the paper's Table III
    "Iterations" column); ``n_evaluations`` counts likelihood calls
    including finite-difference probes.
    """

    model_name: str
    engine_name: str
    lnl: float
    values: Dict[str, float]
    branch_lengths: np.ndarray
    n_iterations: int
    n_evaluations: int
    runtime_seconds: float
    converged: bool
    message: str
    history: list = field(default_factory=list)
    #: Convergence/recovery diagnostics (empty = clean fit).
    diagnostics: FitDiagnostics = field(default_factory=FitDiagnostics)

    def summary(self) -> str:
        params = ", ".join(f"{k}={v:.4f}" for k, v in self.values.items())
        text = (
            f"{self.model_name} [{self.engine_name}] lnL = {self.lnl:.6f} "
            f"({self.n_iterations} iterations, {self.n_evaluations} evaluations, "
            f"{self.runtime_seconds:.2f} s)\n  {params}\n"
            f"  tree length = {float(np.sum(self.branch_lengths)):.4f}"
        )
        if self.diagnostics.recovered or self.diagnostics.boundary_flags:
            text += f"\n  numerics: {self.diagnostics.describe()}"
        return text


def _pack_full(
    model: CodonSiteModel,
    values: Dict[str, float],
    lengths: np.ndarray,
    optimize_branch_lengths: bool,
) -> np.ndarray:
    x_model = model.pack(values)
    if not optimize_branch_lengths:
        return x_model
    safe = np.maximum(np.asarray(lengths, dtype=float), _MIN_BRANCH)
    return np.concatenate([x_model, np.log(safe)])


def _unpack_full(
    model: CodonSiteModel,
    x: np.ndarray,
    fixed_lengths: np.ndarray,
    optimize_branch_lengths: bool,
) -> tuple[Dict[str, float], np.ndarray]:
    k = model.n_params
    values = model.unpack(x[:k])
    if optimize_branch_lengths:
        lengths = np.exp(np.clip(x[k:], math.log(_MIN_BRANCH), _MAX_LOG_BRANCH))
    else:
        lengths = fixed_lengths
    return values, lengths


def ng86_start_lengths(bound: BoundLikelihood) -> np.ndarray:
    """Data-driven start branch lengths: OLS fit to NG86 distances.

    Pairwise Nei-Gojobori divergences are computed on the bound
    problem's (pattern-compressed, weight-corrected) alignment in tree
    leaf order, then projected onto the topology by ordinary least
    squares — the classical distance-based initialisation CodeML also
    derives from pairwise estimates.
    """
    from repro.alignment.distances import nei_gojobori
    from repro.trees.least_squares import least_squares_branch_lengths

    alignment = bound.patterns.alignment
    weights = bound.patterns.weights
    leaf_names = bound.tree.leaf_names()
    rows = [alignment.row(name) for name in leaf_names]
    n = len(rows)
    dist = np.zeros((n, n))
    for a in range(n):
        for b in range(a + 1, n):
            d = nei_gojobori(alignment, rows[a], rows[b], column_weights=weights).total_distance
            if not np.isfinite(d):
                d = 3.0  # saturated pair
            dist[a, b] = dist[b, a] = d
    return least_squares_branch_lengths(bound.tree, dist)


#: Parameters eligible for ``fixed_params``: scalar coordinates whose
#: position in the packed vector equals their position in
#: ``model.param_names``.  The proportion pair (p0, p1) shares two
#: stick-breaking coordinates and cannot be fixed individually.
_FIXABLE = {"kappa", "omega0", "omega2", "omega"}


def fit_model(
    bound: BoundLikelihood,
    start_values: Optional[Dict[str, float]] = None,
    start_lengths: "Optional[np.ndarray] | str" = None,
    optimize_branch_lengths: bool = True,
    method: str = "bfgs",
    max_iterations: int = 200,
    gtol: float = 1e-4,
    ftol: float = 1e-9,
    seed: RngLike = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    fixed_params: Optional[set] = None,
    recovery: Optional[RecoveryPolicy] = None,
    incremental: Optional[bool] = None,
) -> FitResult:
    """Maximise the likelihood of ``bound``'s model.

    Parameters
    ----------
    bound:
        Engine-bound problem from :meth:`LikelihoodEngine.bind`.
    start_values:
        Model-parameter start point; defaults to the model's seeded
        default (the paper fixes the seed so competing engines start
        identically).
    start_lengths:
        Branch-length start point; defaults to the tree's lengths where
        positive, else 0.1.  The string ``"ng86"`` requests the
        data-driven OLS/Nei-Gojobori initialisation
        (:func:`ng86_start_lengths`).
    optimize_branch_lengths:
        Fix branch lengths (False) or co-estimate them (True, CodeML's
        behaviour for these tests).
    method:
        ``"bfgs"`` (our implementation, iteration-counted) or
        ``"lbfgsb"`` (scipy's L-BFGS-B as a cross-check backend).
    max_iterations:
        Optimizer iteration budget.  Benchmarks use a fixed budget; for
        converged results use a large value and check ``converged``.
    fixed_params:
        Names of scalar model parameters to hold at their start values
        (CodeML's ``fix_kappa``-style options).  Only
        ``kappa``/``omega``/``omega0``/``omega2`` can be fixed; the
        proportion pair shares packed coordinates and cannot.
    recovery:
        Optional :class:`~repro.core.recovery.RecoveryPolicy`.  When set,
        the fit restarts from seeded perturbed start points on a
        non-finite objective at the start, on a line search that
        collapses before the first step, and on a converged fit whose
        model parameters are parked on their transform walls; the best
        optimum across attempts is kept and every trigger lands on
        ``FitResult.diagnostics``.  ``None`` (default) reproduces the
        historical single-attempt behaviour bit-for-bit.
    incremental:
        ``True``/``False`` overrides the binding's incremental-evaluation
        setting for this fit (flipping it drops any cached CLV state);
        ``None`` (default) respects how the problem was bound.  With
        incremental evaluation on and ``method="bfgs"``, gradient probes
        carry per-coordinate structure hints so a branch-length probe
        re-prunes only that branch's root path; model-parameter probes
        invalidate everything, so results stay bit-identical.

    Returns
    -------
    FitResult
    """
    model = bound.model
    if incremental is not None and bool(incremental) != getattr(bound, "incremental", False):
        bound.set_incremental(incremental)
    rng = make_rng(seed)
    if start_values is None:
        start_values = model.default_start(rng)
    if isinstance(start_lengths, str):
        if start_lengths != "ng86":
            raise ValueError(f"unknown start_lengths mode {start_lengths!r}; use 'ng86'")
        start_lengths = ng86_start_lengths(bound)
    elif start_lengths is None:
        base = np.asarray(bound.branch_lengths, dtype=float)
        start_lengths = np.where(base > 0, base, 0.1)

    x0 = _pack_full(model, start_values, start_lengths, optimize_branch_lengths)
    fixed_lengths = np.asarray(start_lengths, dtype=float)

    # Freeze requested scalar parameters at their packed start coordinates.
    frozen_idx = np.zeros(x0.shape[0], dtype=bool)
    if fixed_params:
        illegal = set(fixed_params) - _FIXABLE
        if illegal:
            raise ValueError(f"cannot fix parameters {sorted(illegal)}; only {sorted(_FIXABLE)}")
        unknown = set(fixed_params) - set(model.param_names)
        if unknown:
            raise ValueError(f"{model.name} has no parameters {sorted(unknown)}")
        for name in fixed_params:
            frozen_idx[model.param_names.index(name)] = True
    frozen_values = x0[frozen_idx]
    free_x0 = x0[~frozen_idx]

    def _expand(x_free: np.ndarray) -> np.ndarray:
        full = np.empty(x0.shape[0])
        full[frozen_idx] = frozen_values
        full[~frozen_idx] = x_free
        return full

    def objective(x_free: np.ndarray, touched: object = None) -> float:
        values, lengths = _unpack_full(
            model, _expand(x_free), fixed_lengths, optimize_branch_lengths
        )
        try:
            # Only forward the hint when one was issued: duck-typed bound
            # stand-ins (test seams) need not grow the ``touched`` kwarg.
            if touched is None:
                return -bound.log_likelihood(values, lengths)
            return -bound.log_likelihood(values, lengths, touched=touched)
        except (ValueError, FloatingPointError):
            return np.inf

    # Structure hints for gradient probes: with an incremental binding,
    # each free branch-length coordinate maps to its branch-table row so
    # a probe re-prunes one root path; model-parameter coordinates get
    # the "model" sentinel (full invalidation — operators change).
    coordinate_touched = None
    if method == "bfgs" and getattr(bound, "incremental", False):
        k = model.n_params
        coordinate_touched = [
            "model" if pos < k or not optimize_branch_lengths else (int(pos) - k,)
            for pos in np.flatnonzero(~frozen_idx)
        ]

    def _minimize(x_start: np.ndarray) -> OptimizeResult:
        if method == "bfgs":
            return minimize_bfgs(
                objective,
                x_start,
                gtol=gtol,
                ftol=ftol,
                max_iterations=max_iterations,
                callback=callback,
                coordinate_touched=coordinate_touched,
            )
        if method == "lbfgsb":
            res = scipy.optimize.minimize(
                objective,
                x_start,
                method="L-BFGS-B",
                options={"maxiter": max_iterations, "ftol": ftol, "gtol": gtol},
            )
            return OptimizeResult(
                x=res.x,
                fun=float(res.fun),
                n_iterations=int(res.nit),
                n_evaluations=int(res.nfev),
                converged=bool(res.success),
                message=str(res.message),
                history=[],
            )
        raise ValueError(f"unknown method {method!r}; use 'bfgs' or 'lbfgsb'")

    def _parked_params(x_full: np.ndarray) -> list:
        """Names of coordinates parked on their transform walls."""
        flags = []
        k = model.n_params
        names = model.param_names
        for i in range(k):
            if frozen_idx[i]:
                continue
            if abs(float(x_full[i])) >= _BOUNDARY_FRACTION * _X_CLIP:
                flags.append(names[i] if i < len(names) else f"param[{i}]")
        return flags

    diagnostics = FitDiagnostics()
    recorder = getattr(bound.engine, "events", None)
    events_mark = recorder.mark() if recorder is not None else 0

    start_time = time.perf_counter()
    if recovery is None:
        opt = _minimize(free_x0)
    else:
        # Seeded restart loop: every perturbation draws from the fit's
        # own RNG, so recovery is reproducible from the master seed.
        best: Optional[OptimizeResult] = None
        attempts: list = []
        x_start = free_x0
        while True:
            f_start = objective(x_start)
            if not np.isfinite(f_start):
                diagnostics.events.append(
                    NumericalEvent(
                        "nonfinite_start",
                        "optimizer",
                        f"objective = {f_start} at the start point",
                        {"restart": diagnostics.restarts},
                    )
                )
                if diagnostics.restarts >= recovery.max_restarts:
                    if best is not None:
                        break
                    raise ValueError(
                        "objective is not finite at the start point "
                        f"(after {diagnostics.restarts} restarts)"
                    )
                diagnostics.restarts += 1
                diagnostics.events.append(
                    NumericalEvent(
                        "optimizer_restart",
                        "optimizer",
                        "non-finite start",
                        {"restart": diagnostics.restarts},
                    )
                )
                x_start = recovery.perturb(free_x0, rng)
                continue
            attempt = _minimize(x_start)
            attempts.append(attempt)
            if best is None or attempt.fun < best.fun:
                best = attempt
            collapsed = (
                attempt.line_search_failed
                and attempt.n_iterations == 0
                and recovery.restart_on_line_search_collapse
            )
            parked = _parked_params(_expand(attempt.x))
            if (
                not (collapsed or parked)
                or diagnostics.restarts >= recovery.max_restarts
            ):
                break
            diagnostics.restarts += 1
            diagnostics.events.append(
                NumericalEvent(
                    "optimizer_restart",
                    "optimizer",
                    "line search collapsed before the first step"
                    if collapsed
                    else "parameters parked at bounds: " + ",".join(parked),
                    {"restart": diagnostics.restarts},
                )
            )
            x_start = recovery.perturb(free_x0, rng)
        assert best is not None
        # Attribute the *total* work across attempts to the kept optimum
        # so Table-III-style accounting reflects what was actually spent.
        best.n_iterations = sum(a.n_iterations for a in attempts)
        best.n_evaluations = sum(a.n_evaluations for a in attempts)
        opt = best
    runtime = time.perf_counter() - start_time

    if recovery is not None or recorder is not None:
        parked = _parked_params(_expand(opt.x))
        if optimize_branch_lengths:
            k = model.n_params
            logs = _expand(opt.x)[k:]
            lo = math.log(_MIN_BRANCH)
            for j, v in enumerate(logs):
                if v <= lo or v >= _MAX_LOG_BRANCH:
                    parked.append(f"branch[{j}]")
        if parked:
            diagnostics.boundary_flags = parked
            diagnostics.events.append(
                NumericalEvent("boundary_parked", "optimizer", ",".join(parked))
            )
        if recorder is not None:
            diagnostics.events.extend(recorder.since(events_mark))

    values, lengths = _unpack_full(model, _expand(opt.x), fixed_lengths, optimize_branch_lengths)
    return FitResult(
        model_name=model.name,
        engine_name=bound.engine.name,
        lnl=-opt.fun,
        values=values,
        branch_lengths=np.asarray(lengths, dtype=float),
        n_iterations=opt.n_iterations,
        n_evaluations=opt.n_evaluations,
        runtime_seconds=runtime,
        converged=opt.converged,
        message=opt.message,
        history=[-h for h in opt.history],
        diagnostics=diagnostics,
    )


@dataclass
class BranchSiteTest:
    """An H0+H1 branch-site analysis: the paper's unit of work.

    Table III reports runtimes/iterations "combined for H0+H1"; the
    convenience properties below provide those combined quantities.
    """

    h0: FitResult
    h1: FitResult
    lrt: LRTResult

    @property
    def combined_runtime(self) -> float:
        return self.h0.runtime_seconds + self.h1.runtime_seconds

    @property
    def combined_iterations(self) -> int:
        return self.h0.n_iterations + self.h1.n_iterations

    @property
    def combined_evaluations(self) -> int:
        """Likelihood evaluations across H0+H1, finite-difference probes
        included — the per-task work metric batch scans aggregate."""
        return self.h0.n_evaluations + self.h1.n_evaluations

    def summary(self) -> str:
        return (
            f"{self.h0.summary()}\n{self.h1.summary()}\n"
            f"LRT: 2Δ = {self.lrt.statistic:.4f}, "
            f"p(χ²₁) = {self.lrt.pvalue_chi2:.4g}, "
            f"p(mixture) = {self.lrt.pvalue_mixture:.4g}"
        )


def fit_branch_site_test(
    make_bound: Callable[[CodonSiteModel], BoundLikelihood],
    seed: RngLike = 1,
    max_iterations: int = 200,
    method: str = "bfgs",
    share_start_lengths: bool = True,
    retry_degenerate_h1: bool = True,
    start_overrides: Optional[Dict[str, float]] = None,
    models: "Optional[tuple[CodonSiteModel, CodonSiteModel]]" = None,
    grid_search: Optional[bool] = None,
    **fit_kwargs,
) -> BranchSiteTest:
    """Fit an H0/H1 branch-site pair and run the 1-df LRT.

    Defaults to the paper's branch-site model A; any null/alternative
    model pair sharing the branch-site structure (e.g. the BS-REL
    family from ``repro.models.bsrel``) plugs in via ``models``.

    Parameters
    ----------
    make_bound:
        Factory mapping a model instance to a bound likelihood (so each
        hypothesis gets its own binding against the same engine/data),
        e.g. ``lambda m: engine.bind(tree, alignment, m)``.
    seed:
        Start-value seed — the same integer must be given to each engine
        under comparison (paper §IV fixed-seed rule).
    share_start_lengths:
        Start H1 from H0's fitted branch lengths (CodeML-style warm
        start); both engines do the same, so comparisons stay fair.
    retry_degenerate_h1:
        When the H0 optimum is also a stationary point of H1 (e.g. the
        selected proportion collapsed, making the foreground ω
        unidentifiable), the warm-started H1 fit terminates immediately.
        Mirroring PAML's advice to try several initial ω values, a
        second H1 fit from the model's default start is then run and the
        better optimum kept.  Both engines follow the identical rule, so
        comparisons stay fair.
    start_overrides:
        Explicit start values overriding the seeded defaults (e.g. the
        control file's ``kappa``); keys outside a hypothesis' parameter
        set are ignored for that hypothesis.
    models:
        ``(h0_model, h1_model)`` instances; default is model A's pair.
        The shared warm-start parameters are the intersection of the two
        models' parameter names, in H0 order.
    grid_search:
        Run the model's ω-grid start-point search (``grid_start``)
        before each hypothesis fit.  ``None`` (default) enables it
        exactly for models that expose the hook (BS-REL), keeping model
        A's historical start path bit-identical.
    """
    from repro.models.branch_site import BranchSiteModelA

    if models is None:
        h0_model: CodonSiteModel = BranchSiteModelA(fix_omega2=True)
        h1_model: CodonSiteModel = BranchSiteModelA(fix_omega2=False)
    else:
        h0_model, h1_model = models

    def _with_overrides(model: CodonSiteModel, start: Dict[str, float]) -> Dict[str, float]:
        if start_overrides:
            for key, value in start_overrides.items():
                if key in model.param_names:
                    start[key] = float(value)
        return start

    def _grid(model: CodonSiteModel, bound: BoundLikelihood, start: Dict[str, float]):
        use_grid = (
            hasattr(model, "grid_start") if grid_search is None else bool(grid_search)
        )
        if not use_grid:
            return start
        if not hasattr(model, "grid_start"):
            raise ValueError(f"{model.name} does not support grid_search")
        return model.grid_start(bound, start)

    bound0 = make_bound(h0_model)
    h0_start = _with_overrides(h0_model, h0_model.default_start(make_rng(seed)))
    h0 = fit_model(
        bound0,
        start_values=_grid(h0_model, bound0, h0_start),
        seed=seed,
        max_iterations=max_iterations,
        method=method,
        **fit_kwargs,
    )

    bound1 = make_bound(h1_model)
    h1_start = _with_overrides(h1_model, h1_model.default_start(make_rng(seed)))
    h1_start = _grid(h1_model, bound1, h1_start)
    # Warm-start the shared parameters from the H0 solution.
    for key in h0_model.param_names:
        if key in h1_model.param_names:
            h1_start[key] = h0.values[key]
    if start_overrides and "kappa" in start_overrides and "kappa" in (
        fit_kwargs.get("fixed_params") or ()
    ):
        h1_start["kappa"] = float(start_overrides["kappa"])
    h1 = fit_model(
        bound1,
        start_values=h1_start,
        start_lengths=h0.branch_lengths if share_start_lengths else None,
        seed=seed,
        max_iterations=max_iterations,
        method=method,
        **fit_kwargs,
    )
    if retry_degenerate_h1 and (h1.n_iterations == 0 or h1.lnl <= h0.lnl + 1e-8):  # noqa: SIM102
        retry = fit_model(
            bound1,
            start_values=_with_overrides(h1_model, h1_model.default_start(make_rng(seed))),
            start_lengths=h0.branch_lengths if share_start_lengths else None,
            seed=seed,
            max_iterations=max_iterations,
            method=method,
            **fit_kwargs,
        )
        if retry.lnl > h1.lnl:
            # Account for the full work performed under H1.
            retry.n_iterations += h1.n_iterations
            retry.n_evaluations += h1.n_evaluations
            retry.runtime_seconds += h1.runtime_seconds
            retry.diagnostics.restarts += h1.diagnostics.restarts
            retry.diagnostics.events = h1.diagnostics.events + retry.diagnostics.events
            h1 = retry
    lrt = likelihood_ratio_test(h0.lnl, h1.lnl, df=1)
    return BranchSiteTest(h0=h0, h1=h1, lrt=lrt)


@dataclass
class SitesTest:
    """An M1a+M2a sites analysis — the classic test for positive selection.

    The paper's §V-B extension point: the optimized likelihood
    computation applies unchanged to further ML-based models.  M1a vs
    M2a is the standard *site* test (no foreground branch; selection
    anywhere in the tree), compared with 2 degrees of freedom.
    """

    m1a: FitResult
    m2a: FitResult
    lrt: LRTResult

    def summary(self) -> str:
        return (
            f"{self.m1a.summary()}\n{self.m2a.summary()}\n"
            f"LRT (df=2): 2Δ = {self.lrt.statistic:.4f}, "
            f"p = {self.lrt.pvalue_chi2:.4g}"
        )


def fit_sites_test(
    make_bound: Callable[[CodonSiteModel], BoundLikelihood],
    seed: RngLike = 1,
    max_iterations: int = 200,
    method: str = "bfgs",
    **fit_kwargs,
) -> SitesTest:
    """Fit M1a (null) and M2a (alternative) and run the 2-df LRT.

    Mirrors :func:`fit_branch_site_test`: M2a warm-starts from the M1a
    solution (shared parameters and branch lengths), so both engines
    compare fairly under the same seed.
    """
    from repro.models.sites import M1aModel, M2aModel

    m1a_model = M1aModel()
    m2a_model = M2aModel()

    bound1 = make_bound(m1a_model)
    m1a = fit_model(bound1, seed=seed, max_iterations=max_iterations, method=method, **fit_kwargs)

    bound2 = make_bound(m2a_model)
    m2a_start = m2a_model.default_start(make_rng(seed))
    m2a_start["kappa"] = m1a.values["kappa"]
    m2a_start["omega0"] = m1a.values["omega0"]
    # Split M1a's neutral mass, reserving some for the selected class.
    p0 = min(m1a.values["p0"], 0.9)
    p1 = max(min(0.95 - p0, (1.0 - p0) * 0.8), 0.01)
    m2a_start["p0"], m2a_start["p1"] = p0, p1
    m2a = fit_model(
        bound2,
        start_values=m2a_start,
        start_lengths=m1a.branch_lengths,
        seed=seed,
        max_iterations=max_iterations,
        method=method,
        **fit_kwargs,
    )
    lrt = likelihood_ratio_test(m1a.lnl, m2a.lnl, df=2)
    return SitesTest(m1a=m1a, m2a=m2a, lrt=lrt)
