"""Empirical Bayes identification of positively selected sites.

After a significant LRT, the paper's workflow (§I-A, citing Yang, Wong &
Nielsen 2005) computes the posterior probability that each codon site
belongs to a positively selected class (2a/2b of Table I):

* **NEB** (naive empirical Bayes): posterior at the MLEs — fast, but
  ignores parameter uncertainty.
* **BEB** (Bayes empirical Bayes): integrates over a prior grid of
  mixture parameters.  Following the spirit of YWN 2005 we place uniform
  grids on the proportion coordinates (``total = p0+p1`` and
  ``split = p0/total``) and on ``ω2``; κ, ω0 and branch lengths are
  fixed at their MLEs (a documented simplification — YWN grid ω0 too).

Both return per-*site* probabilities (patterns expanded back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.engine import BoundLikelihood
from repro.likelihood.mixture import class_posteriors
from repro.utils.numerics import logsumexp_weighted

__all__ = ["SiteProbabilities", "neb_site_probabilities", "beb_site_probabilities"]


def _positive_indices(bound: BoundLikelihood, values: Dict[str, float]) -> list:
    """Positively-selected class indices from the model's class graph.

    The graph's structural ``positive`` flags replace the old hard-coded
    ``(2, 3)`` tuple (model A's 2a/2b) — any N-class model that marks
    its selected classes works, in whatever order it lists them.
    """
    positive = list(bound.model.site_class_graph(values).positive_indices)
    if not positive:
        raise ValueError(
            f"model {type(bound.model).__name__} declares no positively-selected "
            "site classes; empirical Bayes has nothing to report on"
        )
    return positive


@dataclass
class SiteProbabilities:
    """Per-site posterior probabilities of positive selection.

    Attributes
    ----------
    probabilities:
        ``(n_sites,)`` posterior P(class ∈ {2a, 2b} | data) per codon.
    class_probabilities:
        ``(n_classes, n_sites)`` full posterior per class.
    method:
        ``"NEB"`` or ``"BEB"``.
    """

    probabilities: np.ndarray
    class_probabilities: np.ndarray
    method: str

    def selected_sites(self, threshold: float = 0.95) -> np.ndarray:
        """1-based codon positions with posterior above ``threshold``."""
        return np.flatnonzero(self.probabilities > threshold) + 1


def neb_site_probabilities(
    bound: BoundLikelihood,
    values: Dict[str, float],
    branch_lengths: Optional[Sequence[float]] = None,
) -> SiteProbabilities:
    """Naive empirical Bayes: class posteriors at the given MLEs."""
    class_lnl, proportions = bound.site_class_matrix(values, branch_lengths)
    post = class_posteriors(class_lnl, proportions)
    per_site = bound.patterns.expand(post, axis=1)
    positive = per_site[_positive_indices(bound, values), :].sum(axis=0)
    return SiteProbabilities(
        probabilities=positive, class_probabilities=per_site, method="NEB"
    )


def _proportion_grid(n: int) -> np.ndarray:
    """Midpoint grid on (0, 1): (2k+1)/(2n) for k = 0..n−1 (YWN style)."""
    return (2 * np.arange(n) + 1) / (2 * n)


def beb_site_probabilities(
    bound: BoundLikelihood,
    values: Dict[str, float],
    branch_lengths: Optional[Sequence[float]] = None,
    n_proportion_grid: int = 10,
    n_omega2_grid: int = 10,
    omega2_max: float = 11.0,
) -> SiteProbabilities:
    """Bayes empirical Bayes over a (total, split, ω2) prior grid.

    The posterior over grid cells ``g`` is
    ``W(g) ∝ prior(g) · Π_s L_s(g)^{w_s}`` (computed in log space), and
    the per-site class posterior is the W-weighted average of the
    per-cell NEB posteriors.

    Under H0 (no ``omega2`` in ``values``) ω2 is held at 1 and only the
    proportion grid is integrated.
    """
    grid = _proportion_grid(n_proportion_grid)
    if "omega2" in values:
        omega2_grid = 1.0 + (_proportion_grid(n_omega2_grid) * (omega2_max - 1.0))
    else:
        omega2_grid = np.array([1.0])

    weights = bound.patterns.weights
    n_classes_expected = 4

    # Per ω2 grid value: the (4, n_patterns) class log-likelihood matrix.
    class_lnls = []
    for omega2 in omega2_grid:
        vals = dict(values)
        if "omega2" in vals:
            vals["omega2"] = float(omega2)
        class_lnl, _ = bound.site_class_matrix(vals, branch_lengths)
        if class_lnl.shape[0] != n_classes_expected:
            raise ValueError("BEB requires the 4-class branch-site model A")
        class_lnls.append(class_lnl)

    n_patterns = class_lnls[0].shape[1]
    log_cell_weights = []
    cell_class_post = []  # per cell: (4, n_patterns)

    for k, class_lnl in enumerate(class_lnls):
        for total in grid:
            for split in grid:
                p0, p1 = total * split, total * (1.0 - split)
                rest = 1.0 - total
                q = np.array(
                    [p0, p1, rest * split, rest * (1.0 - split)]
                )
                per_pattern = logsumexp_weighted(class_lnl, q, axis=0)
                log_cell_weights.append(float(weights @ per_pattern))
                cell_class_post.append(class_posteriors(class_lnl, q))

    log_w = np.array(log_cell_weights)
    log_w -= log_w.max()
    w = np.exp(log_w)
    w /= w.sum()

    post = np.zeros((n_classes_expected, n_patterns))
    for cell_weight, cell_post in zip(w, cell_class_post):
        if cell_weight > 0:
            post += cell_weight * cell_post

    per_site = bound.patterns.expand(post, axis=1)
    positive = per_site[_positive_indices(bound, values), :].sum(axis=0)
    return SiteProbabilities(
        probabilities=positive, class_probabilities=per_site, method="BEB"
    )
