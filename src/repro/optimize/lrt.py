"""Likelihood ratio test for positive selection.

The branch-site test compares H1 (ω2 free, ≥ 1) against H0 (ω2 = 1)
with ``2Δ = 2(lnL₁ − lnL₀)``.  Because ω2 = 1 sits on the boundary of
the H1 parameter space, the asymptotic null is the 50:50 mixture of a
point mass at 0 and χ²₁ (Self & Liang); PAML's manual recommends the
plain χ²₁ as a conservative test.  Both p-values are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.stats

__all__ = ["LRTResult", "likelihood_ratio_test", "holm_correction"]


@dataclass(frozen=True)
class LRTResult:
    """Outcome of a likelihood ratio test."""

    lnl_null: float
    lnl_alternative: float
    statistic: float
    df: int
    #: Conservative χ²_df p-value (PAML's recommendation).
    pvalue_chi2: float
    #: Boundary-corrected 50:50 mixture p-value (½·χ²_df tail).
    pvalue_mixture: float

    def significant(self, alpha: float = 0.05, conservative: bool = True) -> bool:
        """Significance at level ``alpha`` (conservative χ² by default)."""
        p = self.pvalue_chi2 if conservative else self.pvalue_mixture
        return p < alpha


def likelihood_ratio_test(lnl_null: float, lnl_alternative: float, df: int = 1) -> LRTResult:
    """Build an :class:`LRTResult` from the two fitted log-likelihoods.

    A slightly *negative* statistic (alternative below null) can occur
    when the optimizer stops early; it is clamped to zero — the standard
    practical convention — since H0 ⊂ H1 guarantees the true maximised
    difference is non-negative.
    """
    if df < 1:
        raise ValueError(f"df must be ≥ 1, got {df}")
    statistic = 2.0 * (lnl_alternative - lnl_null)
    clamped = max(statistic, 0.0)
    tail = float(scipy.stats.chi2.sf(clamped, df))
    if clamped == 0.0:
        pvalue_chi2 = 1.0
        pvalue_mixture = 1.0
    else:
        pvalue_chi2 = tail
        pvalue_mixture = 0.5 * tail
    return LRTResult(
        lnl_null=float(lnl_null),
        lnl_alternative=float(lnl_alternative),
        statistic=clamped,
        df=df,
        pvalue_chi2=pvalue_chi2,
        pvalue_mixture=pvalue_mixture,
    )


def holm_correction(pvalues: Sequence[float]) -> np.ndarray:
    """Holm-Bonferroni step-down adjusted p-values.

    The multiple-testing correction for the all-branches survey (HyPhy's
    BranchSiteREL reports the same): with ``m`` branch tests, the i-th
    smallest raw p-value is multiplied by ``m − i``, running maxima
    enforce monotonicity, and values are capped at 1.  Rejecting
    adjusted p-values below α controls the family-wise error rate at α
    under arbitrary dependence — strictly more powerful than plain
    Bonferroni, never less.
    """
    p = np.asarray(pvalues, dtype=float)
    if p.ndim != 1:
        raise ValueError(f"expected a 1-d p-value array, got shape {p.shape}")
    if p.size == 0:
        return p.copy()
    if np.any(~np.isfinite(p)) or np.any(p < 0) or np.any(p > 1):
        raise ValueError("p-values must be finite and within [0, 1]")
    m = p.size
    order = np.argsort(p, kind="stable")
    adjusted = np.empty(m, dtype=float)
    running = 0.0
    for rank, idx in enumerate(order):
        running = max(running, (m - rank) * p[idx])
        adjusted[idx] = min(1.0, running)
    return adjusted
