"""Maximum-likelihood estimation, hypothesis testing, and site inference.

* :mod:`repro.optimize.bfgs` — quasi-Newton BFGS with finite-difference
  gradients (paper §II-B: "Newton-Raphson methods or an approximation
  like the Broyden-Fletcher-Goldfarb-Shanno (BFGS) method").
* :mod:`repro.optimize.ml` — the fit driver: packs model parameters and
  branch lengths, counts iterations (Table III), runs H0/H1 pairs.
* :mod:`repro.optimize.lrt` — the likelihood ratio test for positive
  selection, with the χ²₁ and boundary-mixture p-values.
* :mod:`repro.optimize.beb` — naive and Bayes empirical Bayes posterior
  probabilities of positive selection per site (the downstream step the
  paper's introduction describes).
"""

from repro.optimize.bfgs import OptimizeResult, minimize_bfgs
from repro.optimize.lrt import LRTResult, likelihood_ratio_test
from repro.optimize.ml import BranchSiteTest, FitResult, fit_branch_site_test, fit_model

__all__ = [
    "BranchSiteTest",
    "FitResult",
    "LRTResult",
    "OptimizeResult",
    "fit_branch_site_test",
    "fit_model",
    "likelihood_ratio_test",
    "minimize_bfgs",
]
