"""BFGS quasi-Newton minimiser with finite-difference gradients.

The paper maximises the branch-site likelihood with "iterative
maximization algorithms such as Newton-Raphson methods or an
approximation like the BFGS method" (§II-B) and reports *iteration
counts* per dataset (Table III); this implementation therefore exposes
both iteration and function-evaluation counts, and both engines in a
benchmark run the *same* optimiser so runtime differences isolate the
likelihood kernels.

Implementation notes
--------------------
* Dense inverse-Hessian update (parameter counts here are ≤ a few
  hundred: model params + 2s−3 branch lengths).
* Forward-difference gradients with per-coordinate relative steps; an
  evaluation counter includes gradient probes.
* Armijo backtracking line search; the BFGS update is skipped when the
  curvature condition fails (standard damping-free safeguard, which
  keeps the inverse Hessian positive definite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "OptimizeResult",
    "minimize_bfgs",
    "finite_difference_gradient",
    "BARRIER_SLOPE",
]

#: Finite stand-in slope for a gradient probe that hit a non-finite
#: objective (a parameter wall or a diagnosed numerical fault mapped to
#: ``+inf``).  Steep enough that the line search immediately backs away
#: from the wall, small enough that ``slope * h`` stays well inside the
#: double range for any reasonable step.
BARRIER_SLOPE = 1e8


def _barrier(value: float) -> float:
    """Uniform non-finite handling: NaN, ``+inf`` *and* ``-inf`` → ``+inf``.

    A ``-inf`` objective (``+inf`` log-likelihood) is just as much a
    numerical fault as NaN — letting it through would make the line
    search chase an unbounded descent direction into garbage.
    """
    return value if np.isfinite(value) else np.inf


@dataclass
class OptimizeResult:
    """Outcome of a minimisation run."""

    x: np.ndarray
    fun: float
    n_iterations: int
    n_evaluations: int
    converged: bool
    message: str
    #: Objective value after each accepted iteration (for convergence plots).
    history: List[float] = field(default_factory=list)
    #: True when the run ended because backtracking found no decrease —
    #: either ordinary convergence-by-stagnation *or*, when it happens
    #: with ``n_iterations == 0``, a collapse the recovery policy in
    #: :mod:`repro.optimize.ml` treats as a restartable fault.
    line_search_failed: bool = False


def finite_difference_gradient(
    fun: Callable[..., float],
    x: np.ndarray,
    f0: float,
    relative_step: float = 1e-6,
    touched: Optional[Sequence[object]] = None,
) -> np.ndarray:
    """Forward-difference gradient with per-coordinate relative steps.

    ``touched`` optionally supplies one structure hint per coordinate
    (e.g. which branch a coordinate moves); the probe for coordinate
    ``i`` is then issued as ``fun(probe, touched[i])`` so an incremental
    likelihood can re-prune only that coordinate's dirty path and treat
    the probe as transient.  Without hints every probe is the plain
    ``fun(probe)`` of the historical code.
    """
    n = x.shape[0]
    if touched is not None and len(touched) != n:
        raise ValueError(
            f"touched hints must match the coordinate count: {len(touched)} != {n}"
        )
    grad = np.empty(n)
    for i in range(n):
        h = relative_step * (abs(x[i]) + 1.0)
        probe = x.copy()
        probe[i] += h
        fi = fun(probe) if touched is None else fun(probe, touched[i])
        slope = (fi - f0) / h
        if not np.isfinite(slope):
            # Probe hit an infinite barrier (parameter wall): represent
            # it as a steep finite uphill slope so the direction update
            # stays well-defined.
            slope = BARRIER_SLOPE
        grad[i] = slope
    return grad


def minimize_bfgs(
    fun: Callable[..., float],
    x0: np.ndarray,
    gtol: float = 1e-4,
    ftol: float = 1e-9,
    max_iterations: int = 200,
    relative_step: float = 1e-6,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    coordinate_touched: Optional[Sequence[object]] = None,
) -> OptimizeResult:
    """Minimise ``fun`` from ``x0`` with BFGS and numeric gradients.

    Parameters
    ----------
    gtol:
        Convergence on the gradient infinity norm.
    ftol:
        Convergence on the relative objective decrease between accepted
        iterations.
    max_iterations:
        Iteration budget; benchmark fits use a *fixed* budget per engine
        so per-iteration speedups (paper Table IV, ``Si``) are measured
        on equal work.
    callback:
        Called as ``callback(iteration, x, f)`` after each accepted step.
    coordinate_touched:
        Optional per-coordinate structure hints forwarded to
        :func:`finite_difference_gradient`; when given, ``fun`` must also
        accept ``fun(x, hint)`` for gradient probes.  Line-search
        evaluations always call the plain ``fun(x)``.

    Returns
    -------
    OptimizeResult
        ``n_evaluations`` counts every objective call, including
        finite-difference probes.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValueError(f"x0 must be a vector, got shape {x.shape}")
    n = x.shape[0]
    evaluations = 0

    def f(z: np.ndarray, *hint: object) -> float:
        nonlocal evaluations
        evaluations += 1
        # Any non-finite value (NaN, ±inf) becomes a +inf barrier so the
        # line search backs off uniformly.
        return _barrier(float(fun(z, *hint)))

    fx = f(x)
    if not np.isfinite(fx):
        raise ValueError("objective is not finite at the start point")
    grad = finite_difference_gradient(f, x, fx, relative_step, touched=coordinate_touched)
    h_inv = np.eye(n)
    history: List[float] = [fx]
    message = "maximum iterations reached"
    converged = False
    line_search_failed = False

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        grad_norm = float(np.max(np.abs(grad)))
        if grad_norm < gtol:
            message = f"gradient norm {grad_norm:.3g} < gtol"
            converged = True
            iteration -= 1
            break

        direction = -h_inv @ grad
        slope = float(grad @ direction)
        if slope >= 0:
            # Numerical breakdown: reset to steepest descent.
            h_inv = np.eye(n)
            direction = -grad
            slope = float(grad @ direction)
            if slope >= 0:
                message = "zero gradient direction"
                converged = True
                iteration -= 1
                break

        # Armijo backtracking.
        step = 1.0
        accepted = False
        fx_new = fx
        for _ in range(40):
            x_new = x + step * direction
            fx_new = f(x_new)
            if fx_new <= fx + 1e-4 * step * slope:
                accepted = True
                break
            step *= 0.5
        if not accepted:
            message = "line search failed to find a decrease"
            converged = True
            line_search_failed = True
            iteration -= 1
            break

        grad_new = finite_difference_gradient(
            f, x_new, fx_new, relative_step, touched=coordinate_touched
        )
        s = x_new - x
        y = grad_new - grad
        sy = float(s @ y)
        if sy > 1e-12 * float(np.linalg.norm(s) * np.linalg.norm(y) + 1e-300):
            rho = 1.0 / sy
            i_mat = np.eye(n)
            left = i_mat - rho * np.outer(s, y)
            h_inv = left @ h_inv @ left.T + rho * np.outer(s, s)

        f_decrease = fx - fx_new
        x, fx, grad = x_new, fx_new, grad_new
        history.append(fx)
        if callback is not None:
            callback(iteration, x, fx)
        if 0 <= f_decrease < ftol * (abs(fx) + 1.0):
            message = f"objective decrease {f_decrease:.3g} below ftol"
            converged = True
            break

    return OptimizeResult(
        x=x,
        fun=fx,
        n_iterations=iteration,
        n_evaluations=evaluations,
        converged=converged,
        message=message,
        history=history,
        line_search_failed=line_search_failed,
    )
