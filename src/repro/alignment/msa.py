"""Codon alignment container and nucleotide→codon-state encoding.

Each alignment cell is encoded as one of:

* a sense-codon state index in ``[0, n_states)``,
* :data:`MISSING` (−1): a gap / fully unknown codon — its leaf CLV is a
  vector of ones (Felsenstein's convention for missing data),
* :data:`AMBIGUOUS` (−2): partially known (IUPAC ambiguity letters);
  the set of compatible sense codons is stored per cell and the leaf CLV
  is the indicator of that set.

Stop codons in observed data are rejected by default — they cannot
appear in the codon-model state space — or can be downgraded to missing
(CodeML's ``cleandata`` spirit) with ``on_stop="missing"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.codon.genetic_code import GeneticCode, NUCLEOTIDES, UNIVERSAL

__all__ = ["CodonAlignment", "MISSING", "AMBIGUOUS", "IUPAC"]

#: Cell code for a completely unknown codon (gap, ???, NNN).
MISSING = -1
#: Cell code for a partially known codon; see CodonAlignment.ambiguity_sets.
AMBIGUOUS = -2

#: IUPAC nucleotide ambiguity codes over the TCAG alphabet ("U" folds to "T").
IUPAC: Dict[str, str] = {
    "T": "T", "C": "C", "A": "A", "G": "G", "U": "T",
    "R": "AG", "Y": "CT", "S": "CG", "W": "AT", "K": "GT", "M": "AC",
    "B": "CGT", "D": "AGT", "H": "ACT", "V": "ACG",
    "N": "TCAG", "X": "TCAG", "?": "TCAG", "-": "TCAG",
}


def _possible_codons(triplet: str, code: GeneticCode) -> Tuple[int, ...]:
    """Sense-codon state indices compatible with a (possibly ambiguous) triplet."""
    try:
        choices = [IUPAC[base] for base in triplet]
    except KeyError as exc:
        raise ValueError(f"unknown nucleotide symbol {exc.args[0]!r} in codon {triplet!r}") from None
    index = code.codon_index
    states = []
    for n1 in choices[0]:
        for n2 in choices[1]:
            for n3 in choices[2]:
                state = index.get(n1 + n2 + n3)
                if state is not None:
                    states.append(state)
    return tuple(sorted(states))


@dataclass
class CodonAlignment:
    """An encoded codon MSA.

    Attributes
    ----------
    names:
        Taxon names, one per row.
    states:
        ``(n_taxa, n_codons)`` int array of cell codes (see module doc).
    ambiguity_sets:
        For each :data:`AMBIGUOUS` cell, ``(row, col) → tuple`` of
        compatible state indices.
    code:
        The genetic code used for encoding.
    """

    names: List[str]
    states: np.ndarray
    ambiguity_sets: Dict[Tuple[int, int], Tuple[int, ...]] = field(default_factory=dict)
    code: GeneticCode = UNIVERSAL

    def __post_init__(self) -> None:
        self.states = np.asarray(self.states, dtype=np.int32)
        if self.states.ndim != 2:
            raise ValueError(f"states must be 2-D, got shape {self.states.shape}")
        if len(self.names) != self.states.shape[0]:
            raise ValueError(
                f"{len(self.names)} names but {self.states.shape[0]} sequence rows"
            )
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate taxon names in alignment")

    # ------------------------------------------------------------------
    @property
    def n_taxa(self) -> int:
        return self.states.shape[0]

    @property
    def n_codons(self) -> int:
        return self.states.shape[1]

    def row(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"taxon {name!r} not in alignment") from None

    # ------------------------------------------------------------------
    @classmethod
    def from_sequences(
        cls,
        names: Sequence[str],
        sequences: Sequence[str],
        code: GeneticCode = UNIVERSAL,
        on_stop: str = "raise",
    ) -> "CodonAlignment":
        """Encode raw nucleotide strings into a codon alignment.

        Parameters
        ----------
        on_stop:
            ``"raise"`` rejects alignments containing unambiguous stop
            codons; ``"missing"`` treats such cells as missing data.
        """
        if on_stop not in ("raise", "missing"):
            raise ValueError(f"on_stop must be 'raise' or 'missing', got {on_stop!r}")
        if len(names) != len(sequences):
            raise ValueError("names and sequences differ in length")
        if not sequences:
            raise ValueError("empty alignment")
        lengths = {len(s) for s in sequences}
        if len(lengths) != 1:
            raise ValueError(f"sequences have unequal lengths: {sorted(lengths)}")
        (nt_len,) = lengths
        if nt_len % 3 != 0:
            raise ValueError(f"alignment length {nt_len} is not a multiple of 3")
        n_codons = nt_len // 3

        index = code.codon_index
        states = np.full((len(names), n_codons), MISSING, dtype=np.int32)
        ambiguity: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        n_states = code.n_states

        for row, seq in enumerate(sequences):
            seq = seq.upper().replace("U", "T")
            for col in range(n_codons):
                triplet = seq[3 * col : 3 * col + 3]
                state = index.get(triplet)
                if state is not None:
                    states[row, col] = state
                    continue
                if all(base in NUCLEOTIDES for base in triplet):
                    # Unambiguous but not a sense codon: a stop codon.
                    if on_stop == "raise":
                        raise ValueError(
                            f"stop codon {triplet!r} at codon {col + 1} of "
                            f"{names[row]!r}; pass on_stop='missing' to mask it"
                        )
                    states[row, col] = MISSING
                    continue
                possible = _possible_codons(triplet, code)
                if len(possible) == 0:
                    raise ValueError(
                        f"codon {triplet!r} at codon {col + 1} of {names[row]!r} "
                        "is compatible only with stop codons"
                    )
                if len(possible) == n_states:
                    states[row, col] = MISSING
                elif len(possible) == 1:
                    states[row, col] = possible[0]
                else:
                    states[row, col] = AMBIGUOUS
                    ambiguity[(row, col)] = possible
        return cls(names=list(names), states=states, ambiguity_sets=ambiguity, code=code)

    # ------------------------------------------------------------------
    def to_sequences(self) -> List[str]:
        """Decode back to nucleotide strings (missing → ``---``).

        Ambiguous cells decode to ``NNN`` — the original ambiguity letters
        are not retained, so this is lossy only for partially ambiguous
        cells.
        """
        sense = self.code.sense_codons
        out = []
        for row in range(self.n_taxa):
            parts = []
            for col in range(self.n_codons):
                state = int(self.states[row, col])
                if state == MISSING:
                    parts.append("---")
                elif state == AMBIGUOUS:
                    parts.append("NNN")
                else:
                    parts.append(sense[state])
            out.append("".join(parts))
        return out

    def leaf_clv(self, row: int, col: int) -> np.ndarray:
        """Leaf conditional probability vector for one cell (Fig. 2 leaves)."""
        clv = np.zeros(self.code.n_states)
        state = int(self.states[row, col])
        if state == MISSING:
            clv[:] = 1.0
        elif state == AMBIGUOUS:
            clv[list(self.ambiguity_sets[(row, col)])] = 1.0
        else:
            clv[state] = 1.0
        return clv

    def subset_taxa(self, keep: Sequence[str]) -> "CodonAlignment":
        """Restrict to the given taxa (in the given order)."""
        rows = [self.row(name) for name in keep]
        states = self.states[rows, :].copy()
        ambiguity = {
            (i, col): states_set
            for i, old_row in enumerate(rows)
            for (r, col), states_set in self.ambiguity_sets.items()
            if r == old_row
        }
        return CodonAlignment(list(keep), states, ambiguity, self.code)

    def drop_incomplete_columns(self) -> "CodonAlignment":
        """CodeML ``cleandata = 1``: remove columns with any missing/ambiguous cell."""
        complete = np.all(self.states >= 0, axis=0)
        return CodonAlignment(
            list(self.names), self.states[:, complete].copy(), {}, self.code
        )
