"""Alignment file formats: PHYLIP (CodeML's input format) and FASTA.

PAML reads sequential or interleaved PHYLIP; both are supported, with
the relaxed (long-name, whitespace-separated) convention modern
pipelines use.  ``read_alignment`` sniffs the format from the content.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple, Union

from repro.alignment.msa import CodonAlignment
from repro.codon.genetic_code import GeneticCode, UNIVERSAL

__all__ = [
    "read_alignment",
    "read_fasta",
    "read_phylip",
    "write_fasta",
    "write_phylip",
]

PathLike = Union[str, os.PathLike]


def _read_text(source: PathLike) -> str:
    with open(source, "r", encoding="utf-8") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# FASTA
# ----------------------------------------------------------------------
def parse_fasta_text(text: str) -> Tuple[List[str], List[str]]:
    """Parse FASTA text into (names, sequences); preserves input order."""
    names: List[str] = []
    chunks: List[List[str]] = []
    current: List[str] | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError(f"empty FASTA header at line {lineno}")
            names.append(name)
            current = []
            chunks.append(current)
        else:
            if current is None:
                raise ValueError(f"sequence data before any FASTA header at line {lineno}")
            current.append(line)
    if not names:
        raise ValueError("no FASTA records found")
    return names, ["".join(c) for c in chunks]


def read_fasta(source: PathLike, code: GeneticCode = UNIVERSAL, **kwargs) -> CodonAlignment:
    """Read a FASTA file into a :class:`CodonAlignment`."""
    names, seqs = parse_fasta_text(_read_text(source))
    return CodonAlignment.from_sequences(names, seqs, code=code, **kwargs)


def write_fasta(alignment: CodonAlignment, destination: PathLike, width: int = 60) -> None:
    """Write an alignment as wrapped FASTA."""
    with open(destination, "w", encoding="utf-8") as handle:
        for name, seq in zip(alignment.names, alignment.to_sequences()):
            handle.write(f">{name}\n")
            for start in range(0, len(seq), width):
                handle.write(seq[start : start + width] + "\n")


# ----------------------------------------------------------------------
# PHYLIP (sequential and interleaved, relaxed names)
# ----------------------------------------------------------------------
def parse_phylip_text(text: str) -> Tuple[List[str], List[str]]:
    """Parse PHYLIP text into (names, sequences).

    Handles both sequential records (name followed by enough residue
    characters, possibly wrapped over lines) and interleaved blocks.
    Sequence characters may be blank-separated (PAML writes codons in
    triplets separated by spaces).
    """
    lines = [ln.rstrip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise ValueError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"bad PHYLIP header {lines[0]!r}: expected 'n_taxa n_chars'")
    try:
        n_taxa, n_chars = int(header[0]), int(header[1])
    except ValueError:
        raise ValueError(f"bad PHYLIP header {lines[0]!r}: counts must be integers") from None
    if n_taxa <= 0 or n_chars <= 0:
        raise ValueError(f"bad PHYLIP header counts: {n_taxa} taxa, {n_chars} chars")

    body = lines[1:]
    names: List[str] = []
    seqs: List[List[str]] = []

    # First pass: the first n_taxa entries each start with a name.  The
    # format is *sequential* when a record's residues wrap onto nameless
    # lines until the record is complete; it is *interleaved* when an
    # incomplete record is immediately followed by the next name line.
    # The first incomplete record decides the mode for the whole file.
    mode: str | None = None
    cursor = 0
    while len(names) < n_taxa:
        if cursor >= len(body):
            raise ValueError(f"PHYLIP input ended before {n_taxa} taxa were read")
        parts = body[cursor].split()
        names.append(parts[0])
        chunk = "".join(parts[1:])
        cursor += 1
        if mode != "interleaved":
            while (
                len(chunk) < n_chars
                and cursor < len(body)
                and not _looks_like_named_line(body[cursor], n_chars)
            ):
                chunk += body[cursor].replace(" ", "")
                cursor += 1
            if len(chunk) < n_chars:
                mode = "interleaved"
            elif mode is None:
                mode = "sequential"
        seqs.append([chunk])

    # Remaining lines are interleaved continuation blocks, cycling taxa.
    taxon = 0
    while cursor < len(body):
        parts = body[cursor].split()
        # A continuation line may redundantly repeat the name.
        if parts and parts[0] == names[taxon] and len(parts) > 1:
            parts = parts[1:]
        seqs[taxon].append("".join(parts))
        taxon = (taxon + 1) % n_taxa
        cursor += 1

    sequences = ["".join(chunks) for chunks in seqs]
    for name, seq in zip(names, sequences):
        if len(seq) != n_chars:
            raise ValueError(
                f"taxon {name!r} has {len(seq)} characters, header promised {n_chars}"
            )
    return names, sequences


def _looks_like_named_line(line: str, n_chars: int) -> bool:
    """Heuristic: does this line start a new taxon record?

    A name token contains characters outside the nucleotide/ambiguity
    alphabet, or the line is 'name SEQUENCE' shaped.
    """
    token = line.split()[0]
    residue_chars = set("TCAGUNRYSWKMBDHVX?-.tcagunryswkmbdhvx")
    return not all(ch in residue_chars for ch in token)


def read_phylip(source: PathLike, code: GeneticCode = UNIVERSAL, **kwargs) -> CodonAlignment:
    """Read a PHYLIP file into a :class:`CodonAlignment`."""
    names, seqs = parse_phylip_text(_read_text(source))
    return CodonAlignment.from_sequences(names, seqs, code=code, **kwargs)


def write_phylip(alignment: CodonAlignment, destination: PathLike) -> None:
    """Write sequential PHYLIP the way PAML expects (two-space separator)."""
    seqs = alignment.to_sequences()
    name_width = max(10, max(len(n) for n in alignment.names) + 2)
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(f" {alignment.n_taxa} {alignment.n_codons * 3}\n")
        for name, seq in zip(alignment.names, seqs):
            handle.write(f"{name:<{name_width}s}{seq}\n")


def read_alignment(source: PathLike, code: GeneticCode = UNIVERSAL, **kwargs) -> CodonAlignment:
    """Read FASTA or PHYLIP, sniffing the format from the first character."""
    text = _read_text(source)
    stripped = text.lstrip()
    if stripped.startswith(">"):
        names, seqs = parse_fasta_text(text)
    else:
        names, seqs = parse_phylip_text(text)
    return CodonAlignment.from_sequences(names, seqs, code=code, **kwargs)
