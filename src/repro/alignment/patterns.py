"""Site-pattern compression.

Alignment columns that are identical contribute identical per-site
likelihood terms, so every pruning implementation (CodeML included)
evaluates each distinct *pattern* once and weights its log-likelihood by
the column multiplicity.  This trades an O(taxa × sites) preprocessing
pass for a likelihood loop over ``n_patterns ≤ n_sites`` — a large win
for long alignments such as Table II's dataset ii (5004 codons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.alignment.msa import AMBIGUOUS, CodonAlignment

__all__ = ["PatternAlignment", "compress_patterns"]


@dataclass
class PatternAlignment:
    """Compressed alignment: unique columns plus multiplicities.

    Attributes
    ----------
    alignment:
        A :class:`CodonAlignment` whose columns are the unique patterns.
    weights:
        ``(n_patterns,)`` column multiplicities (sum = original length).
    site_to_pattern:
        ``(n_sites,)`` map from original column to pattern index, so
        per-site quantities (e.g. BEB posteriors) can be expanded back.
    """

    alignment: CodonAlignment
    weights: np.ndarray
    site_to_pattern: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.site_to_pattern = np.asarray(self.site_to_pattern, dtype=np.intp)
        if self.weights.shape[0] != self.alignment.n_codons:
            raise ValueError("weights length must equal the number of patterns")
        if int(self.weights.sum()) != self.site_to_pattern.shape[0]:
            raise ValueError("pattern weights do not sum to the original site count")

    @property
    def n_patterns(self) -> int:
        return self.alignment.n_codons

    @property
    def n_sites(self) -> int:
        return self.site_to_pattern.shape[0]

    def expand(self, per_pattern: np.ndarray, axis: int = -1) -> np.ndarray:
        """Expand a per-pattern array back to per-site along ``axis``."""
        return np.take(per_pattern, self.site_to_pattern, axis=axis)


def _column_key(alignment: CodonAlignment, col: int) -> Tuple:
    """Hashable identity of one column, including ambiguity contents."""
    column = tuple(int(s) for s in alignment.states[:, col])
    if AMBIGUOUS not in column:
        return column
    extras = tuple(
        alignment.ambiguity_sets[(row, col)]
        for row, state in enumerate(column)
        if state == AMBIGUOUS
    )
    return column + (extras,)


def compress_patterns(alignment: CodonAlignment) -> PatternAlignment:
    """Collapse identical columns into weighted patterns.

    Pattern order is first-occurrence order, which keeps the compressed
    alignment deterministic for a given input.  Alignments without
    ambiguity codes (the overwhelmingly common case) take a vectorised
    ``np.unique`` pass over the state matrix — O(taxa · sites · log
    sites) in C instead of a Python loop hashing every column; the
    sorted unique set is re-ranked by first occurrence so the output is
    identical to the loop's.  Columns with ambiguity sets fall back to
    the hashing loop, whose keys include the ambiguity contents.
    """
    if not alignment.ambiguity_sets:
        columns = np.ascontiguousarray(alignment.states.T)
        _, first_idx, inverse, counts = np.unique(
            columns, axis=0, return_index=True, return_inverse=True,
            return_counts=True,
        )
        inverse = np.asarray(inverse).reshape(-1)
        order = np.argsort(first_idx, kind="stable")
        rank = np.empty(order.size, dtype=np.intp)
        rank[order] = np.arange(order.size)
        site_to_pattern = rank[inverse]
        pattern_cols = first_idx[order].tolist()
        weights = counts[order].tolist()
    else:
        seen: Dict[Tuple, int] = {}
        weights: List[int] = []
        site_to_pattern = np.empty(alignment.n_codons, dtype=np.intp)
        pattern_cols: List[int] = []

        for col in range(alignment.n_codons):
            key = _column_key(alignment, col)
            idx = seen.get(key)
            if idx is None:
                idx = len(pattern_cols)
                seen[key] = idx
                pattern_cols.append(col)
                weights.append(0)
            weights[idx] += 1
            site_to_pattern[col] = idx

    states = alignment.states[:, pattern_cols].copy()
    ambiguity = {}
    for new_col, old_col in enumerate(pattern_cols):
        for row in range(alignment.n_taxa):
            if states[row, new_col] == AMBIGUOUS:
                ambiguity[(row, new_col)] = alignment.ambiguity_sets[(row, old_col)]
    compressed = CodonAlignment(
        names=list(alignment.names),
        states=states,
        ambiguity_sets=ambiguity,
        code=alignment.code,
    )
    return PatternAlignment(
        alignment=compressed,
        weights=np.array(weights, dtype=float),
        site_to_pattern=site_to_pattern,
    )
