"""Multiple sequence alignment substrate.

CodeML reads a codon MSA (PHYLIP format in practice, FASTA supported
here too), encodes each column into the 61-state codon space, and — like
all pruning implementations — compresses identical columns into weighted
*site patterns* before the likelihood loop.  The sequence simulator in
:mod:`repro.alignment.simulate` substitutes for the paper's Ensembl
datasets (see DESIGN.md §5).
"""

from repro.alignment.distances import initial_branch_length_matrix, nei_gojobori
from repro.alignment.msa import CodonAlignment, MISSING, AMBIGUOUS
from repro.alignment.parsers import (
    read_alignment,
    read_fasta,
    read_phylip,
    write_fasta,
    write_phylip,
)
from repro.alignment.patterns import PatternAlignment, compress_patterns
from repro.alignment.simulate import simulate_alignment

__all__ = [
    "AMBIGUOUS",
    "CodonAlignment",
    "MISSING",
    "PatternAlignment",
    "compress_patterns",
    "initial_branch_length_matrix",
    "nei_gojobori",
    "read_alignment",
    "read_fasta",
    "read_phylip",
    "simulate_alignment",
    "write_fasta",
    "write_phylip",
]
