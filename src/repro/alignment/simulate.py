"""Codon sequence simulation under site-class mixture models.

Substitute for the paper's Ensembl/Selectome alignments (DESIGN.md §5):
given a tree with a marked foreground branch, a model, and parameter
values, evolve codons from the root (drawn from π) down every branch
using exact transition matrices from the same kernels the engines use.
Simulated datasets have known ground truth (true class per site, true
parameters), which the correctness tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.alignment.msa import MISSING, CodonAlignment
from repro.codon.genetic_code import GeneticCode, UNIVERSAL
from repro.core.eigen import decompose
from repro.core.expm import transition_matrix_syrk
from repro.models.base import CodonSiteModel
from repro.models.scaling import build_class_matrices
from repro.trees.tree import Tree
from repro.utils.rng import RngLike, make_rng

__all__ = ["SimulatedAlignment", "simulate_alignment"]


@dataclass
class SimulatedAlignment:
    """A simulated alignment plus its generating ground truth."""

    alignment: CodonAlignment
    #: Per-site true class index into ``model.site_classes(values)``.
    site_classes: np.ndarray
    #: The generating parameter values.
    values: Dict[str, float]
    #: Equilibrium frequencies used.
    pi: np.ndarray


def _sample_markov_step(
    p_matrix: np.ndarray, parent_states: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised categorical draw of child states given parent states."""
    cdf = np.cumsum(p_matrix, axis=1)
    u = rng.random(parent_states.shape[0])
    # Guard the last column against cumulative round-off (< 1.0 - eps).
    cdf[:, -1] = 1.0
    rows = cdf[parent_states]
    return np.asarray((rows < u[:, None]).sum(axis=1), dtype=np.int32)


def simulate_alignment(
    tree: Tree,
    model: CodonSiteModel,
    values: Dict[str, float],
    n_codons: int,
    pi: Optional[np.ndarray] = None,
    seed: RngLike = None,
    code: GeneticCode = UNIVERSAL,
    missing_fraction: float = 0.0,
) -> SimulatedAlignment:
    """Evolve a codon alignment down ``tree`` under ``model``.

    Parameters
    ----------
    tree:
        Tree with branch lengths; must carry exactly one foreground mark
        if the model distinguishes branch categories (the branch-site
        model); site models ignore marks.
    model, values:
        The generating model and its parameter values.
    n_codons:
        Alignment length in codons.
    pi:
        Equilibrium codon frequencies (uniform if omitted).
    seed:
        RNG seed/generator — fixed seeds make Table II datasets
        reproducible.
    missing_fraction:
        Fraction of cells independently masked to missing (gap), for
        robustness tests; 0 produces a complete alignment.

    Returns
    -------
    SimulatedAlignment
        Alignment (leaf rows ordered like ``tree.leaf_names()``) plus
        ground truth.
    """
    if n_codons <= 0:
        raise ValueError(f"n_codons must be positive, got {n_codons}")
    if not 0.0 <= missing_fraction < 1.0:
        raise ValueError(f"missing_fraction must be in [0, 1), got {missing_fraction}")
    rng = make_rng(seed)
    if pi is None:
        pi = np.full(code.n_states, 1.0 / code.n_states)
    pi = np.asarray(pi, dtype=float)

    classes = model.site_classes(values)
    needs_foreground = any(
        cls.omega_background != cls.omega_foreground for cls in classes
    )
    if needs_foreground:
        tree.require_single_foreground()
    matrices = build_class_matrices(values["kappa"], classes, pi, code)
    decomps = {omega: decompose(matrix) for omega, matrix in matrices.items()}

    proportions = np.array([cls.proportion for cls in classes])
    site_class = rng.choice(len(classes), size=n_codons, p=proportions).astype(np.int32)

    # Root states from the stationary distribution.
    n_nodes = len(tree.nodes)
    states = np.empty((n_nodes, n_codons), dtype=np.int32)
    states[tree.root.index] = rng.choice(code.n_states, size=n_codons, p=pi / pi.sum())

    # Pre-order: parents are simulated before children.
    for node in tree.preorder():
        if node.is_root:
            continue
        parent_states = states[node.parent.index]
        child_states = np.empty(n_codons, dtype=np.int32)
        for class_idx, cls in enumerate(classes):
            mask = site_class == class_idx
            if not mask.any():
                continue
            omega = cls.omega_foreground if node.foreground else cls.omega_background
            p_matrix = transition_matrix_syrk(decomps[omega], node.length)
            child_states[mask] = _sample_markov_step(p_matrix, parent_states[mask], rng)
        states[node.index] = child_states

    leaf_rows = states[: tree.n_leaves].copy()
    if missing_fraction > 0.0:
        mask = rng.random(leaf_rows.shape) < missing_fraction
        leaf_rows[mask] = MISSING

    alignment = CodonAlignment(
        names=tree.leaf_names(), states=leaf_rows, ambiguity_sets={}, code=code
    )
    return SimulatedAlignment(
        alignment=alignment, site_classes=site_class, values=dict(values), pi=pi
    )
