"""Pairwise dN/dS estimation by counting (Nei & Gojobori 1986).

The counting method is the classical, optimisation-free estimator of
synonymous (dS) and non-synonymous (dN) divergence between two coding
sequences.  CodeML computes it as a by-product and uses pairwise
distances for optimizer start values; we provide it for the same role —
:func:`initial_branch_length_matrix` seeds branch lengths from data
instead of constants — and as an independent sanity check on simulated
selection pressure.

Method: for each codon, the numbers of synonymous (s) and
non-synonymous (n = 3 − s) *sites* are counted as the fraction of the
three possible single-nucleotide changes that are synonymous (stop
changes excluded from the denominator).  Observed differences between a
codon pair are classified along minimal mutation paths (all orders
averaged).  Proportions are Jukes–Cantor corrected.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations
from typing import Optional, Tuple

import numpy as np

from repro.alignment.msa import CodonAlignment
from repro.codon.genetic_code import GeneticCode, NUCLEOTIDES, UNIVERSAL

__all__ = ["PairwiseDnDs", "nei_gojobori", "initial_branch_length_matrix"]


@lru_cache(maxsize=None)
def _site_counts(codon: str, code: GeneticCode) -> Tuple[float, float]:
    """(synonymous, non-synonymous) site counts of one sense codon."""
    syn = 0.0
    total = 0.0
    for pos in range(3):
        for nuc in NUCLEOTIDES:
            if nuc == codon[pos]:
                continue
            mutant = codon[:pos] + nuc + codon[pos + 1 :]
            if code.is_stop(mutant):
                continue
            total += 1.0
            if code.synonymous(codon, mutant):
                syn += 1.0
    if total == 0.0:
        return 0.0, 3.0
    return 3.0 * syn / total, 3.0 - 3.0 * syn / total


@lru_cache(maxsize=None)
def _path_differences(codon_a: str, codon_b: str, code: GeneticCode) -> Tuple[float, float]:
    """(syn, nonsyn) observed differences averaged over mutation paths."""
    positions = [k for k in range(3) if codon_a[k] != codon_b[k]]
    if not positions:
        return 0.0, 0.0
    syn_total = 0.0
    nonsyn_total = 0.0
    n_paths = 0
    for order in permutations(positions):
        current = codon_a
        syn = nonsyn = 0.0
        valid = True
        for pos in order:
            mutant = current[:pos] + codon_b[pos] + current[pos + 1 :]
            if code.is_stop(mutant):
                valid = False
                break
            if code.synonymous(current, mutant):
                syn += 1.0
            else:
                nonsyn += 1.0
            current = mutant
        if valid:
            syn_total += syn
            nonsyn_total += nonsyn
            n_paths += 1
    if n_paths == 0:
        # All paths pass through stops; fall back to counting positions
        # as non-synonymous (rare, conservative).
        return 0.0, float(len(positions))
    return syn_total / n_paths, nonsyn_total / n_paths


def _jukes_cantor(p: float) -> float:
    """JC69 multiple-hit correction of a proportion of differences."""
    if p <= 0.0:
        return 0.0
    if p >= 0.75:
        return float("inf")
    return -0.75 * np.log(1.0 - 4.0 * p / 3.0)


@dataclass(frozen=True)
class PairwiseDnDs:
    """NG86 estimates for one sequence pair."""

    syn_sites: float
    nonsyn_sites: float
    syn_differences: float
    nonsyn_differences: float
    ds: float
    dn: float

    @property
    def omega(self) -> float:
        """dN/dS; ``inf`` when dS = 0 and dN > 0, ``nan`` when both 0."""
        if self.ds == 0.0:
            return float("nan") if self.dn == 0.0 else float("inf")
        return self.dn / self.ds

    @property
    def total_distance(self) -> float:
        """Site-weighted overall divergence in substitutions *per codon*.

        ``ds``/``dn`` are per-site rates; the weighted mean is multiplied
        by 3 (sites per codon) so the result is directly comparable to
        the model's branch lengths (unit mean rate per codon).
        """
        total_sites = self.syn_sites + self.nonsyn_sites
        if total_sites == 0:
            return 0.0
        return 3.0 * (self.ds * self.syn_sites + self.dn * self.nonsyn_sites) / total_sites


def nei_gojobori(
    alignment: CodonAlignment,
    row_a: int,
    row_b: int,
    code: Optional[GeneticCode] = None,
    column_weights: Optional[np.ndarray] = None,
) -> PairwiseDnDs:
    """NG86 dN/dS between two alignment rows (gap/ambiguous cells skipped).

    ``column_weights`` lets the computation run directly on a
    pattern-compressed alignment: per-column contributions are additive,
    so weighting by pattern multiplicities is exact.  Columns are first
    canonicalised to distinct codon pairs with aggregated weights and
    accumulated in sorted pair order, so the expanded and the
    weight-compressed form of the same data run the *identical* float
    operations — the results agree bit for bit, not just to rounding
    (integer column multiplicities sum exactly in doubles).
    """
    code = code or alignment.code
    if column_weights is not None:
        column_weights = np.asarray(column_weights, dtype=float)
        if column_weights.shape != (alignment.n_codons,):
            raise ValueError("column_weights length must match the alignment")
    sense = code.sense_codons
    pair_weights: dict = {}
    for col in range(alignment.n_codons):
        sa, sb = int(alignment.states[row_a, col]), int(alignment.states[row_b, col])
        if sa < 0 or sb < 0:
            continue
        w = 1.0 if column_weights is None else float(column_weights[col])
        key = (sa, sb)
        pair_weights[key] = pair_weights.get(key, 0.0) + w
    syn_sites = nonsyn_sites = 0.0
    syn_diff = nonsyn_diff = 0.0
    n_compared = 0.0
    for sa, sb in sorted(pair_weights):
        w = pair_weights[(sa, sb)]
        n_compared += w
        ca, cb = sense[sa], sense[sb]
        s_a, n_a = _site_counts(ca, code)
        s_b, n_b = _site_counts(cb, code)
        syn_sites += w * 0.5 * (s_a + s_b)
        nonsyn_sites += w * 0.5 * (n_a + n_b)
        sd, nd = _path_differences(ca, cb, code)
        syn_diff += w * sd
        nonsyn_diff += w * nd
    if n_compared == 0:
        raise ValueError("no comparable codon columns between the two sequences")
    ps = syn_diff / syn_sites if syn_sites > 0 else 0.0
    pn = nonsyn_diff / nonsyn_sites if nonsyn_sites > 0 else 0.0
    return PairwiseDnDs(
        syn_sites=syn_sites,
        nonsyn_sites=nonsyn_sites,
        syn_differences=syn_diff,
        nonsyn_differences=nonsyn_diff,
        ds=_jukes_cantor(ps),
        dn=_jukes_cantor(pn),
    )


def initial_branch_length_matrix(alignment: CodonAlignment) -> np.ndarray:
    """Symmetric matrix of NG86 total distances between all taxon pairs.

    Used to seed optimizer branch lengths from the data (half the mean
    pairwise distance is a serviceable per-branch start), replacing the
    constant 0.1 default for divergent alignments.
    """
    n = alignment.n_taxa
    dist = np.zeros((n, n))
    for a in range(n):
        for b in range(a + 1, n):
            d = nei_gojobori(alignment, a, b).total_distance
            if not np.isfinite(d):
                d = 3.0  # saturated pair; cap
            dist[a, b] = dist[b, a] = d
    return dist
