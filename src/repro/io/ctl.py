"""CodeML control (``.ctl``) file support.

CodeML is driven by a ``key = value`` parameter file (paper §II: "a
dedicated parameter file is read by CodeML to set model parameters and
corresponding optimization options").  We parse the subset relevant to
the branch-site test, validate the combination (``model = 2`` +
``NSsites = 2`` is branch-site model A; ``fix_omega`` selects H0/H1) and
add SlimCodeML-specific extension keys (``engine``, ``max_iterations``).

Unknown keys are collected — not fatal — so real CodeML control files
can be reused as-is.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Union

__all__ = ["ControlFile", "parse_ctl", "write_ctl"]

PathLike = Union[str, os.PathLike]

_CODON_FREQ_NAMES = {0: "equal", 1: "f1x4", 2: "f3x4", 3: "f61"}


@dataclass
class ControlFile:
    """Parsed control-file settings with CodeML defaults."""

    seqfile: str = ""
    treefile: str = ""
    outfile: str = "mlc"
    #: 2 = branch models with marked branches (required for branch-site).
    model: int = 2
    #: 2 = site classes of model A (required for branch-site).
    nssites: int = 2
    #: 1 fixes ω2 (H0); 0 estimates it (H1).
    fix_omega: int = 0
    #: Initial (or fixed) ω value.
    omega: float = 1.0
    #: Initial κ.
    kappa: float = 2.0
    fix_kappa: int = 0
    #: 0 equal, 1 F1x4, 2 F3x4 (CodeML default for codons), 3 F61.
    codon_freq: int = 2
    #: 1 removes columns with gaps/ambiguity before analysis.
    cleandata: int = 0
    icode: int = 0
    #: Extension: likelihood engine ("codeml", "slim", "slim-v2").
    engine: str = "slim"
    #: Extension: optimizer iteration budget.
    max_iterations: int = 200
    #: Extension: RNG seed for start values (paper fixes this, §IV).
    seed: int = 1
    #: Keys present in the file we do not interpret.
    unknown: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model != 2 or self.nssites != 2:
            raise ValueError(
                "this reproduction implements the branch-site test: "
                f"model = 2 and NSsites = 2 are required (got model={self.model}, "
                f"NSsites={self.nssites})"
            )
        if self.fix_omega not in (0, 1):
            raise ValueError(f"fix_omega must be 0 or 1, got {self.fix_omega}")
        if self.codon_freq not in _CODON_FREQ_NAMES:
            raise ValueError(f"CodonFreq must be 0-3, got {self.codon_freq}")
        if self.icode != 0:
            raise ValueError("only icode = 0 (universal code) is supported")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")

    @property
    def freq_method(self) -> str:
        return _CODON_FREQ_NAMES[self.codon_freq]

    @property
    def hypothesis(self) -> str:
        """H0 when ω2 is fixed (at 1), H1 otherwise."""
        return "H0" if self.fix_omega else "H1"


_KEY_MAP = {
    "seqfile": ("seqfile", str),
    "treefile": ("treefile", str),
    "outfile": ("outfile", str),
    "model": ("model", int),
    "nssites": ("nssites", int),
    "fix_omega": ("fix_omega", int),
    "omega": ("omega", float),
    "kappa": ("kappa", float),
    "fix_kappa": ("fix_kappa", int),
    "codonfreq": ("codon_freq", int),
    "cleandata": ("cleandata", int),
    "icode": ("icode", int),
    "engine": ("engine", str),
    "max_iterations": ("max_iterations", int),
    "seed": ("seed", int),
}


def parse_ctl_text(text: str) -> ControlFile:
    """Parse control-file text (``*`` starts a comment, PAML style)."""
    settings: Dict[str, object] = {}
    unknown: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("*", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected 'key = value', got {raw!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        entry = _KEY_MAP.get(key.lower())
        if entry is None:
            unknown[key] = value
            continue
        field_name, cast = entry
        try:
            settings[field_name] = cast(value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: cannot parse {value!r} as {cast.__name__} for {key}"
            ) from None
    return ControlFile(unknown=unknown, **settings)


def parse_ctl(source: PathLike) -> ControlFile:
    """Parse a control file from disk."""
    with open(source, "r", encoding="utf-8") as handle:
        return parse_ctl_text(handle.read())


def write_ctl(ctl: ControlFile, destination: PathLike) -> None:
    """Serialise settings back to CodeML syntax (extensions included)."""
    lines = [
        f"      seqfile = {ctl.seqfile}",
        f"     treefile = {ctl.treefile}",
        f"      outfile = {ctl.outfile}",
        "",
        f"        model = {ctl.model}   * 2: branches with marked foreground",
        f"      NSsites = {ctl.nssites}   * 2: site classes of model A",
        f"    fix_omega = {ctl.fix_omega}   * 1: H0 (omega2 = 1), 0: H1",
        f"        omega = {ctl.omega:g}",
        f"        kappa = {ctl.kappa:g}",
        f"    fix_kappa = {ctl.fix_kappa}",
        f"    CodonFreq = {ctl.codon_freq}   * 0 equal, 1 F1x4, 2 F3x4, 3 F61",
        f"    cleandata = {ctl.cleandata}",
        f"        icode = {ctl.icode}",
        "",
        f"       engine = {ctl.engine}   * SlimCodeML extension",
        f"max_iterations = {ctl.max_iterations}",
        f"         seed = {ctl.seed}",
    ]
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
