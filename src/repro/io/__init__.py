"""CodeML-compatible configuration and result reporting."""

from repro.io.ctl import ControlFile, parse_ctl, write_ctl
from repro.io.report import (
    format_report,
    format_survey_report,
    write_report,
    write_survey_report,
)
from repro.io.results_io import read_json_result, write_json_result

__all__ = [
    "ControlFile",
    "format_report",
    "format_survey_report",
    "parse_ctl",
    "read_json_result",
    "write_ctl",
    "write_json_result",
    "write_report",
    "write_survey_report",
]
