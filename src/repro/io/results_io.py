"""Machine-readable (JSON) serialisation of analysis results.

Genome-scale pipelines (Selectome-style) archive per-gene results for
downstream aggregation; the ``mlc``-style text report is for humans.
This module round-trips :class:`FitResult`, :class:`BranchSiteTest` and
:class:`LRTResult` through plain JSON-compatible dicts with a schema
version, so archives stay readable across library versions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Union

import numpy as np

from repro.optimize.lrt import LRTResult
from repro.optimize.ml import BranchSiteTest, FitResult

__all__ = [
    "SCHEMA_VERSION",
    "fit_to_dict",
    "fit_from_dict",
    "branch_site_test_to_dict",
    "branch_site_test_from_dict",
    "write_json_result",
    "read_json_result",
]

PathLike = Union[str, os.PathLike]

#: Bump when the serialised layout changes incompatibly.
SCHEMA_VERSION = 1


def fit_to_dict(fit: FitResult) -> Dict:
    """Serialise one fit (arrays become lists, floats stay exact via repr)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "fit",
        "model": fit.model_name,
        "engine": fit.engine_name,
        "lnl": fit.lnl,
        "values": dict(fit.values),
        "branch_lengths": [float(t) for t in fit.branch_lengths],
        "n_iterations": fit.n_iterations,
        "n_evaluations": fit.n_evaluations,
        "runtime_seconds": fit.runtime_seconds,
        "converged": fit.converged,
        "message": fit.message,
    }


def fit_from_dict(payload: Dict) -> FitResult:
    """Inverse of :func:`fit_to_dict` (history is not archived)."""
    _check(payload, "fit")
    return FitResult(
        model_name=payload["model"],
        engine_name=payload["engine"],
        lnl=float(payload["lnl"]),
        values={k: float(v) for k, v in payload["values"].items()},
        branch_lengths=np.asarray(payload["branch_lengths"], dtype=float),
        n_iterations=int(payload["n_iterations"]),
        n_evaluations=int(payload["n_evaluations"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        converged=bool(payload["converged"]),
        message=payload["message"],
    )


def _lrt_to_dict(lrt: LRTResult) -> Dict:
    return {
        "lnl_null": lrt.lnl_null,
        "lnl_alternative": lrt.lnl_alternative,
        "statistic": lrt.statistic,
        "df": lrt.df,
        "pvalue_chi2": lrt.pvalue_chi2,
        "pvalue_mixture": lrt.pvalue_mixture,
    }


def _lrt_from_dict(payload: Dict) -> LRTResult:
    return LRTResult(
        lnl_null=float(payload["lnl_null"]),
        lnl_alternative=float(payload["lnl_alternative"]),
        statistic=float(payload["statistic"]),
        df=int(payload["df"]),
        pvalue_chi2=float(payload["pvalue_chi2"]),
        pvalue_mixture=float(payload["pvalue_mixture"]),
    )


def branch_site_test_to_dict(test: BranchSiteTest) -> Dict:
    """Serialise a full H0+H1 analysis."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "branch_site_test",
        "h0": fit_to_dict(test.h0),
        "h1": fit_to_dict(test.h1),
        "lrt": _lrt_to_dict(test.lrt),
    }


def branch_site_test_from_dict(payload: Dict) -> BranchSiteTest:
    """Inverse of :func:`branch_site_test_to_dict`."""
    _check(payload, "branch_site_test")
    return BranchSiteTest(
        h0=fit_from_dict(payload["h0"]),
        h1=fit_from_dict(payload["h1"]),
        lrt=_lrt_from_dict(payload["lrt"]),
    )


def _check(payload: Dict, kind: str) -> None:
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    if payload.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} payload, got {payload.get('kind')!r}")


def write_json_result(
    destination: PathLike, result: Union[FitResult, BranchSiteTest]
) -> None:
    """Write a fit or full test to a JSON file."""
    payload = (
        branch_site_test_to_dict(result) if isinstance(result, BranchSiteTest) else fit_to_dict(result)
    )
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_json_result(source: PathLike) -> Union[FitResult, BranchSiteTest]:
    """Read a JSON result, dispatching on its ``kind`` field."""
    with open(source, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    if kind == "fit":
        return fit_from_dict(payload)
    if kind == "branch_site_test":
        return branch_site_test_from_dict(payload)
    raise ValueError(f"unknown result kind {kind!r}")
