"""Machine-readable (JSON) serialisation of analysis results.

Genome-scale pipelines (Selectome-style) archive per-gene results for
downstream aggregation; the ``mlc``-style text report is for humans.
This module round-trips :class:`FitResult`, :class:`BranchSiteTest` and
:class:`LRTResult` through plain JSON-compatible dicts with a schema
version, so archives stay readable across library versions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Union

import numpy as np

from repro.optimize.lrt import LRTResult
from repro.optimize.ml import BranchSiteTest, FitResult

__all__ = [
    "SCHEMA_VERSION",
    "fit_to_dict",
    "fit_from_dict",
    "branch_site_test_to_dict",
    "branch_site_test_from_dict",
    "write_json_result",
    "read_json_result",
    "gene_result_to_dict",
    "gene_result_from_dict",
    "ResultJournal",
]

PathLike = Union[str, os.PathLike]

#: Bump when the serialised layout changes incompatibly.
SCHEMA_VERSION = 1

#: Journal format version, recorded in the JSONL header record.  Bump on
#: *additive* growth (new record keys, new record kinds); the reader
#: skips unknown keys and unknown kinds, so older journals — including
#: headerless v1 journals from before this field existed — stay
#: resumable.  Version 2 added the header itself and per-record worker
#: identity; version 3 added per-gene numerical-recovery ``diagnostics``;
#: version 4 added per-gene incremental-evaluation ``clv_stats``;
#: version 5 added ``setup_seconds`` (broadcast-context cold start);
#: version 6 added the ``model`` spec string (``None``/absent = the
#: historical branch-site model A — survey scans record which test ran);
#: version 7 added ``rung_usage`` (per-ladder-rung operator-build
#: counts when recovery ran) and ``mapping`` (stochastic substitution
#: mapping payload from ``--map``) — both ``None``/absent when off;
#: version 8 grew the ``mapping`` payload additively (``mapping_ci``
#: normal-approximation confidence intervals, ``seconds``, ``method``)
#: and added ``h1_mles`` (the H1 maximum-likelihood point, kept only
#: when the survey's one-pass mapper asked for it).
JOURNAL_VERSION = 8


def fit_to_dict(fit: FitResult) -> Dict:
    """Serialise one fit (arrays become lists, floats stay exact via repr)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "fit",
        "model": fit.model_name,
        "engine": fit.engine_name,
        "lnl": fit.lnl,
        "values": dict(fit.values),
        "branch_lengths": [float(t) for t in fit.branch_lengths],
        "n_iterations": fit.n_iterations,
        "n_evaluations": fit.n_evaluations,
        "runtime_seconds": fit.runtime_seconds,
        "converged": fit.converged,
        "message": fit.message,
        "diagnostics": (
            fit.diagnostics.to_dict()
            if fit.diagnostics.recovered or fit.diagnostics.boundary_flags
            else None
        ),
    }


def fit_from_dict(payload: Dict) -> FitResult:
    """Inverse of :func:`fit_to_dict` (history is not archived)."""
    from repro.core.recovery import FitDiagnostics

    _check(payload, "fit")
    return FitResult(
        model_name=payload["model"],
        engine_name=payload["engine"],
        lnl=float(payload["lnl"]),
        values={k: float(v) for k, v in payload["values"].items()},
        branch_lengths=np.asarray(payload["branch_lengths"], dtype=float),
        n_iterations=int(payload["n_iterations"]),
        n_evaluations=int(payload["n_evaluations"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        converged=bool(payload["converged"]),
        message=payload["message"],
        diagnostics=FitDiagnostics.from_dict(payload.get("diagnostics")),
    )


def _lrt_to_dict(lrt: LRTResult) -> Dict:
    return {
        "lnl_null": lrt.lnl_null,
        "lnl_alternative": lrt.lnl_alternative,
        "statistic": lrt.statistic,
        "df": lrt.df,
        "pvalue_chi2": lrt.pvalue_chi2,
        "pvalue_mixture": lrt.pvalue_mixture,
    }


def _lrt_from_dict(payload: Dict) -> LRTResult:
    return LRTResult(
        lnl_null=float(payload["lnl_null"]),
        lnl_alternative=float(payload["lnl_alternative"]),
        statistic=float(payload["statistic"]),
        df=int(payload["df"]),
        pvalue_chi2=float(payload["pvalue_chi2"]),
        pvalue_mixture=float(payload["pvalue_mixture"]),
    )


def branch_site_test_to_dict(test: BranchSiteTest) -> Dict:
    """Serialise a full H0+H1 analysis."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "branch_site_test",
        "h0": fit_to_dict(test.h0),
        "h1": fit_to_dict(test.h1),
        "lrt": _lrt_to_dict(test.lrt),
    }


def branch_site_test_from_dict(payload: Dict) -> BranchSiteTest:
    """Inverse of :func:`branch_site_test_to_dict`."""
    _check(payload, "branch_site_test")
    return BranchSiteTest(
        h0=fit_from_dict(payload["h0"]),
        h1=fit_from_dict(payload["h1"]),
        lrt=_lrt_from_dict(payload["lrt"]),
    )


def _check(payload: Dict, kind: str) -> None:
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    if payload.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} payload, got {payload.get('kind')!r}")


def write_json_result(
    destination: PathLike, result: Union[FitResult, BranchSiteTest]
) -> None:
    """Write a fit or full test to a JSON file."""
    payload = (
        branch_site_test_to_dict(result) if isinstance(result, BranchSiteTest) else fit_to_dict(result)
    )
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_json_result(source: PathLike) -> Union[FitResult, BranchSiteTest]:
    """Read a JSON result, dispatching on its ``kind`` field."""
    with open(source, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    if kind == "fit":
        return fit_from_dict(payload)
    if kind == "branch_site_test":
        return branch_site_test_from_dict(payload)
    raise ValueError(f"unknown result kind {kind!r}")


# ----------------------------------------------------------------------
# Gene-result journal (checkpoint/resume for batch scans)
# ----------------------------------------------------------------------
def gene_result_to_dict(result) -> Dict:
    """Serialise a :class:`~repro.parallel.batch.GeneResult` (one JSONL record).

    Non-finite floats (a failed task's NaN likelihoods) become ``None``
    so the payload is strict JSON — ``json.dumps`` would otherwise emit
    the non-standard ``NaN`` token.
    """
    failure = None
    if result.failure is not None:
        failure = {
            "task_id": result.failure.task_id,
            "kind": result.failure.kind,
            "error_type": result.failure.error_type,
            "message": result.failure.message,
            "attempts": result.failure.attempts,
        }
    return _nan_to_none({
        "schema": SCHEMA_VERSION,
        "kind": "gene_result",
        "gene_id": result.gene_id,
        "lnl0": result.lnl0,
        "lnl1": result.lnl1,
        "statistic": result.statistic,
        "pvalue": result.pvalue,
        "iterations": result.iterations,
        "n_evaluations": result.n_evaluations,
        "runtime_seconds": result.runtime_seconds,
        "attempts": result.attempts,
        "error": result.error,
        "failure": failure,
        "worker": getattr(result, "worker", None),
        "diagnostics": getattr(result, "diagnostics", None),
        "clv_stats": getattr(result, "clv_stats", None),
        "setup_seconds": getattr(result, "setup_seconds", 0.0),
        "model": getattr(result, "model", None),
        "rung_usage": getattr(result, "rung_usage", None),
        "mapping": getattr(result, "mapping", None),
        "h1_mles": getattr(result, "h1_mles", None),
    })


def gene_result_from_dict(payload: Dict):
    """Inverse of :func:`gene_result_to_dict` (``None`` numerics → NaN)."""
    # Imported lazily: repro.parallel.batch imports this module at top level.
    from repro.parallel.batch import GeneResult
    from repro.parallel.faults import TaskFailure

    _check(payload, "gene_result")
    payload = _none_to_nan(payload)
    failure = None
    if payload.get("failure") is not None:
        raw = payload["failure"]
        failure = TaskFailure(
            task_id=raw["task_id"],
            kind=raw["kind"],
            error_type=raw["error_type"],
            message=raw["message"],
            attempts=int(raw["attempts"]),
        )
    # Keys this reader does not know (written by a newer library) are
    # simply not looked at, so journal records can grow new fields
    # without breaking resume on older code.
    return GeneResult(
        gene_id=payload["gene_id"],
        lnl0=float(payload["lnl0"]),
        lnl1=float(payload["lnl1"]),
        statistic=float(payload["statistic"]),
        pvalue=float(payload["pvalue"]),
        iterations=int(payload["iterations"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        error=payload.get("error"),
        n_evaluations=int(payload.get("n_evaluations", 0)),
        attempts=int(payload.get("attempts", 1)),
        failure=failure,
        worker=payload.get("worker"),
        diagnostics=payload.get("diagnostics"),
        clv_stats=payload.get("clv_stats"),
        setup_seconds=float(payload.get("setup_seconds") or 0.0),
        model=payload.get("model"),
        rung_usage=payload.get("rung_usage"),
        mapping=payload.get("mapping"),
        h1_mles=payload.get("h1_mles"),
    )


class ResultJournal:
    """Append-only JSONL journal of per-gene scan results.

    One JSON object per line; completed results are appended (and the
    stream flushed + fsynced) as soon as each task finishes, so a
    scan killed mid-batch leaves a journal from which a resumed run
    recomputes only the unfinished genes.  A truncated final line — the
    signature of a mid-write kill — is tolerated on read.

    A fresh journal starts with a ``journal_header`` record carrying a
    ``version`` field (:data:`JOURNAL_VERSION`).  The reader skips the
    header, skips record kinds it does not recognise, and record
    parsing ignores unknown keys — so journals survive schema growth
    in both directions: headerless v1 journals resume on this code,
    and a v2 journal with fields a v1 reader never heard of resumes
    there too.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        self._handle = None

    # -- writing --------------------------------------------------------
    def append(self, result) -> None:
        """Durably append one result (non-finite floats survive as JSON nulls)."""
        if self._handle is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                header = {
                    "kind": "journal_header",
                    "schema": SCHEMA_VERSION,
                    "version": JOURNAL_VERSION,
                    "writer": "slimcodeml",
                }
                self._handle.write(json.dumps(header, sort_keys=True) + "\n")
        payload = gene_result_to_dict(result)
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading --------------------------------------------------------
    def load(self) -> list:
        """All parseable results, journal order (later duplicates win on id).

        Header records and record kinds this reader does not know are
        skipped (forward compatibility), but a header from a *newer
        major* journal version is refused outright — the one fence
        against silently misreading a future incompatible layout.
        """
        results = []
        if not os.path.exists(self.path):
            return results
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    continue  # truncated final record from a killed run
                raise ValueError(
                    f"{self.path}:{lineno + 1}: corrupt journal record"
                ) from None
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if kind == "journal_header":
                version = payload.get("version", 1)
                if isinstance(version, int) and version > JOURNAL_VERSION:
                    raise ValueError(
                        f"{self.path}: journal version {version} is newer than "
                        f"this library supports ({JOURNAL_VERSION})"
                    )
                continue
            if kind != "gene_result":
                continue  # unknown record kind from a newer writer
            results.append(gene_result_from_dict(payload))
        return results

    def completed(self) -> Dict[str, object]:
        """``gene_id`` → latest *successful* result (resume skips these)."""
        done: Dict[str, object] = {}
        for result in self.load():
            if not result.failed:
                done[result.gene_id] = result
            else:
                # A later failure supersedes an earlier success (e.g. a
                # forced re-run) so resume recomputes the gene.
                done.pop(result.gene_id, None)
        return done


def _nan_to_none(value):
    """Recursively map non-finite floats to ``None`` for strict-JSON output."""
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _nan_to_none(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_nan_to_none(v) for v in value]
    return value


def _none_to_nan(payload: Dict) -> Dict:
    """Restore journalled ``None`` numerics to NaN for the float fields."""
    out = dict(payload)
    for key in ("lnl0", "lnl1", "statistic", "pvalue"):
        if out.get(key) is None:
            out[key] = float("nan")
    return out
