"""Results report writer (CodeML ``mlc``-style).

Formats a complete branch-site analysis — both hypotheses, the LRT, the
site-class table of paper Table I with estimated values, the fitted tree
and (when provided) the empirical-Bayes positively selected sites — as a
plain-text report a PAML user would recognise.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.optimize.beb import SiteProbabilities
from repro.optimize.ml import BranchSiteTest, FitResult
from repro.trees.newick import write_newick
from repro.trees.tree import Tree

__all__ = ["format_report", "write_report", "format_fit_block"]

PathLike = Union[str, os.PathLike]
_RULE = "=" * 72


def _class_table(fit: FitResult) -> str:
    """Render Table I with the fitted proportions and omegas."""
    values = fit.values
    omega0 = values["omega0"]
    omega2 = values.get("omega2", 1.0)
    p0, p1 = values["p0"], values["p1"]
    total = p0 + p1
    rows = [
        ("0", p0, omega0, omega0),
        ("1", p1, 1.0, 1.0),
        ("2a", (1 - total) * p0 / total if total > 0 else 0.0, omega0, omega2),
        ("2b", (1 - total) * p1 / total if total > 0 else 0.0, 1.0, omega2),
    ]
    lines = ["site class   proportion   background w   foreground w"]
    for label, prop, bg, fg in rows:
        lines.append(f"{label:<12s} {prop:>10.5f}   {bg:>12.5f}   {fg:>12.5f}")
    return "\n".join(lines)


def format_fit_block(fit: FitResult, tree: Optional[Tree] = None) -> str:
    """One hypothesis' results block."""
    lines = [
        f"Model: {fit.model_name}   engine: {fit.engine_name}",
        f"lnL = {fit.lnl:.6f}",
        f"optimizer: {fit.n_iterations} iterations, {fit.n_evaluations} evaluations, "
        f"{fit.runtime_seconds:.2f} s"
        + ("" if fit.converged else "  [NOT CONVERGED: " + fit.message + "]"),
        "",
        "Parameter estimates:",
    ]
    for key, value in fit.values.items():
        lines.append(f"  {key:<8s} = {value:.6f}")
    lines.append(f"  tree length = {float(np.sum(fit.branch_lengths)):.6f}")
    lines.append("")
    lines.append(_class_table(fit))
    if tree is not None:
        fitted = tree.copy()
        fitted.set_branch_lengths(fit.branch_lengths)
        lines.append("")
        lines.append("Fitted tree (foreground marked #1):")
        lines.append(write_newick(fitted))
    return "\n".join(lines)


def format_report(
    test: BranchSiteTest,
    tree: Optional[Tree] = None,
    sites: Optional[SiteProbabilities] = None,
    dataset_name: str = "",
    threshold: float = 0.95,
) -> str:
    """Full analysis report: H0 block, H1 block, LRT, selected sites."""
    header = "SlimCodeML reproduction — branch-site test for positive selection"
    lines = [_RULE, header]
    if dataset_name:
        lines.append(f"dataset: {dataset_name}")
    lines += [_RULE, "", "--- Null hypothesis (H0: omega2 = 1) " + "-" * 24, ""]
    lines.append(format_fit_block(test.h0, tree))
    lines += ["", "--- Alternative hypothesis (H1) " + "-" * 29, ""]
    lines.append(format_fit_block(test.h1, tree))
    lines += [
        "",
        "--- Likelihood ratio test " + "-" * 35,
        "",
        f"2*(lnL1 - lnL0) = {test.lrt.statistic:.6f}  (df = {test.lrt.df})",
        f"p-value (chi2_1, conservative)   = {test.lrt.pvalue_chi2:.6g}",
        f"p-value (50:50 boundary mixture) = {test.lrt.pvalue_mixture:.6g}",
        (
            "Positive selection on the foreground branch: "
            + ("SUPPORTED" if test.lrt.significant() else "not supported")
            + " at alpha = 0.05 (conservative chi2)"
        ),
    ]
    if sites is not None:
        lines += ["", f"--- {sites.method} positively selected sites " + "-" * 24, ""]
        selected = sites.selected_sites(threshold)
        if selected.size == 0:
            lines.append(f"no sites with posterior > {threshold}")
        else:
            lines.append(f"codon sites with P(class 2a/2b) > {threshold}:")
            for site in selected:
                prob = sites.probabilities[site - 1]
                stars = "**" if prob > 0.99 else "*"
                lines.append(f"  {site:>6d}   {prob:.4f} {stars}")
    lines += ["", _RULE]
    return "\n".join(lines)


def write_report(
    destination: PathLike,
    test: BranchSiteTest,
    tree: Optional[Tree] = None,
    sites: Optional[SiteProbabilities] = None,
    dataset_name: str = "",
) -> None:
    """Write :func:`format_report` output to ``destination``."""
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(format_report(test, tree=tree, sites=sites, dataset_name=dataset_name) + "\n")
