"""Results report writer (CodeML ``mlc``-style).

Formats a complete branch-site analysis — both hypotheses, the LRT, the
site-class table rendered from the model's validated class graph, the
fitted tree and (when provided) the empirical-Bayes positively selected
sites — as a plain-text report a PAML user would recognise.  Also the
all-branches survey table (``slimcodeml scan --survey``): per-branch
LRT statistics with Holm-corrected p-values.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.models.base import CodonSiteModel
from repro.optimize.beb import SiteProbabilities
from repro.optimize.lrt import holm_correction
from repro.optimize.ml import BranchSiteTest, FitResult
from repro.trees.newick import write_newick
from repro.trees.tree import Tree

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.parallel.batch import BranchScanResult

__all__ = [
    "format_report",
    "write_report",
    "format_fit_block",
    "format_mapping_block",
    "format_survey_report",
    "write_survey_report",
]

PathLike = Union[str, os.PathLike]
_RULE = "=" * 72


def _model_for_fit(fit: FitResult) -> CodonSiteModel:
    """Reconstruct the fitted model from a result's parameter names.

    ``FitResult`` carries values but not the model object; the
    parameter-name signature identifies it.  Model A and BS-REL cover
    every branch-site fit this report renders — callers with an exotic
    model pass it to :func:`format_fit_block` explicitly.
    """
    from repro.models.branch_site import BranchSiteModelA
    from repro.models.bsrel import BSRELModel

    keys = set(fit.values)
    if {"omega0", "p0", "p1"} <= keys:
        return BranchSiteModelA(fix_omega2="omega2" not in keys)
    n_weights = sum(1 for k in keys if k.startswith("p") and k[1:].isdigit())
    if n_weights >= 2:
        return BSRELModel(n_weights, fix_omega_fg="omega_fg" not in keys)
    raise ValueError(f"cannot identify a site-class model from parameters {sorted(keys)}")


def _class_table(fit: FitResult, model: Optional[CodonSiteModel] = None) -> str:
    """Render the site-class table from the model's class graph.

    Labels, weights and ω's come from the graph nodes — never from
    hard-coded class names — so the table stays correct for any N-class
    model and any class ordering.  Positive-selection classes (the ones
    BEB reports on) are flagged with ``+``.
    """
    if model is None:
        model = _model_for_fit(fit)
    graph = model.site_class_graph(fit.values)
    lines = ["site class   proportion   background w   foreground w"]
    for node in graph.nodes:
        label = node.label + ("+" if node.positive else "")
        lines.append(
            f"{label:<12s} {node.proportion:>10.5f}   "
            f"{node.omega_background:>12.5f}   {node.omega_foreground:>12.5f}"
        )
    return "\n".join(lines)


def format_fit_block(
    fit: FitResult, tree: Optional[Tree] = None, model: Optional[CodonSiteModel] = None
) -> str:
    """One hypothesis' results block."""
    lines = [
        f"Model: {fit.model_name}   engine: {fit.engine_name}",
        f"lnL = {fit.lnl:.6f}",
        f"optimizer: {fit.n_iterations} iterations, {fit.n_evaluations} evaluations, "
        f"{fit.runtime_seconds:.2f} s"
        + ("" if fit.converged else "  [NOT CONVERGED: " + fit.message + "]"),
        "",
        "Parameter estimates:",
    ]
    for key, value in fit.values.items():
        lines.append(f"  {key:<8s} = {value:.6f}")
    lines.append(f"  tree length = {float(np.sum(fit.branch_lengths)):.6f}")
    lines.append("")
    lines.append(_class_table(fit, model))
    if tree is not None:
        fitted = tree.copy()
        fitted.set_branch_lengths(fit.branch_lengths)
        lines.append("")
        lines.append("Fitted tree (foreground marked #1):")
        lines.append(write_newick(fitted))
    return "\n".join(lines)


def _positive_label_phrase(fit: FitResult, model: Optional[CodonSiteModel]) -> str:
    """Human-readable name for the positive-selection classes, e.g. ``2a/2b``."""
    try:
        if model is None:
            model = _model_for_fit(fit)
        labels = model.site_class_graph(fit.values).positive_labels
    except (ValueError, KeyError):
        labels = ()
    return "/".join(labels) if labels else "positive"


def format_mapping_block(mapping: dict, max_sites: int = 10, indent: str = "") -> str:
    """Render one task's substitution-mapping payload as an event table.

    ``mapping`` is the journal payload from
    :meth:`repro.likelihood.mapping.SubstitutionMapping.to_payload` (or
    its ``{"error": ...}`` degradation).  One row per branch — expected
    synonymous/non-synonymous events and their ratio (the event-count
    analogue of dN/dS) — followed by the ``max_sites`` foreground sites
    with the largest expected non-synonymous counts.
    """
    if "error" in mapping:
        return f"{indent}mapping failed: {mapping['error']}"
    ci = mapping.get("mapping_ci") or {}
    ci_rows = {row["branch"]: row for row in ci.get("branches", [])}
    header = (
        f"{indent}{'branch':<20s} {'fg':>2s} {'length':>8s} "
        f"{'E[syn]':>8s} {'E[nonsyn]':>9s} {'N/S':>8s}"
    )
    if ci_rows:
        header += f" {'±syn':>7s} {'±nonsyn':>8s}"
    lines = [header]
    for row in mapping.get("branches", []):
        ratio = row.get("ratio")
        ratio_text = f"{ratio:>8.3f}" if ratio is not None else f"{'-':>8s}"
        text = (
            f"{indent}{row['branch']:<20s} {'#1' if row.get('foreground') else '':>2s} "
            f"{row.get('length', 0.0):>8.4f} {row.get('syn', 0.0):>8.3f} "
            f"{row.get('nonsyn', 0.0):>9.3f} {ratio_text}"
        )
        if ci_rows:
            half = ci_rows.get(row["branch"], {})
            text += (
                f" {half.get('syn', 0.0):>7.3f} {half.get('nonsyn', 0.0):>8.3f}"
            )
        lines.append(text)
    sites = mapping.get("foreground_sites") or {}
    nonsyn = np.asarray(sites.get("nonsyn", []), dtype=float)
    syn = np.asarray(sites.get("syn", []), dtype=float)
    ci_sites = ci.get("foreground_sites") or {}
    nonsyn_half = np.asarray(ci_sites.get("nonsyn", []), dtype=float)
    hot = np.nonzero(nonsyn > 0)[0]
    if hot.size:
        top = hot[np.argsort(nonsyn[hot], kind="stable")[::-1][:max_sites]]
        lines.append(
            f"{indent}foreground sites with sampled non-synonymous events "
            f"(top {min(max_sites, hot.size)} of {hot.size}):"
        )
        for site in top:
            text = (
                f"{indent}  site {site + 1:>5d}   E[nonsyn]={nonsyn[site]:.3f}"
            )
            if site < nonsyn_half.size:
                text += f" ±{nonsyn_half[site]:.3f}"
            text += f"   E[syn]={syn[site] if site < syn.size else 0.0:.3f}"
            lines.append(text)
    samples = mapping.get("n_samples")
    if samples:
        trailer = f"{indent}({samples} posterior histories per site"
        if ci_rows:
            trailer += f"; ± = {ci.get('level', 0.95):.0%} normal CI half-width"
        if mapping.get("seconds"):
            trailer += (
                f"; {mapping.get('method', 'batched')} sampler, "
                f"{float(mapping['seconds']):.3f} s"
            )
        lines.append(trailer + ")")
    return "\n".join(lines)


def format_report(
    test: BranchSiteTest,
    tree: Optional[Tree] = None,
    sites: Optional[SiteProbabilities] = None,
    dataset_name: str = "",
    threshold: float = 0.95,
    models: Optional[tuple[CodonSiteModel, CodonSiteModel]] = None,
    mapping: Optional[dict] = None,
) -> str:
    """Full analysis report: H0 block, H1 block, LRT, selected sites,
    and (when sampled) the stochastic substitution-mapping event table."""
    h0_model, h1_model = models if models is not None else (None, None)
    header = "SlimCodeML reproduction — branch-site test for positive selection"
    lines = [_RULE, header]
    if dataset_name:
        lines.append(f"dataset: {dataset_name}")
    lines += [_RULE, "", "--- Null hypothesis (H0: foreground w fixed) " + "-" * 16, ""]
    lines.append(format_fit_block(test.h0, tree, h0_model))
    lines += ["", "--- Alternative hypothesis (H1) " + "-" * 29, ""]
    lines.append(format_fit_block(test.h1, tree, h1_model))
    lines += [
        "",
        "--- Likelihood ratio test " + "-" * 35,
        "",
        f"2*(lnL1 - lnL0) = {test.lrt.statistic:.6f}  (df = {test.lrt.df})",
        f"p-value (chi2_1, conservative)   = {test.lrt.pvalue_chi2:.6g}",
        f"p-value (50:50 boundary mixture) = {test.lrt.pvalue_mixture:.6g}",
        (
            "Positive selection on the foreground branch: "
            + ("SUPPORTED" if test.lrt.significant() else "not supported")
            + " at alpha = 0.05 (conservative chi2)"
        ),
    ]
    if sites is not None:
        positive = _positive_label_phrase(test.h1, h1_model)
        lines += ["", f"--- {sites.method} positively selected sites " + "-" * 24, ""]
        selected = sites.selected_sites(threshold)
        if selected.size == 0:
            lines.append(f"no sites with posterior > {threshold}")
        else:
            lines.append(f"codon sites with P(class {positive}) > {threshold}:")
            for site in selected:
                prob = sites.probabilities[site - 1]
                stars = "**" if prob > 0.99 else "*"
                lines.append(f"  {site:>6d}   {prob:.4f} {stars}")
    if mapping is not None:
        lines += ["", "--- Substitution mapping (uniformization) " + "-" * 19, ""]
        lines.append(format_mapping_block(mapping))
    lines += ["", _RULE]
    return "\n".join(lines)


def write_report(
    destination: PathLike,
    test: BranchSiteTest,
    tree: Optional[Tree] = None,
    sites: Optional[SiteProbabilities] = None,
    dataset_name: str = "",
    models: Optional[tuple[CodonSiteModel, CodonSiteModel]] = None,
) -> None:
    """Write :func:`format_report` output to ``destination``."""
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(
            format_report(test, tree=tree, sites=sites, dataset_name=dataset_name, models=models)
            + "\n"
        )


def format_survey_report(
    scan: "BranchScanResult",
    dataset_name: str = "",
    alpha: float = 0.05,
    model_spec: str = "",
) -> str:
    """All-branches survey table with Holm-corrected p-values.

    One row per tested branch: the LRT statistic, the raw conservative
    χ² p-value, the Holm-Bonferroni adjusted p-value over the whole
    survey, and the verdict at family-wise level ``alpha``.  Branches
    are sorted by raw p-value so the interesting ones lead.
    """
    branches = sorted(scan.by_branch)
    header = "SlimCodeML reproduction — all-branches positive-selection survey"
    lines = [_RULE, header]
    if dataset_name:
        lines.append(f"dataset: {dataset_name}")
    if model_spec:
        lines.append(f"model: {model_spec}")
    lines += [_RULE, ""]
    if not branches:
        lines += ["no branches were tested", "", _RULE]
        return "\n".join(lines)
    raw = np.array([scan.by_branch[b].pvalue_chi2 for b in branches])
    adjusted = holm_correction(raw)
    order = np.argsort(raw, kind="stable")
    lines.append(
        f"{'branch':<24s} {'2*dlnL':>10s} {'p (chi2)':>12s} {'p (Holm)':>12s}   verdict"
    )
    n_selected = 0
    for idx in order:
        branch = branches[idx]
        lrt = scan.by_branch[branch]
        selected = adjusted[idx] < alpha
        n_selected += selected
        verdict = "POSITIVE SELECTION" if selected else "-"
        lines.append(
            f"{branch:<24s} {lrt.statistic:>10.4f} {raw[idx]:>12.4g} "
            f"{adjusted[idx]:>12.4g}   {verdict}"
        )
    lines += [
        "",
        f"{n_selected} of {len(branches)} branches under positive selection "
        f"(Holm-corrected, family-wise alpha = {alpha})",
    ]
    if scan.failures:
        lines.append("")
        lines.append(f"failed branches ({len(scan.failures)}):")
        for branch, failure in sorted(scan.failures.items()):
            lines.append(f"  {branch}: {failure.describe()}")
    lines += ["", _RULE]
    return "\n".join(lines)


def write_survey_report(
    destination: PathLike,
    scan: "BranchScanResult",
    dataset_name: str = "",
    alpha: float = 0.05,
    model_spec: str = "",
) -> None:
    """Write :func:`format_survey_report` output to ``destination``."""
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(
            format_survey_report(scan, dataset_name=dataset_name, alpha=alpha, model_spec=model_spec)
            + "\n"
        )
