"""Tree structure, indexing, traversal, and foreground bookkeeping."""

import pytest

from repro.trees.newick import parse_newick
from repro.trees.tree import Node, Tree


@pytest.fixture
def tree():
    return parse_newick("((A:0.2,B:0.1):0.08,(C:0.15,D:0.12):0.05,E:0.3);")


class TestIndexing:
    def test_leaves_get_low_indices(self, tree):
        assert [leaf.index for leaf in tree.leaves] == list(range(5))

    def test_children_indexed_before_parents(self, tree):
        for node in tree.nodes:
            for child in node.children:
                assert child.index < node.index

    def test_root_is_last(self, tree):
        assert tree.root.index == len(tree.nodes) - 1

    def test_branch_count(self, tree):
        assert tree.n_branches == 2 * tree.n_leaves - 3  # unrooted binary

    def test_find(self, tree):
        assert tree.find("C").is_leaf
        with pytest.raises(KeyError):
            tree.find("Z")

    def test_unnamed_leaf_rejected(self):
        root = Node()
        root.add_child(Node(name="A"))
        root.add_child(Node())
        with pytest.raises(ValueError, match="named"):
            Tree(root)

    def test_duplicate_names_rejected(self):
        root = Node()
        root.add_child(Node(name="A"))
        root.add_child(Node(name="A"))
        with pytest.raises(ValueError, match="duplicate"):
            Tree(root)

    def test_root_with_parent_rejected(self):
        parent = Node(name="P")
        child = parent.add_child(Node(name="C"))
        with pytest.raises(ValueError):
            Tree(child)


class TestTraversal:
    def test_postorder_visits_all(self, tree):
        visited = list(tree.postorder())
        assert len(visited) == len(tree.nodes)
        assert visited[-1] is tree.root

    def test_preorder_starts_at_root(self, tree):
        visited = list(tree.preorder())
        assert visited[0] is tree.root
        assert len(visited) == len(tree.nodes)

    def test_postorder_children_first(self, tree):
        seen = set()
        for node in tree.postorder():
            for child in node.children:
                assert child.index in seen
            seen.add(node.index)


class TestBranchTable:
    def test_rows_exclude_root(self, tree):
        rows = tree.branch_table()
        assert len(rows) == tree.n_branches
        assert all(child != tree.root.index for child, *_ in rows)

    def test_lengths_roundtrip(self, tree):
        lengths = tree.branch_lengths()
        doubled = [2 * t for t in lengths]
        tree.set_branch_lengths(doubled)
        assert tree.branch_lengths() == pytest.approx(doubled)

    def test_set_lengths_validates(self, tree):
        with pytest.raises(ValueError, match="expected"):
            tree.set_branch_lengths([0.1])
        with pytest.raises(ValueError, match="negative"):
            tree.set_branch_lengths([-1.0] * tree.n_branches)

    def test_total_length(self, tree):
        assert tree.total_tree_length() == pytest.approx(0.2 + 0.1 + 0.08 + 0.15 + 0.12 + 0.05 + 0.3)

    def test_validate_branch_lengths(self, tree):
        tree.leaves[0].length = float("nan")
        with pytest.raises(ValueError, match="invalid"):
            tree.validate_branch_lengths()


class TestForeground:
    def test_mark_by_name(self, tree):
        tree.mark_foreground("C")
        assert tree.require_single_foreground().name == "C"

    def test_mark_clears_previous(self, tree):
        tree.mark_foreground("C")
        tree.mark_foreground("E")
        assert [n.name for n in tree.foreground_nodes()] == ["E"]

    def test_mark_without_clear_accumulates(self, tree):
        tree.mark_foreground("C")
        tree.mark_foreground("E", clear=False)
        assert len(tree.foreground_nodes()) == 2
        with pytest.raises(ValueError, match="exactly one"):
            tree.require_single_foreground()

    def test_cannot_mark_root(self, tree):
        with pytest.raises(ValueError, match="root"):
            tree.mark_foreground(tree.root)

    def test_no_mark_is_an_error_for_bsm(self, tree):
        with pytest.raises(ValueError, match="exactly one"):
            tree.require_single_foreground()


class TestCopyAndUnroot:
    def test_copy_is_deep(self, tree):
        tree.mark_foreground("C")
        dup = tree.copy()
        dup.find("C").foreground = False
        dup.find("A").length = 99.0
        assert tree.find("C").foreground
        assert tree.find("A").length == pytest.approx(0.2)

    def test_copy_preserves_structure(self, tree):
        dup = tree.copy()
        assert dup.leaf_names() == tree.leaf_names()
        assert dup.branch_lengths() == pytest.approx(tree.branch_lengths())

    def test_unroot_merges_root_branches(self):
        tree = parse_newick("((A:0.1,B:0.2):0.05,(C:0.3,D:0.1):0.15);")
        total_before = tree.total_tree_length()
        tree.unroot()
        assert tree.n_branches == 5
        assert len(tree.root.children) == 3
        assert tree.total_tree_length() == pytest.approx(total_before)

    def test_unroot_preserves_foreground(self):
        tree = parse_newick("((A:0.1,B:0.2):0.05 #1,(C:0.3,D:0.1):0.15);")
        tree.unroot()
        assert len(tree.foreground_nodes()) == 1

    def test_unroot_noop_on_trifurcation(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        before = tree.n_branches
        tree.unroot()
        assert tree.n_branches == before

    def test_unroot_two_leaf_tree_rejected(self):
        tree = parse_newick("(A:0.1,B:0.2);")
        with pytest.raises(ValueError, match="two-leaf"):
            tree.unroot()

    def test_is_binary(self, tree):
        assert tree.is_binary()
        tree.root.children[0].add_child(Node(name="X"))
        tree._reindex()
        assert not tree.is_binary()
