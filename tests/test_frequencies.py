"""Codon frequency estimators (CodeML CodonFreq options)."""

import numpy as np
import pytest

from repro.codon.frequencies import (
    MIN_FREQUENCY,
    codon_frequencies_equal,
    codon_frequencies_f1x4,
    codon_frequencies_f3x4,
    codon_frequencies_f61,
    estimate_codon_frequencies,
    frequencies_from_counts,
)
from repro.codon.genetic_code import UNIVERSAL


def _is_probability_vector(pi):
    return pi.shape == (61,) and np.all(pi > 0) and np.isclose(pi.sum(), 1.0)


class TestEqual:
    def test_uniform(self):
        pi = codon_frequencies_equal()
        assert _is_probability_vector(pi)
        assert np.allclose(pi, 1.0 / 61)


class TestF61:
    def test_single_codon_dominates(self):
        pi = codon_frequencies_f61(["ATGATGATG"])
        atg = UNIVERSAL.codon_index["ATG"]
        assert pi[atg] == pytest.approx(1.0, abs=1e-7)
        assert _is_probability_vector(pi)

    def test_counts_proportional(self):
        pi = codon_frequencies_f61(["ATGATGTTT"])
        atg, ttt = UNIVERSAL.codon_index["ATG"], UNIVERSAL.codon_index["TTT"]
        assert pi[atg] / pi[ttt] == pytest.approx(2.0, rel=1e-6)

    def test_gaps_and_ambiguity_skipped(self):
        pi_clean = codon_frequencies_f61(["ATGTTT"])
        pi_gappy = codon_frequencies_f61(["ATG---TTTNNN"])
        assert np.allclose(pi_clean, pi_gappy)

    def test_stops_excluded(self):
        pi = codon_frequencies_f61(["TAAATG"])  # TAA is a stop
        atg = UNIVERSAL.codon_index["ATG"]
        assert pi[atg] == pytest.approx(1.0, abs=1e-7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            codon_frequencies_f61(["---"])


class TestF1x4F3x4:
    def test_f1x4_uniform_input(self):
        # Equal nucleotide usage -> near-uniform codon frequencies.
        pi = codon_frequencies_f1x4(["TCAG" * 3])
        assert _is_probability_vector(pi)
        assert np.allclose(pi, pi[0], rtol=1e-9)

    def test_f3x4_position_specific(self):
        # Sequence with A only at position 0, T at 1, G at 2: only ATG survives.
        pi = codon_frequencies_f3x4(["ATGATG"])
        atg = UNIVERSAL.codon_index["ATG"]
        assert pi[atg] > 0.999

    def test_f3x4_differs_from_f1x4_on_biased_positions(self):
        seqs = ["ATGGCAATGGCA" * 5]
        f1 = codon_frequencies_f1x4(seqs)
        f3 = codon_frequencies_f3x4(seqs)
        assert not np.allclose(f1, f3)

    def test_frame_validation(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            codon_frequencies_f3x4(["ATGA"])


class TestDispatchAndCounts:
    @pytest.mark.parametrize("method", ["equal", "f1x4", "f3x4", "f61"])
    def test_estimator_dispatch(self, method):
        pi = estimate_codon_frequencies(["ATGTTTCCCAAA"], method=method)
        assert _is_probability_vector(pi)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown CodonFreq"):
            estimate_codon_frequencies(["ATG"], method="f99")

    def test_counts_floor(self):
        counts = np.zeros(61)
        counts[0] = 10.0
        pi = frequencies_from_counts(counts)
        assert pi.min() >= MIN_FREQUENCY / 2
        assert np.isclose(pi.sum(), 1.0)

    def test_negative_counts_rejected(self):
        counts = np.zeros(61)
        counts[0] = -1
        with pytest.raises(ValueError):
            frequencies_from_counts(counts)

    def test_all_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            frequencies_from_counts(np.zeros(61))
