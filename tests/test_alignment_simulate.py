"""Sequence simulator: determinism, ground truth, and statistical sanity."""

import numpy as np
import pytest

from repro.alignment.msa import MISSING
from repro.alignment.simulate import simulate_alignment
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.trees.newick import parse_newick
from repro.trees.simulate import simulate_yule_tree


@pytest.fixture
def marked_tree():
    return parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")


@pytest.fixture
def values():
    return {"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3}


class TestBasics:
    def test_shape_and_names(self, marked_tree, values):
        sim = simulate_alignment(marked_tree, BranchSiteModelA(), values, 50, seed=1)
        assert sim.alignment.n_taxa == 5
        assert sim.alignment.n_codons == 50
        assert sim.alignment.names == marked_tree.leaf_names()

    def test_deterministic(self, marked_tree, values):
        a = simulate_alignment(marked_tree, BranchSiteModelA(), values, 40, seed=3)
        b = simulate_alignment(marked_tree, BranchSiteModelA(), values, 40, seed=3)
        assert np.array_equal(a.alignment.states, b.alignment.states)
        assert np.array_equal(a.site_classes, b.site_classes)

    def test_seed_changes_data(self, marked_tree, values):
        a = simulate_alignment(marked_tree, BranchSiteModelA(), values, 40, seed=3)
        b = simulate_alignment(marked_tree, BranchSiteModelA(), values, 40, seed=4)
        assert not np.array_equal(a.alignment.states, b.alignment.states)

    def test_all_states_are_sense_codons(self, marked_tree, values):
        sim = simulate_alignment(marked_tree, BranchSiteModelA(), values, 60, seed=1)
        assert sim.alignment.states.min() >= 0
        assert sim.alignment.states.max() < 61

    def test_site_class_proportions(self, marked_tree, values):
        sim = simulate_alignment(marked_tree, BranchSiteModelA(), values, 8000, seed=5)
        freq = np.bincount(sim.site_classes, minlength=4) / 8000
        model = BranchSiteModelA()
        expected = np.array([c.proportion for c in model.site_classes(values)])
        assert np.allclose(freq, expected, atol=0.025)

    def test_missing_fraction(self, marked_tree, values):
        sim = simulate_alignment(
            marked_tree, BranchSiteModelA(), values, 500, seed=2, missing_fraction=0.2
        )
        frac = np.mean(sim.alignment.states == MISSING)
        assert 0.14 < frac < 0.26


class TestModelRequirements:
    def test_bsm_requires_foreground(self, values):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")  # no mark
        with pytest.raises(ValueError, match="foreground"):
            simulate_alignment(tree, BranchSiteModelA(), values, 10, seed=1)

    def test_m0_ignores_marks(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        sim = simulate_alignment(tree, M0Model(), {"kappa": 2.0, "omega": 0.5}, 10, seed=1)
        assert sim.alignment.n_codons == 10

    def test_invalid_inputs(self, marked_tree, values):
        with pytest.raises(ValueError, match="n_codons"):
            simulate_alignment(marked_tree, BranchSiteModelA(), values, 0, seed=1)
        with pytest.raises(ValueError, match="missing_fraction"):
            simulate_alignment(
                marked_tree, BranchSiteModelA(), values, 10, seed=1, missing_fraction=1.5
            )


class TestStatisticalSanity:
    def test_zero_length_branches_copy_parent(self, values):
        tree = parse_newick("((A:0.0,B:0.0):0.0 #1,C:0.0,D:0.0);")
        sim = simulate_alignment(tree, BranchSiteModelA(), values, 30, seed=1)
        # All branches zero: every taxon carries the root state.
        assert np.all(sim.alignment.states == sim.alignment.states[0])

    def test_stationary_frequencies_recovered(self):
        # Long M0 evolution on a star tree: leaf codon usage ~ pi.
        rng = np.random.default_rng(0)
        pi = rng.dirichlet(np.full(61, 3.0))  # skewed so the signal is strong
        tree = simulate_yule_tree(6, seed=2, mean_branch_length=0.2)
        sim = simulate_alignment(
            tree, M0Model(), {"kappa": 2.0, "omega": 0.5}, 4000, seed=3, pi=pi
        )
        counts = np.bincount(sim.alignment.states.ravel(), minlength=61)
        freq = counts / counts.sum()
        assert np.corrcoef(freq, pi)[0, 1] > 0.95

    def test_divergence_grows_with_branch_length(self, values):
        short = parse_newick("(A:0.01,B:0.01,C:0.01 #1);")
        long = parse_newick("(A:1.0,B:1.0,C:1.0 #1);")
        sim_s = simulate_alignment(short, BranchSiteModelA(), values, 400, seed=4)
        sim_l = simulate_alignment(long, BranchSiteModelA(), values, 400, seed=4)
        diff_s = np.mean(sim_s.alignment.states[0] != sim_s.alignment.states[1])
        diff_l = np.mean(sim_l.alignment.states[0] != sim_l.alignment.states[1])
        assert diff_l > diff_s + 0.1
