"""Utility layer: log-space arithmetic, RNG policy, stopwatch."""

import time

import numpy as np
import pytest

from repro.utils.numerics import (
    logsumexp_weighted,
    relative_difference,
    validate_probability_vector,
    validate_square,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch


class TestLogsumexpWeighted:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        logs = np.log(rng.random((3, 5)))
        w = np.array([0.2, 0.5, 0.3])
        expected = np.log(np.einsum("k,kp->p", w, np.exp(logs)))
        assert np.allclose(logsumexp_weighted(logs, w), expected)

    def test_extreme_values_stable(self):
        logs = np.array([[-1000.0], [-1001.0]])
        out = logsumexp_weighted(logs, np.array([0.5, 0.5]))
        assert np.isfinite(out[0])
        assert out[0] == pytest.approx(-1000.0 + np.log(0.5 * (1 + np.exp(-1))))

    def test_zero_weights_dropped(self):
        logs = np.array([[0.0], [-np.inf]])
        out = logsumexp_weighted(logs, np.array([1.0, 0.0]))
        assert out[0] == pytest.approx(0.0)

    def test_all_zero_weights_give_minus_inf(self):
        logs = np.zeros((2, 1))
        out = logsumexp_weighted(logs, np.zeros(2))
        assert out[0] == -np.inf

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            logsumexp_weighted(np.zeros((2, 1)), np.array([0.5, -0.5]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            logsumexp_weighted(np.zeros((2, 1)), np.ones(3))


class TestRelativeDifference:
    def test_paper_metric(self):
        # D = |lnL - lnL̂| / |lnL| (§IV-1).
        assert relative_difference(-100.0, -100.0) == 0.0
        assert relative_difference(-100.0, -100.1) == pytest.approx(0.001)

    def test_zero_reference(self):
        assert relative_difference(0.0, 1.0) == float("inf")
        assert relative_difference(0.0, 0.0) == 0.0


class TestValidators:
    def test_probability_vector(self):
        v = validate_probability_vector(np.array([0.5, 0.5]))
        assert v.dtype == float
        with pytest.raises(ValueError):
            validate_probability_vector(np.array([0.7, 0.7]))
        with pytest.raises(ValueError):
            validate_probability_vector(np.array([-0.5, 1.5]))
        with pytest.raises(ValueError):
            validate_probability_vector(np.ones((2, 2)) / 4)

    def test_square(self):
        validate_square(np.eye(3))
        with pytest.raises(ValueError):
            validate_square(np.ones((2, 3)))


class TestRng:
    def test_int_seed_reproducible(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert a1.random() == a2.random()

    def test_spawn_count_validated(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure("a"):
            time.sleep(0.002)
        with sw.measure("a"):
            pass
        assert sw.count("a") == 2
        assert sw.total("a") >= 0.002

    def test_unknown_label_is_zero(self):
        sw = Stopwatch()
        assert sw.total("nope") == 0.0
        assert sw.count("nope") == 0

    def test_reset(self):
        sw = Stopwatch()
        with sw.measure("a"):
            pass
        sw.reset()
        assert sw.count("a") == 0

    def test_summary_sorted_by_time(self):
        sw = Stopwatch()
        with sw.measure("fast"):
            pass
        with sw.measure("slow"):
            time.sleep(0.003)
        lines = sw.summary().splitlines()
        assert lines[0].startswith("slow")
