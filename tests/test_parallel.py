"""Batch drivers: gene fan-out and branch scans (in-process for hermeticity).

The fault-injection scenarios at the bottom use module-level workers so
they pickle into real worker processes; the ones needing live pools and
timeouts are marked ``slow``.
"""

import time
from functools import partial

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.models.branch_site import BranchSiteModelA
from repro.parallel.batch import GeneJob, _run_gene, analyze_genes, scan_branches
from repro.parallel.faults import FaultPolicy, TaskFailure
from repro.io.results_io import ResultJournal
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def gene():
    tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    values = {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, n_codons=60, seed=5)
    return tree, sim.alignment


class TestGeneJob:
    def test_from_objects_roundtrip(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        assert job.gene_id == "g1"
        assert "#1" in job.newick
        assert len(job.names) == 5


class TestAnalyzeGenes:
    def test_single_gene_inprocess(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        results = analyze_genes([job], processes=1, max_iterations=2)
        (res,) = results
        assert not res.failed
        assert np.isfinite(res.lnl0) and np.isfinite(res.lnl1)
        assert res.statistic >= 0
        assert res.iterations > 0

    def test_per_gene_seeds_differ(self, gene):
        tree, alignment = gene
        jobs = [GeneJob.from_objects(f"g{i}", tree, alignment) for i in range(2)]
        a, b = analyze_genes(jobs, processes=1, max_iterations=2, seed=10)
        # Same data, different derived seeds -> (slightly) different fits.
        assert a.gene_id != b.gene_id

    def test_reproducible(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        r1 = analyze_genes([job], processes=1, max_iterations=2, seed=3)[0]
        r2 = analyze_genes([job], processes=1, max_iterations=2, seed=3)[0]
        assert r1.lnl1 == r2.lnl1

    def test_failure_captured_not_raised(self):
        job = GeneJob(gene_id="bad", newick="(A:0.1,B:0.2,C:0.3);",  # no #1 mark
                      names=("A", "B", "C"), sequences=("ATG", "ATG", "ATG"))
        (res,) = analyze_genes([job], processes=1, max_iterations=1)
        assert res.failed
        assert "foreground" in res.error


class TestScanBranches:
    def test_scans_every_internal_branch(self, gene):
        tree, alignment = gene
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1, processes=1
        )
        internal_branches = sum(
            1 for n in tree.nodes if not n.is_root and not n.is_leaf
        )
        assert len(scan.by_branch) == internal_branches

    def test_labels_and_significance_api(self, gene):
        tree, alignment = gene
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1, processes=1
        )
        for label, lrt in scan.by_branch.items():
            assert label.startswith("node#") or label in tree.leaf_names()
            assert lrt.statistic >= 0
        assert set(scan.significant_branches(alpha=1.0)) <= set(scan.by_branch)

    def test_original_tree_unchanged(self, gene):
        tree, alignment = gene
        before = [n.foreground for n in tree.nodes]
        scan_branches("g1", tree, alignment, internal_only=True, max_iterations=1, processes=1)
        assert [n.foreground for n in tree.nodes] == before


# ----------------------------------------------------------------------
# Module-level fault-injection workers (pickleable into worker processes)
# ----------------------------------------------------------------------
def _worker_poison_suffix(suffix, args):
    """Raises for tasks whose id ends with ``suffix``; else runs normally."""
    job = args[0]
    if job.gene_id.endswith(suffix):
        raise RuntimeError(f"poisoned task {job.gene_id}")
    return _run_gene(args)


def _scenario_worker(args):
    """Poisoned ids raise; 'hang' ids sleep far past any test timeout."""
    job = args[0]
    if "poison" in job.gene_id:
        raise RuntimeError(f"poisoned task {job.gene_id}")
    if "hang" in job.gene_id:
        time.sleep(45.0)
    return _run_gene(args)


def _recording_worker(log_path, args):
    """Records which tasks actually ran, then computes normally."""
    job = args[0]
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(job.gene_id + "\n")
    return _run_gene(args)


class TestScanPartialFailure:
    """Regression: one poisoned branch must not mask the other branches'
    completed results (scan_branches used to raise and discard them)."""

    def test_poisoned_branch_does_not_mask_others(self, gene):
        tree, alignment = gene
        internal = [n for n in tree.nodes if not n.is_root and not n.is_leaf]
        poisoned_label = f"node#{internal[0].index}"
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1,
            processes=1, worker=partial(_worker_poison_suffix, poisoned_label),
        )
        assert not scan.ok
        assert set(scan.failures) == {poisoned_label}
        # Every other branch's LRT survived.
        assert len(scan.by_branch) == len(internal) - 1
        assert all(lrt.statistic >= 0 for lrt in scan.by_branch.values())
        failure = scan.failures[poisoned_label]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert "poisoned" in failure.message

    def test_raise_on_failure_restores_fail_fast(self, gene):
        tree, alignment = gene
        internal = [n for n in tree.nodes if not n.is_root and not n.is_leaf]
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1,
            processes=1,
            worker=partial(_worker_poison_suffix, f"node#{internal[0].index}"),
        )
        with pytest.raises(RuntimeError, match="poisoned"):
            scan.raise_on_failure()

    def test_clean_scan_is_ok(self, gene):
        tree, alignment = gene
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1, processes=1
        )
        assert scan.ok
        assert scan.failures == {}
        assert scan.raise_on_failure() is scan

    def test_summary_counts_failures(self, gene):
        tree, alignment = gene
        internal = [n for n in tree.nodes if not n.is_root and not n.is_leaf]
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1,
            processes=1,
            worker=partial(_worker_poison_suffix, f"node#{internal[0].index}"),
        )
        summary = scan.summary()
        assert summary.n_tasks == len(internal)
        assert summary.n_failed == 1
        assert summary.failures_by_kind == {"error": 1}
        assert summary.total_evaluations > 0


class TestJournalResume:
    def _jobs(self, gene, n=4, poisoned=()):
        tree, alignment = gene
        jobs = []
        for k in range(n):
            if k in poisoned:
                # No #1 mark: the worker raises on binding.
                jobs.append(GeneJob(
                    gene_id=f"g{k}", newick="(A:0.1,B:0.2,C:0.3);",
                    names=("A", "B", "C"), sequences=("ATG", "ATG", "ATG"),
                ))
            else:
                jobs.append(GeneJob.from_objects(f"g{k}", tree, alignment))
        return jobs

    def test_journal_records_every_outcome(self, gene, tmp_path):
        journal = tmp_path / "scan.jsonl"
        jobs = self._jobs(gene, n=4, poisoned=(2,))
        results = analyze_genes(jobs, processes=1, max_iterations=1,
                                journal=str(journal))
        assert [r.failed for r in results] == [False, False, True, False]
        entries = ResultJournal(str(journal)).load()
        assert len(entries) == 4
        assert {e.gene_id for e in entries} == {"g0", "g1", "g2", "g3"}

    def test_resume_recomputes_only_unfinished(self, gene, tmp_path):
        journal = tmp_path / "scan.jsonl"
        log = tmp_path / "ran.log"
        jobs = self._jobs(gene, n=4, poisoned=(2,))
        first = analyze_genes(jobs, processes=1, max_iterations=1,
                              journal=str(journal))
        # Resume with healthy inputs for the poisoned gene.
        jobs_fixed = self._jobs(gene, n=4, poisoned=())
        second = analyze_genes(
            jobs_fixed, processes=1, max_iterations=1,
            journal=str(journal), resume=True,
            worker=partial(_recording_worker, str(log)),
        )
        ran = log.read_text().split()
        assert ran == ["g2"], "resume must recompute only the failed gene"
        assert all(not r.failed for r in second)
        # Loaded results are byte-identical to the first run's.
        for k in (0, 1, 3):
            assert second[k].lnl1 == first[k].lnl1
            assert second[k].n_evaluations == first[k].n_evaluations

    def test_resume_uses_original_seed_for_recomputed_gene(self, gene, tmp_path):
        journal = tmp_path / "scan.jsonl"
        jobs = self._jobs(gene, n=3)
        baseline = analyze_genes(jobs, processes=1, max_iterations=1, seed=7)
        # Journal only g0/g1, then resume g2: same seed -> same fit.
        with ResultJournal(str(journal)) as sink:
            sink.append(baseline[0])
            sink.append(baseline[1])
        resumed = analyze_genes(jobs, processes=1, max_iterations=1, seed=7,
                                journal=str(journal), resume=True)
        assert resumed[2].lnl1 == baseline[2].lnl1


class TestFaultScenario:
    """ISSUE acceptance scenario: a 10-gene scan with 2 poisoned genes
    and 1 hung gene completes with exactly 3 structured failures and 7
    LRT results, and a resumed run recomputes only the unfinished genes."""

    def _make_jobs(self, gene):
        tree, alignment = gene
        jobs = []
        for k in range(10):
            if k in (2, 5):
                gene_id = f"gene{k}-poison"
            elif k == 7:
                gene_id = f"gene{k}-hang"
            else:
                gene_id = f"gene{k}"
            jobs.append(GeneJob.from_objects(gene_id, tree, alignment))
        return jobs

    @pytest.mark.slow
    def test_scripted_fault_injection_scenario(self, gene, tmp_path):
        journal = tmp_path / "genome.jsonl"
        jobs = self._make_jobs(gene)
        policy = FaultPolicy(task_timeout=10.0)
        results = analyze_genes(
            jobs, processes=2, max_iterations=1, seed=11,
            policy=policy, journal=str(journal), worker=_scenario_worker,
        )

        failed = [r for r in results if r.failed]
        ok = [r for r in results if not r.failed]
        assert len(failed) == 3 and len(ok) == 7
        kinds = sorted(r.failure.kind for r in failed)
        assert kinds == ["error", "error", "timeout"]
        assert all(np.isfinite(r.statistic) for r in ok)
        assert all(r.n_evaluations > 0 for r in ok)

        # --- resume: only the 3 unfinished genes are recomputed -------
        log = tmp_path / "ran.log"
        resumed = analyze_genes(
            jobs, processes=1, max_iterations=1, seed=11,
            journal=str(journal), resume=True,
            worker=partial(_recording_worker, str(log)),
        )
        ran = sorted(log.read_text().split())
        assert ran == sorted(r.gene_id for r in failed)
        # The recording worker neither poisons nor hangs, so everything
        # completes on resume; journalled genes kept their metrics.
        assert all(not r.failed for r in resumed)
        by_id = {r.gene_id: r for r in results}
        for r in resumed:
            if r.gene_id not in ran:
                assert r.n_evaluations == by_id[r.gene_id].n_evaluations
                assert r.lnl1 == by_id[r.gene_id].lnl1
