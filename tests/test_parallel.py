"""Batch drivers: gene fan-out and branch scans (in-process for hermeticity)."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.models.branch_site import BranchSiteModelA
from repro.parallel.batch import GeneJob, analyze_genes, scan_branches
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def gene():
    tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    values = {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, n_codons=60, seed=5)
    return tree, sim.alignment


class TestGeneJob:
    def test_from_objects_roundtrip(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        assert job.gene_id == "g1"
        assert "#1" in job.newick
        assert len(job.names) == 5


class TestAnalyzeGenes:
    def test_single_gene_inprocess(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        results = analyze_genes([job], processes=1, max_iterations=2)
        (res,) = results
        assert not res.failed
        assert np.isfinite(res.lnl0) and np.isfinite(res.lnl1)
        assert res.statistic >= 0
        assert res.iterations > 0

    def test_per_gene_seeds_differ(self, gene):
        tree, alignment = gene
        jobs = [GeneJob.from_objects(f"g{i}", tree, alignment) for i in range(2)]
        a, b = analyze_genes(jobs, processes=1, max_iterations=2, seed=10)
        # Same data, different derived seeds -> (slightly) different fits.
        assert a.gene_id != b.gene_id

    def test_reproducible(self, gene):
        tree, alignment = gene
        job = GeneJob.from_objects("g1", tree, alignment)
        r1 = analyze_genes([job], processes=1, max_iterations=2, seed=3)[0]
        r2 = analyze_genes([job], processes=1, max_iterations=2, seed=3)[0]
        assert r1.lnl1 == r2.lnl1

    def test_failure_captured_not_raised(self):
        job = GeneJob(gene_id="bad", newick="(A:0.1,B:0.2,C:0.3);",  # no #1 mark
                      names=("A", "B", "C"), sequences=("ATG", "ATG", "ATG"))
        (res,) = analyze_genes([job], processes=1, max_iterations=1)
        assert res.failed
        assert "foreground" in res.error


class TestScanBranches:
    def test_scans_every_internal_branch(self, gene):
        tree, alignment = gene
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1, processes=1
        )
        internal_branches = sum(
            1 for n in tree.nodes if not n.is_root and not n.is_leaf
        )
        assert len(scan.by_branch) == internal_branches

    def test_labels_and_significance_api(self, gene):
        tree, alignment = gene
        scan = scan_branches(
            "g1", tree, alignment, internal_only=True, max_iterations=1, processes=1
        )
        for label, lrt in scan.by_branch.items():
            assert label.startswith("node#") or label in tree.leaf_names()
            assert lrt.statistic >= 0
        assert set(scan.significant_branches(alpha=1.0)) <= set(scan.by_branch)

    def test_original_tree_unchanged(self, gene):
        tree, alignment = gene
        before = [n.foreground for n in tree.nodes]
        scan_branches("g1", tree, alignment, internal_only=True, max_iterations=1, processes=1)
        assert [n.foreground for n in tree.nodes] == before
