"""Failure injection: malformed inputs fail loudly with useful messages,
and interrupted batch runs resume from their journal."""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.alignment.msa import CodonAlignment
from repro.alignment.simulate import simulate_alignment
from repro.codon.matrix import build_rate_matrix
from repro.core.engine import make_engine
from repro.io.results_io import ResultJournal
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.parallel.batch import GeneJob, analyze_genes
from repro.trees.newick import parse_newick


@pytest.fixture
def tree():
    return parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")


@pytest.fixture
def alignment():
    return CodonAlignment.from_sequences(
        ["A", "B", "C", "D", "E"], ["ATGTTT"] * 5
    )


class TestDataGates:
    def test_stop_codons_in_data(self):
        with pytest.raises(ValueError, match="stop codon"):
            CodonAlignment.from_sequences(["A"], ["ATGTAA"])

    def test_alignment_tree_taxon_mismatch(self, tree):
        alignment = CodonAlignment.from_sequences(["A", "B", "C"], ["ATG"] * 3)
        with pytest.raises(ValueError, match="taxa differ"):
            make_engine("slim").bind(tree, alignment, M0Model())

    def test_branch_site_without_mark(self, alignment):
        unmarked = parse_newick("((A:0.2,B:0.1):0.08,(C:0.15,D:0.12):0.05,E:0.3);")
        with pytest.raises(ValueError, match="foreground"):
            make_engine("slim").bind(unmarked, alignment, BranchSiteModelA())

    def test_two_marks_rejected(self, alignment):
        doubled = parse_newick("((A:0.2 #1,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
        with pytest.raises(ValueError, match="exactly one"):
            make_engine("slim").bind(doubled, alignment, BranchSiteModelA())

    def test_nan_branch_length(self, tree, alignment):
        tree.leaves[0].length = float("nan")
        with pytest.raises(ValueError, match="invalid"):
            make_engine("slim").bind(tree, alignment, M0Model())


class TestDegenerateNumerics:
    def test_degenerate_frequencies_rejected(self):
        pi = np.zeros(61)
        pi[0] = 1.0
        with pytest.raises(ValueError, match="strictly positive"):
            build_rate_matrix(2.0, 0.5, pi)

    def test_non_probability_pi_rejected(self):
        with pytest.raises(ValueError, match="sums to"):
            build_rate_matrix(2.0, 0.5, np.full(61, 0.5))

    def test_evaluation_with_impossible_parameters(self, tree, alignment):
        bound = make_engine("slim").bind(tree, alignment, BranchSiteModelA())
        with pytest.raises(ValueError):
            bound.log_likelihood(
                {"kappa": -1.0, "omega0": 0.3, "omega2": 2.0, "p0": 0.5, "p1": 0.3}
            )

    def test_proportions_on_boundary_rejected(self, tree, alignment):
        bound = make_engine("slim").bind(tree, alignment, BranchSiteModelA())
        with pytest.raises(ValueError):
            bound.log_likelihood(
                {"kappa": 2.0, "omega0": 0.3, "omega2": 2.0, "p0": 0.7, "p1": 0.3}
            )

    def test_all_missing_alignment_frequency_estimation_fails_loudly(self, tree):
        aln = CodonAlignment.from_sequences(["A", "B", "C", "D", "E"], ["---"] * 5)
        with pytest.raises(ValueError, match="no unambiguous codons"):
            make_engine("slim").bind(tree, aln, M0Model())

    def test_all_missing_alignment_is_uninformative_with_explicit_pi(self, tree):
        aln = CodonAlignment.from_sequences(["A", "B", "C", "D", "E"], ["---"] * 5)
        pi = np.full(61, 1 / 61)
        bound = make_engine("slim").bind(tree, aln, M0Model(), pi=pi)
        lnl = bound.log_likelihood({"kappa": 2.0, "omega": 0.5})
        # Entirely missing data: likelihood is exactly 1 per site.
        assert lnl == pytest.approx(0.0, abs=1e-9)


class TestOptimizerRobustness:
    def test_fit_survives_zero_length_start(self, tree, alignment):
        from repro.optimize.ml import fit_model

        bound = make_engine("slim").bind(tree, alignment, M0Model())
        fit = fit_model(
            bound,
            start_lengths=np.zeros(bound.n_branches),
            seed=1,
            max_iterations=3,
        )
        assert np.isfinite(fit.lnl)

    def test_fit_on_single_invariant_column(self, tree):
        from repro.optimize.ml import fit_model

        aln = CodonAlignment.from_sequences(["A", "B", "C", "D", "E"], ["ATG"] * 5)
        # Uniform pi: with F3x4 from this column pi would concentrate on
        # ATG, making the likelihood flat in the branch lengths.
        bound = make_engine("slim").bind(tree, aln, M0Model(), pi=np.full(61, 1 / 61))
        fit = fit_model(bound, seed=1, max_iterations=40)
        assert np.isfinite(fit.lnl)
        # Invariant data: branch lengths driven toward zero.
        assert fit.branch_lengths.sum() < 0.5 * tree.total_tree_length()


class TestKillAndResume:
    """A batch killed mid-run leaves a journal that resumes correctly."""

    def _jobs(self, tree, n=4):
        sim = simulate_alignment(
            tree, BranchSiteModelA(),
            {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
            n_codons=40, seed=9,
        )
        return [GeneJob.from_objects(f"g{k}", tree, sim.alignment) for k in range(n)]

    def test_resume_from_partial_journal(self, tree, tmp_path):
        journal = tmp_path / "scan.jsonl"
        jobs = self._jobs(tree, n=4)
        # Simulate the kill: a first run journalled g0/g1 before dying.
        full = analyze_genes(jobs, processes=1, max_iterations=1, seed=3)
        with ResultJournal(str(journal)) as sink:
            sink.append(full[0])
            sink.append(full[1])
        resumed = analyze_genes(jobs, processes=1, max_iterations=1, seed=3,
                                journal=str(journal), resume=True)
        assert all(not r.failed for r in resumed)
        # g0/g1 loaded verbatim; g2/g3 recomputed with their original
        # per-gene seeds, hence identical to the uninterrupted run.
        for k in range(4):
            assert resumed[k].lnl1 == full[k].lnl1
            assert resumed[k].n_evaluations == full[k].n_evaluations
        # The journal now also holds the resumed genes.
        assert set(ResultJournal(str(journal)).completed()) == {"g0", "g1", "g2", "g3"}

    def test_resume_after_midwrite_kill_drops_torn_record(self, tree, tmp_path):
        journal = tmp_path / "scan.jsonl"
        jobs = self._jobs(tree, n=3)
        full = analyze_genes(jobs, processes=1, max_iterations=1, seed=3)
        with ResultJournal(str(journal)) as sink:
            sink.append(full[0])
        # The kill landed mid-write: g1's record is torn.
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "gene_result", "gene_id": "g1", "lnl0"')
        resumed = analyze_genes(jobs, processes=1, max_iterations=1, seed=3,
                                journal=str(journal), resume=True)
        assert all(not r.failed for r in resumed)
        assert resumed[1].lnl1 == full[1].lnl1  # recomputed, not trusted

    @pytest.mark.slow
    def test_sigkill_mid_batch_then_resume(self, tree, tmp_path):
        """Real kill: a subprocess scan is SIGKILLed after the first
        journal record lands; a resumed run completes the batch."""
        journal = tmp_path / "scan.jsonl"
        script = textwrap.dedent("""
            import sys, time
            from repro.alignment.simulate import simulate_alignment
            from repro.models.branch_site import BranchSiteModelA
            from repro.parallel.batch import GeneJob, _run_gene, analyze_genes
            from repro.trees.newick import parse_newick

            tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
            sim = simulate_alignment(
                tree, BranchSiteModelA(),
                {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
                n_codons=40, seed=9,
            )
            jobs = [GeneJob.from_objects(f"g{k}", tree, sim.alignment) for k in range(4)]

            def slow_worker(args):
                res = _run_gene(args)
                if args[0].gene_id != "g0":
                    time.sleep(60.0)  # parent kills us long before this returns
                return res

            print("READY", flush=True)
            analyze_genes(jobs, processes=1, max_iterations=1, seed=3,
                          journal=sys.argv[1], worker=slow_worker)
        """)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(journal)],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            # Wait for the first durable record, then kill mid-batch.
            deadline = 60.0
            import time as _time
            while deadline > 0 and len(ResultJournal(str(journal)).load()) < 1:
                _time.sleep(0.2)
                deadline -= 0.2
            assert len(ResultJournal(str(journal)).load()) >= 1
        finally:
            proc.kill()
            proc.wait()

        done_before = set(ResultJournal(str(journal)).completed())
        assert "g0" in done_before and len(done_before) < 4

        jobs = self._jobs(tree, n=4)
        resumed = analyze_genes(jobs, processes=1, max_iterations=1, seed=3,
                                journal=str(journal), resume=True)
        assert all(not r.failed for r in resumed)
        assert set(ResultJournal(str(journal)).completed()) == {"g0", "g1", "g2", "g3"}
