"""M1a vs M2a sites test (the §V-B model extension)."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.models.sites import M2aModel
from repro.optimize.ml import fit_sites_test
from repro.trees.newick import parse_newick

TREE = "((A:0.3,B:0.3):0.2,(C:0.3,D:0.3):0.1,E:0.4);"


@pytest.fixture(scope="module")
def selected_sim():
    tree = parse_newick(TREE)
    truth = {"kappa": 2.0, "omega0": 0.05, "omega2": 6.0, "p0": 0.5, "p1": 0.25}
    return tree, simulate_alignment(tree, M2aModel(), truth, n_codons=300, seed=13)


class TestFitSitesTest:
    @pytest.fixture(scope="class")
    def result(self, selected_sim):
        tree, sim = selected_sim
        engine = make_engine("slim")
        return fit_sites_test(
            lambda m: engine.bind(tree, sim.alignment, m),
            seed=1,
            max_iterations=25,
        )

    def test_nesting(self, result):
        assert result.m2a.lnl >= result.m1a.lnl - 1e-6

    def test_detects_simulated_selection(self, result):
        assert result.lrt.df == 2
        assert result.lrt.statistic > 5.99  # chi2_2 5% critical value

    def test_omega2_estimated_above_one(self, result):
        assert result.m2a.values["omega2"] > 1.5

    def test_summary(self, result):
        text = result.summary()
        assert "M1a" in text and "M2a" in text and "df=2" in text

    def test_no_foreground_mark_needed(self, selected_sim):
        # Site models ignore branch marks entirely; an unmarked tree works.
        tree, sim = selected_sim
        assert tree.foreground_nodes() == []

    def test_engines_agree(self, selected_sim):
        tree, sim = selected_sim
        values = {"kappa": 2.0, "omega0": 0.1, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
        lnls = [
            make_engine(name).bind(tree, sim.alignment, M2aModel()).log_likelihood(values)
            for name in ("codeml", "slim", "slim-v2")
        ]
        assert np.allclose(lnls, lnls[0], rtol=1e-12)
