"""Fixed-parameter fitting (CodeML's fix_kappa-style options)."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.optimize.ml import fit_branch_site_test, fit_model
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def problem():
    tree = parse_newick("((A:0.2,B:0.1):0.1 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    values = {"kappa": 2.5, "omega0": 0.2, "omega2": 5.0, "p0": 0.5, "p1": 0.3}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, 80, seed=9)
    return tree, sim


class TestFixedParams:
    def test_kappa_stays_at_start(self, problem):
        tree, sim = problem
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        fit = fit_model(
            bound,
            start_values={"kappa": 3.21, "omega": 0.5},
            fixed_params={"kappa"},
            max_iterations=5,
            seed=1,
        )
        assert fit.values["kappa"] == pytest.approx(3.21, rel=1e-9)

    def test_free_params_still_move(self, problem):
        tree, sim = problem
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        fit = fit_model(
            bound,
            start_values={"kappa": 3.21, "omega": 1.0},
            fixed_params={"kappa"},
            max_iterations=8,
            seed=1,
        )
        assert fit.values["omega"] != pytest.approx(1.0, abs=1e-6)

    def test_fixed_fit_never_beats_free_fit(self, problem):
        tree, sim = problem
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        start = {"kappa": 1.0, "omega": 0.5}
        free = fit_model(bound, start_values=dict(start), max_iterations=30, seed=1)
        fixed = fit_model(
            bound, start_values=dict(start), fixed_params={"kappa"}, max_iterations=30, seed=1
        )
        assert free.lnl >= fixed.lnl - 1e-6

    def test_unfixable_param_rejected(self, problem):
        tree, sim = problem
        bound = make_engine("slim").bind(tree, sim.alignment, BranchSiteModelA())
        with pytest.raises(ValueError, match="cannot fix"):
            fit_model(bound, fixed_params={"p0"}, max_iterations=1, seed=1)

    def test_unknown_param_rejected(self, problem):
        tree, sim = problem
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        with pytest.raises(ValueError, match="no parameters"):
            fit_model(bound, fixed_params={"omega2"}, max_iterations=1, seed=1)


class TestStartOverrides:
    def test_branch_site_test_with_fixed_kappa(self, problem):
        tree, sim = problem
        engine = make_engine("slim")
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m),
            seed=1,
            max_iterations=3,
            start_overrides={"kappa": 2.75},
            fixed_params={"kappa"},
        )
        assert test.h0.values["kappa"] == pytest.approx(2.75, rel=1e-9)
        assert test.h1.values["kappa"] == pytest.approx(2.75, rel=1e-9)

    def test_override_without_fixing_is_start_only(self, problem):
        tree, sim = problem
        engine = make_engine("slim")
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m),
            seed=1,
            max_iterations=6,
            start_overrides={"kappa": 9.0},
        )
        # kappa started at 9 but was free to move toward the truth (2.5).
        assert test.h0.values["kappa"] < 9.0


class TestCtlIntegration:
    def test_cli_fix_kappa(self, tmp_path, capsys):
        from repro.alignment.parsers import write_phylip
        from repro.cli import main
        from repro.trees.newick import write_newick

        tree = parse_newick("((A:0.2,B:0.1):0.1 #1,(C:0.15,D:0.12):0.05,E:0.3);")
        sim = simulate_alignment(
            tree,
            BranchSiteModelA(),
            {"kappa": 2.0, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
            40,
            seed=2,
        )
        write_phylip(sim.alignment, tmp_path / "g.phy")
        (tmp_path / "g.nwk").write_text(write_newick(tree) + "\n")
        (tmp_path / "g.ctl").write_text(
            f"seqfile = {tmp_path}/g.phy\n"
            f"treefile = {tmp_path}/g.nwk\n"
            "fix_kappa = 1\n"
            "kappa = 4.5\n"
            "max_iterations = 2\n"
        )
        rc = main(["run", "--ctl", str(tmp_path / "g.ctl")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kappa    = 4.500000" in out
