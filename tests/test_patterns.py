"""Site-pattern compression invariants."""

import numpy as np
import pytest

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import PatternAlignment, compress_patterns


class TestCompression:
    def test_identical_columns_collapse(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATGATGTTT", "CCCCCCAAA"])
        pat = compress_patterns(aln)
        assert pat.n_patterns == 2
        assert pat.n_sites == 3
        assert pat.weights.tolist() == [2.0, 1.0]

    def test_all_unique(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATGTTTCCC"])
        pat = compress_patterns(aln)
        assert pat.n_patterns == 3
        assert np.all(pat.weights == 1.0)

    def test_site_to_pattern_mapping(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATGTTTATG", "CCCAAACCC"])
        pat = compress_patterns(aln)
        assert pat.site_to_pattern.tolist() == [0, 1, 0]

    def test_first_occurrence_order(self):
        aln = CodonAlignment.from_sequences(["x"], ["TTTATGTTT"])
        pat = compress_patterns(aln)
        # Pattern 0 is TTT (first seen), pattern 1 is ATG.
        assert pat.site_to_pattern.tolist() == [0, 1, 0]

    def test_weights_sum_to_site_count(self):
        aln = CodonAlignment.from_sequences(
            ["x", "y", "z"],
            ["ATGATGTTTATG", "ATGATGCCCATG", "ATGCCCTTTATG"],
        )
        pat = compress_patterns(aln)
        assert pat.weights.sum() == aln.n_codons

    def test_missing_distinguished_from_state(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATG---", "CCCCCC"])
        pat = compress_patterns(aln)
        assert pat.n_patterns == 2

    def test_ambiguity_content_distinguishes_patterns(self):
        # ATR = {ATA, ATG}; ATW = {ATA, ATT}: same AMBIGUOUS code but
        # different compatible sets -> must not merge.
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATRATW", "ATGATG"])
        pat = compress_patterns(aln)
        assert pat.n_patterns == 2

    def test_identical_ambiguity_merges(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATRATR", "ATGATG"])
        pat = compress_patterns(aln)
        assert pat.n_patterns == 1
        assert pat.weights.tolist() == [2.0]
        # Ambiguity carried over into the compressed alignment.
        assert (0, 0) in pat.alignment.ambiguity_sets

    def test_expand(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATGTTTATG"])
        pat = compress_patterns(aln)
        per_pattern = np.array([10.0, 20.0])
        assert pat.expand(per_pattern).tolist() == [10.0, 20.0, 10.0]

    def test_expand_2d(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATGTTTATG"])
        pat = compress_patterns(aln)
        per_pattern = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = pat.expand(per_pattern, axis=1)
        assert out.shape == (2, 3)
        assert out[:, 2].tolist() == [1.0, 3.0]


class TestValidation:
    def test_weight_shape_checked(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATGTTT"])
        with pytest.raises(ValueError, match="weights length"):
            PatternAlignment(aln, np.array([1.0]), np.array([0, 1]))

    def test_weight_sum_checked(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATGTTT"])
        with pytest.raises(ValueError, match="do not sum"):
            PatternAlignment(aln, np.array([1.0, 2.0]), np.array([0, 1]))
