"""BFGS optimizer on analytic objectives."""

import numpy as np
import pytest

from repro.optimize.bfgs import finite_difference_gradient, minimize_bfgs


def quadratic(x):
    return float((x - 1.5) @ (x - 1.5))


def rosenbrock(x):
    return float(100.0 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)


class TestMinimize:
    def test_quadratic_converges(self):
        res = minimize_bfgs(quadratic, np.zeros(4))
        assert res.converged
        assert np.allclose(res.x, 1.5, atol=1e-3)
        assert res.fun < 1e-6

    def test_rosenbrock_converges(self):
        res = minimize_bfgs(rosenbrock, np.array([-1.2, 1.0]), max_iterations=500)
        assert res.converged
        assert np.allclose(res.x, [1.0, 1.0], atol=1e-2)

    def test_iteration_budget_respected(self):
        res = minimize_bfgs(rosenbrock, np.array([-1.2, 1.0]), max_iterations=3)
        assert res.n_iterations == 3
        assert not res.converged
        assert "maximum iterations" in res.message

    def test_history_monotone_nonincreasing(self):
        res = minimize_bfgs(rosenbrock, np.array([-1.2, 1.0]), max_iterations=50)
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_already_at_optimum(self):
        res = minimize_bfgs(quadratic, np.full(3, 1.5))
        assert res.converged
        assert res.n_iterations == 0

    def test_evaluation_count_includes_gradient_probes(self):
        n = 5
        res = minimize_bfgs(quadratic, np.zeros(n), max_iterations=2)
        # Each iteration needs at least one line-search eval + n probes.
        assert res.n_evaluations >= (n + 1) * 2

    def test_callback_invoked_per_iteration(self):
        calls = []
        minimize_bfgs(
            quadratic,
            np.zeros(2),
            max_iterations=10,
            callback=lambda k, x, f: calls.append(k),
        )
        assert calls == list(range(1, len(calls) + 1))

    def test_nan_objective_treated_as_barrier(self):
        def partial(x):
            if x[0] > 2.0:
                return float("nan")
            return float((x[0] - 1.0) ** 2)

        res = minimize_bfgs(partial, np.array([0.0]))
        assert res.converged
        assert res.x[0] == pytest.approx(1.0, abs=1e-3)

    def test_nonfinite_start_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            minimize_bfgs(lambda x: float("inf"), np.zeros(2))

    def test_matrix_x0_rejected(self):
        with pytest.raises(ValueError, match="vector"):
            minimize_bfgs(quadratic, np.zeros((2, 2)))


class TestFiniteDifference:
    def test_gradient_of_quadratic(self):
        x = np.array([0.3, -2.0, 5.0])
        grad = finite_difference_gradient(quadratic, x, quadratic(x))
        assert np.allclose(grad, 2 * (x - 1.5), rtol=1e-4)

    def test_gradient_at_minimum_is_small(self):
        x = np.full(3, 1.5)
        grad = finite_difference_gradient(quadratic, x, quadratic(x))
        assert np.max(np.abs(grad)) < 1e-4
