"""Journal backward compatibility across committed schema versions.

One fixture file per historical journal version (v2 added the header,
v3 diagnostics, v4 clv_stats, v5 setup_seconds, v6 the model spec, v7
rung_usage + the substitution-mapping payload, v8 the additive
``mapping_ci``/``seconds``/``method`` mapping keys and ``h1_mles``)
plus the current version; the tolerant reader must load every one of
them — that is the
contract that lets a scan journalled by an old release resume on a new
one.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.io.results_io import JOURNAL_VERSION, ResultJournal

FIXTURES = os.path.join(os.path.dirname(__file__), "data", "journals")
VERSIONS = (2, 3, 4, 5, 6, 7, 8)


def _fixture(version):
    return os.path.join(FIXTURES, f"journal_v{version}.jsonl")


class TestFixtureVersions:
    def test_current_version_has_a_committed_fixture(self):
        # Forces whoever bumps JOURNAL_VERSION to also commit the fixture
        # (and extend VERSIONS) so the new layout stays covered forever.
        assert JOURNAL_VERSION in VERSIONS
        assert os.path.exists(_fixture(JOURNAL_VERSION))

    @pytest.mark.parametrize("version", VERSIONS)
    def test_header_declares_its_version(self, version):
        with open(_fixture(version), encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "journal_header"
        assert header["version"] == version

    @pytest.mark.parametrize("version", VERSIONS)
    def test_loads_every_record(self, version):
        results = ResultJournal(_fixture(version)).load()
        assert len(results) == 2
        assert all(r.gene_id.startswith("gene1:") for r in results)
        # The success common to every fixture round-trips its numerics.
        ok = next(r for r in results if r.gene_id == "gene1:A")
        assert not ok.failed
        assert ok.lnl0 == -1042.5 and ok.lnl1 == -1039.25
        assert ok.statistic == 6.5

    @pytest.mark.parametrize("version", VERSIONS)
    def test_completed_resumes_successes_only(self, version):
        done = ResultJournal(_fixture(version)).completed()
        assert "gene1:A" in done
        assert all(not r.failed for r in done.values())

    def test_v2_failure_record_restores_nan_and_failure(self):
        results = ResultJournal(_fixture(2)).load()
        failed = next(r for r in results if r.gene_id == "gene1:B")
        assert failed.failed
        assert math.isnan(failed.lnl0) and math.isnan(failed.pvalue)
        assert failed.failure is not None
        assert failed.failure.error_type == "ValueError"

    def test_v3_diagnostics_survive(self):
        results = ResultJournal(_fixture(3)).load()
        diagnosed = next(r for r in results if r.gene_id == "gene1:A")
        assert diagnosed.diagnostics["restarts"] == 1
        assert diagnosed.diagnostics["boundary_flags"] == ["h1:omega2_upper"]

    def test_v4_clv_stats_survive(self):
        results = ResultJournal(_fixture(4)).load()
        cached = next(r for r in results if r.gene_id == "gene1:A")
        assert cached.clv_stats == {"propagations": 412, "reuses": 1888}

    def test_v5_setup_seconds_survive(self):
        results = ResultJournal(_fixture(5)).load()
        warm = next(r for r in results if r.gene_id == "gene1:A")
        assert warm.setup_seconds == 0.041

    def test_v6_model_spec_survives(self):
        results = ResultJournal(_fixture(6)).load()
        by_id = {r.gene_id: r for r in results}
        assert by_id["gene1:A"].model == "bsrel:3"
        assert by_id["gene1:F"].model == "branch-site-A"

    def test_v7_rung_usage_and_mapping_survive(self):
        results = ResultJournal(_fixture(7)).load()
        by_id = {r.gene_id: r for r in results}
        mapped = by_id["gene1:A"]
        assert mapped.rung_usage == {"evr": 1380, "pade": 14, "uniformization": 2}
        assert mapped.mapping["n_samples"] == 16
        rows = {row["branch"]: row for row in mapped.mapping["branches"]}
        assert rows["A"]["foreground"] and rows["A"]["ratio"] == 1.25
        assert rows["B"]["ratio"] is None  # zero syn events: undefined
        assert mapped.mapping["foreground_sites"]["nonsyn"] == [2.0, 0.0, 1.25]
        # A task that ran without --map / recovery journals None for both.
        assert by_id["gene1:F"].rung_usage is None
        assert by_id["gene1:F"].mapping is None

    def test_v8_mapping_ci_and_h1_mles_survive(self):
        results = ResultJournal(_fixture(8)).load()
        by_id = {r.gene_id: r for r in results}
        mapped = by_id["gene1:A"]
        # Everything v7 carried is still there …
        assert mapped.mapping["n_samples"] == 16
        rows = {row["branch"]: row for row in mapped.mapping["branches"]}
        assert rows["A"]["ratio"] == 1.25 and rows["B"]["ratio"] is None
        # … plus the v8 additions: CI half-widths, sampler timing/method,
        # and the H1 MLE point the one-pass survey mapper re-binds at.
        ci = mapped.mapping["mapping_ci"]
        assert ci["level"] == 0.95
        assert {row["branch"] for row in ci["branches"]} == {"A", "B"}
        assert len(ci["foreground_sites"]["nonsyn"]) == 3
        assert mapped.mapping["method"] == "batched"
        assert mapped.mapping["seconds"] == 0.052
        assert mapped.h1_mles["values"]["omega2"] == 4.6
        assert mapped.h1_mles["branch_lengths"] == [0.31, 0.05]
        assert by_id["gene1:F"].h1_mles is None

    @pytest.mark.parametrize("version", [v for v in VERSIONS if v < 6])
    def test_older_versions_default_model_to_none(self, version):
        # Pre-v6 journals never recorded the model: readers see None and
        # treat it as the historical model-A default.
        for result in ResultJournal(_fixture(version)).load():
            assert result.model is None

    @pytest.mark.parametrize("version", [v for v in VERSIONS if v < 7])
    def test_older_versions_default_mapping_fields_to_none(self, version):
        # Pre-v7 journals never recorded rung usage or mapping payloads.
        for result in ResultJournal(_fixture(version)).load():
            assert result.rung_usage is None
            assert result.mapping is None

    @pytest.mark.parametrize("version", [v for v in VERSIONS if v < 8])
    def test_older_versions_default_h1_mles_to_none(self, version):
        # Pre-v8 journals never kept the H1 MLE point.
        for result in ResultJournal(_fixture(version)).load():
            assert result.h1_mles is None


class TestForwardGuards:
    def test_newer_major_version_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "journal_header", "schema": 1, "version": JOURNAL_VERSION + 1})
            + "\n"
        )
        with pytest.raises(ValueError, match="newer"):
            ResultJournal(path).load()

    def test_unknown_record_kinds_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with open(_fixture(JOURNAL_VERSION), encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, json.dumps({"kind": "survey_summary", "schema": 1, "holm": []}) + "\n")
        path.write_text("".join(lines))
        assert len(ResultJournal(path).load()) == 2

    def test_roundtrip_rewrites_current_fixture_shape(self, tmp_path):
        # A fresh journal written today must parse as the current version
        # fixture does: append → load is the identity on the fields.
        originals = ResultJournal(_fixture(JOURNAL_VERSION)).load()
        path = tmp_path / "rewrite.jsonl"
        with ResultJournal(path) as journal:
            for result in originals:
                journal.append(result)
        with open(path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["version"] == JOURNAL_VERSION
        reloaded = ResultJournal(path).load()
        assert [r.gene_id for r in reloaded] == [r.gene_id for r in originals]
        assert [r.model for r in reloaded] == [r.model for r in originals]
        assert np.allclose(
            [r.lnl1 for r in reloaded], [r.lnl1 for r in originals]
        )
