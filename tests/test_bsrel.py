"""BS-REL family: N-class construction and model-A bit-identity.

The acceptance bar for the site-class-graph refactor: the 4-class
branch-site model A expressed as ``bsrel:2`` must produce *exactly* the
same log-likelihood (float equality, not tolerance) as the historical
model-A path, per engine, with and without incremental evaluation,
batched evaluation and the recovery layer.
"""

import numpy as np
import pytest

from repro.core.engine import make_engine
from repro.core.recovery import RecoveryConfig
from repro.models.branch_site import BranchSiteModelA
from repro.models.bsrel import BSRELModel
from repro.models.parameters import (
    simplex_pack,
    stick_break_pack,
    stick_break_unpack,
)
from repro.models.registry import resolve_model_spec

from .conftest import ENGINE_NAMES

#: Model A values mapped onto the bsrel:2 parameter names.
def _bsrel2_values(bsm_values):
    return {
        "kappa": bsm_values["kappa"],
        "omega1": bsm_values["omega0"],
        "omega_fg": bsm_values["omega2"],
        "p1": bsm_values["p0"],
        "p2": bsm_values["p1"],
    }


class TestConstruction:
    def test_needs_two_base_classes(self):
        with pytest.raises(ValueError, match="at least 2"):
            BSRELModel(1)

    def test_param_names_h1(self):
        model = BSRELModel(3)
        assert model.param_names == (
            "kappa", "omega1", "omega2", "omega_fg", "p1", "p2", "p3"
        )

    def test_param_names_h0(self):
        model = BSRELModel(3, fix_omega_fg=True)
        assert "omega_fg" not in model.param_names
        assert model.hypothesis == "H0"

    def test_k2_classes_equal_model_a(self, bsm_values):
        a_classes = BranchSiteModelA().site_classes(bsm_values)
        b_classes = BSRELModel(2).site_classes(_bsrel2_values(bsm_values))
        assert [c.label for c in b_classes] == ["b1", "b2", "s1", "s2"]
        for a, b in zip(a_classes, b_classes):
            assert a.proportion == b.proportion
            assert a.omega_background == b.omega_background
            assert a.omega_foreground == b.omega_foreground
            assert a.positive == b.positive

    def test_six_class_graph_edges(self):
        model = BSRELModel(3)
        values = model.default_start(None)
        graph = model.site_class_graph(values)
        assert graph.n_classes == 6
        # Every selected class aliases its base class's background pass.
        for i in range(3):
            edge = graph.edges[3 + i]
            assert edge is not None and edge.base == i and not edge.full
        assert graph.positive_labels == ("s1", "s2", "s3")

    def test_h0_last_selected_class_full_share(self):
        model = BSRELModel(3, fix_omega_fg=True)
        values = model.default_start(None)
        graph = model.site_class_graph(values)
        # sK keeps ω_fg = 1 = its neutral base's ω: a full share under H0.
        assert graph.edges[5].full
        assert not graph.edges[3].full and not graph.edges[4].full

    def test_weights_must_leave_selected_mass(self):
        model = BSRELModel(2)
        values = model.default_start(None)
        values["p1"], values["p2"] = 0.6, 0.4
        with pytest.raises(ValueError, match="must lie in"):
            model.site_classes(values)


class TestPackUnpack:
    def test_roundtrip_k3(self):
        model = BSRELModel(3)
        values = model.default_start(np.random.default_rng(5))
        again = model.unpack(model.pack(values))
        for key in model.param_names:
            assert values[key] == pytest.approx(again[key], rel=1e-12)

    def test_stick_break_k2_matches_simplex(self):
        # K=2 stick-breaking must reproduce simplex_pack bit-for-bit —
        # that arithmetical identity is what keeps model A's packed
        # coordinates unchanged through the generalisation.
        assert stick_break_pack([0.5, 0.3]) == list(simplex_pack(0.5, 0.3))

    def test_stick_break_roundtrip(self):
        weights = [0.3, 0.25, 0.2, 0.1]
        out = stick_break_unpack(stick_break_pack(weights))
        assert out == pytest.approx(weights, rel=1e-12)

    def test_null_projection(self):
        model = BSRELModel(3)
        values = model.default_start(None)
        null_values = model.to_null_values(values)
        assert "omega_fg" not in null_values
        assert model.null_model().validate(null_values)


class TestRegistry:
    def test_default_is_model_a(self):
        spec = resolve_model_spec(None)
        h0, h1 = spec.pair()
        assert isinstance(h0, BranchSiteModelA) and h0.fix_omega2
        assert isinstance(h1, BranchSiteModelA) and not h1.fix_omega2

    @pytest.mark.parametrize("alias", ["branch-site-A", "bsA", "A", "model-a"])
    def test_model_a_aliases(self, alias):
        assert resolve_model_spec(alias).spec == "branch-site-A"

    def test_bsrel_spec(self):
        spec = resolve_model_spec("bsrel:3")
        h0, h1 = spec.pair()
        assert isinstance(h0, BSRELModel) and h0.fix_omega_fg
        assert h1.n_base_classes == 3 and not h1.fix_omega_fg

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_model_spec("bsrel:1")
        with pytest.raises(ValueError):
            resolve_model_spec("bsrel:x")
        with pytest.raises(ValueError):
            resolve_model_spec("m8")


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
class TestModelABitIdentity:
    """bsrel:2 ≡ model A: exact float lnL equality, every evaluation mode."""

    def _bind_pair(self, engine_name, small_tree, small_sim, **bind_kwargs):
        recovery = bind_kwargs.pop("recovery", None)
        engine_a = make_engine(engine_name, recovery=recovery)
        engine_b = make_engine(engine_name, recovery=recovery)
        bound_a = engine_a.bind(
            small_tree, small_sim.alignment, BranchSiteModelA(), **bind_kwargs
        )
        bound_b = engine_b.bind(
            small_tree, small_sim.alignment, BSRELModel(2), **bind_kwargs
        )
        return bound_a, bound_b

    def test_plain(self, engine_name, small_tree, small_sim, bsm_values):
        bound_a, bound_b = self._bind_pair(engine_name, small_tree, small_sim)
        assert bound_a.log_likelihood(bsm_values) == bound_b.log_likelihood(
            _bsrel2_values(bsm_values)
        )

    def test_incremental(self, engine_name, small_tree, small_sim, bsm_values):
        bound_a, bound_b = self._bind_pair(
            engine_name, small_tree, small_sim, incremental=True
        )
        lengths = np.asarray(small_tree.branch_lengths(), dtype=float)
        for scale in (1.0, 1.0, 1.1):  # repeat → exercises the dirty path
            assert bound_a.log_likelihood(
                bsm_values, lengths * scale
            ) == bound_b.log_likelihood(_bsrel2_values(bsm_values), lengths * scale)

    @pytest.mark.parametrize("batched", [True, False])
    def test_batched_modes(self, engine_name, batched, small_tree, small_sim, bsm_values):
        bound_a, bound_b = self._bind_pair(
            engine_name, small_tree, small_sim, batched=batched
        )
        assert bound_a.log_likelihood(bsm_values) == bound_b.log_likelihood(
            _bsrel2_values(bsm_values)
        )

    def test_recovery_layer(self, engine_name, small_tree, small_sim, bsm_values):
        bound_a, bound_b = self._bind_pair(
            engine_name, small_tree, small_sim, recovery=RecoveryConfig()
        )
        assert bound_a.log_likelihood(bsm_values) == bound_b.log_likelihood(
            _bsrel2_values(bsm_values)
        )

    def test_site_class_matrix_identical(self, engine_name, small_tree, small_sim, bsm_values):
        bound_a, bound_b = self._bind_pair(engine_name, small_tree, small_sim)
        lnl_a, props_a = bound_a.site_class_matrix(bsm_values)
        lnl_b, props_b = bound_b.site_class_matrix(_bsrel2_values(bsm_values))
        assert np.array_equal(lnl_a, lnl_b)
        assert np.array_equal(props_a, props_b)


class TestSixClassEvaluation:
    def test_batched_equals_unbatched(self, small_tree, small_sim):
        model = BSRELModel(3)
        values = model.default_start(None)
        engine = make_engine("slim-v2")
        plain = engine.bind(small_tree, small_sim.alignment, model, batched=False)
        batched = make_engine("slim-v2").bind(
            small_tree, small_sim.alignment, model, batched=True
        )
        assert plain.log_likelihood(values) == batched.log_likelihood(values)

    def test_operator_dedupe_counters(self, small_tree, small_sim):
        model = BSRELModel(3)
        values = model.default_start(None)
        engine = make_engine("slim-v2")
        bound = engine.bind(small_tree, small_sim.alignment, model, batched=True)
        bound.log_likelihood(values)
        stats = engine.cache_stats()
        assert stats["operator_builds_naive"] > stats["operator_builds"] > 0

    def test_grid_start_deterministic_and_evaluable(self, small_tree, small_sim):
        model = BSRELModel(3)
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, model)
        first = model.grid_start(bound)
        second = model.grid_start(bound)
        assert first == second
        assert np.isfinite(bound.log_likelihood(first))


class TestFitDriver:
    def test_fit_with_bsrel_pair(self, small_tree, small_sim):
        from repro.optimize.ml import fit_branch_site_test

        spec = resolve_model_spec("bsrel:2")
        engine = make_engine("slim")
        test = fit_branch_site_test(
            lambda model: engine.bind(small_tree, small_sim.alignment, model),
            seed=1,
            max_iterations=4,
            models=spec.pair(),
        )
        assert "BS-REL" in test.h0.model_name and "BS-REL" in test.h1.model_name
        assert np.isfinite(test.h0.lnl) and np.isfinite(test.h1.lnl)
        assert test.h1.lnl >= test.h0.lnl - 1e-6  # H0 ⊂ H1

    def test_grid_search_flag_requires_hook(self, small_tree, small_sim):
        from repro.optimize.ml import fit_branch_site_test

        engine = make_engine("slim")
        with pytest.raises(ValueError, match="grid_search"):
            fit_branch_site_test(
                lambda model: engine.bind(small_tree, small_sim.alignment, model),
                seed=1,
                max_iterations=2,
                grid_search=True,  # model A has no grid_start hook
            )
