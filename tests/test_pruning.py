"""Felsenstein pruning: correctness against direct enumeration, scaling."""

import numpy as np
import pytest

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import compress_patterns
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.expm import transition_matrix_syrk
from repro.likelihood.pruning import SCALE_THRESHOLD, build_leaf_clvs, prune_site_class
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2)
    pi = rng.dirichlet(np.full(61, 8.0))
    matrix = build_rate_matrix(2.0, 0.5, pi)
    decomp = decompose(matrix)
    return pi, decomp


def _p_factory(decomp):
    def factory(t, foreground):
        return transition_matrix_syrk(decomp, t, clip_negative=False)

    return factory


def _matmul(op, clv):
    return op @ clv


class TestAgainstDirectEnumeration:
    def test_three_taxon_star(self, setup):
        pi, decomp = setup
        tree = parse_newick("(A:0.1,B:0.25,C:0.07);")
        aln = CodonAlignment.from_sequences(["A", "B", "C"], ["ATGTTT", "ATGCCC", "CCCTTT"])
        pat = compress_patterns(aln)
        leaf_clvs = build_leaf_clvs(pat.alignment)
        result = prune_site_class(
            tree.branch_table(), len(tree.nodes), leaf_clvs, _p_factory(decomp), _matmul
        )
        lnl = result.site_log_likelihoods(pi)
        # Direct: L_s = sum_x pi_x prod_leaf P(t_leaf)[x, state].
        ps = {n.name: transition_matrix_syrk(decomp, n.length) for n in tree.leaves}
        states = pat.alignment.states
        for s in range(pat.n_patterns):
            direct = np.sum(
                pi
                * ps["A"][:, states[0, s]]
                * ps["B"][:, states[1, s]]
                * ps["C"][:, states[2, s]]
            )
            assert lnl[s] == pytest.approx(np.log(direct), abs=1e-10)

    def test_missing_data_marginalises(self, setup):
        pi, decomp = setup
        tree = parse_newick("(A:0.1,B:0.25,C:0.07);")
        aln = CodonAlignment.from_sequences(["A", "B", "C"], ["ATG", "CCC", "---"])
        pat = compress_patterns(aln)
        res = prune_site_class(
            tree.branch_table(), len(tree.nodes), build_leaf_clvs(pat.alignment),
            _p_factory(decomp), _matmul,
        )
        lnl_with_missing = res.site_log_likelihoods(pi)[0]
        # Dropping taxon C entirely must give the same likelihood.
        tree2 = parse_newick("(A:0.1,B:0.25);")
        aln2 = CodonAlignment.from_sequences(["A", "B"], ["ATG", "CCC"])
        pat2 = compress_patterns(aln2)
        res2 = prune_site_class(
            tree2.branch_table(), len(tree2.nodes), build_leaf_clvs(pat2.alignment),
            _p_factory(decomp), _matmul,
        )
        lnl_without = res2.site_log_likelihoods(pi)[0]
        assert lnl_with_missing == pytest.approx(lnl_without, abs=1e-10)

    def test_pulley_principle(self, setup):
        # Reversibility: sliding the root along a branch leaves lnL unchanged.
        pi, decomp = setup
        aln = CodonAlignment.from_sequences(["A", "B", "C"], ["ATGTTT", "CCCTTT", "ATGAAA"])
        pat = compress_patterns(aln)
        lnls = []
        for newick in [
            "((A:0.1,B:0.2):0.05,C:0.3);",
            "((A:0.1,B:0.2):0.15,C:0.2);",
            "(A:0.1,B:0.2,C:0.35);",
        ]:
            tree = parse_newick(newick)
            order = [aln.row(n) for n in tree.leaf_names()]
            sub = aln.subset_taxa([aln.names[i] for i in order])
            res = prune_site_class(
                tree.branch_table(), len(tree.nodes), build_leaf_clvs(compress_patterns(sub).alignment),
                _p_factory(decomp), _matmul,
            )
            lnls.append(res.site_log_likelihoods(pi).sum())
        assert lnls[0] == pytest.approx(lnls[1], abs=1e-9)
        assert lnls[0] == pytest.approx(lnls[2], abs=1e-9)


class TestScaling:
    def test_scalers_triggered_on_deep_trees(self, setup):
        pi, decomp = setup
        # Ladder of many short branches forces CLV magnitudes down
        # (~0.92 decay per level: a 120-level ladder bottoms out near
        # 8e-5, so a 1e-4 threshold exercises the rescaling path).
        tree = parse_newick("(" + _caterpillar(120) + ");")
        seqs = {name: "ATG" for name in tree.leaf_names()}
        aln = CodonAlignment.from_sequences(list(seqs), list(seqs.values()))
        pat = compress_patterns(aln.subset_taxa(tree.leaf_names()))
        res = prune_site_class(
            tree.branch_table(), len(tree.nodes), build_leaf_clvs(pat.alignment),
            _p_factory(decomp), _matmul, scale_threshold=1e-4,
        )
        assert np.any(res.log_scalers < 0)
        assert np.all(np.isfinite(res.site_log_likelihoods(pi)))

    def test_scaling_does_not_change_likelihood(self, setup):
        pi, decomp = setup
        tree = parse_newick(f"({_caterpillar(30)});")
        aln = CodonAlignment.from_sequences(
            tree.leaf_names(), ["ATGTTT"] * tree.n_leaves
        )
        pat = compress_patterns(aln)
        clvs = build_leaf_clvs(pat.alignment)
        always = prune_site_class(
            tree.branch_table(), len(tree.nodes), clvs, _p_factory(decomp), _matmul,
            scale_threshold=1.0,  # rescale at every node
        )
        never = prune_site_class(
            tree.branch_table(), len(tree.nodes), clvs, _p_factory(decomp), _matmul,
            scale_threshold=0.0,  # never rescale
        )
        assert np.allclose(
            always.site_log_likelihoods(pi), never.site_log_likelihoods(pi), atol=1e-9
        )


def _caterpillar(n_leaves: int) -> str:
    """Ladder topology newick fragment with n_leaves taxa."""
    core = "L1:0.05,L2:0.05"
    for k in range(3, n_leaves + 1):
        core = f"({core}):0.05,L{k}:0.05"
    return core


class TestValidation:
    def test_empty_branch_table(self, setup):
        _, decomp = setup
        with pytest.raises(ValueError, match="empty"):
            prune_site_class([], 1, [np.ones((61, 1))], _p_factory(decomp), _matmul)

    def test_non_postordered_table_detected(self, setup):
        _, decomp = setup
        # Parent (3) consumed before its child (2) is computed.
        rows = [(2, 3, 0.1, False), (0, 2, 0.1, False), (1, 2, 0.1, False), (3, 4, 0.1, False)]
        clvs = [np.ones((61, 1)), np.ones((61, 1))]
        with pytest.raises(ValueError, match="post-ordered"):
            prune_site_class(rows, 5, clvs, _p_factory(decomp), _matmul)
