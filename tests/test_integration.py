"""End-to-end integration: the paper's workflow on simulated data.

These tests run the complete pipeline — simulate → bind → fit H0+H1 →
LRT → empirical Bayes — and the §IV-1 accuracy comparison between the
engines, on problems small enough for CI but large enough to be
meaningful.
"""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import fit_branch_site_test, fit_model
from repro.trees.newick import parse_newick
from repro.utils.numerics import relative_difference

TREE = "((A:0.25,B:0.25):0.3 #1,(C:0.25,D:0.25):0.1,E:0.35);"


@pytest.fixture(scope="module")
def positive_data():
    """Strong positive selection on the foreground branch."""
    tree = parse_newick(TREE)
    values = {"kappa": 2.0, "omega0": 0.05, "omega2": 9.0, "p0": 0.55, "p1": 0.2}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, n_codons=250, seed=21)
    return tree, sim


@pytest.fixture(scope="module")
def null_data():
    """Data generated under H0 (omega2 = 1): no positive selection."""
    tree = parse_newick(TREE)
    h0 = BranchSiteModelA(fix_omega2=True)
    values = {"kappa": 2.0, "omega0": 0.2, "p0": 0.6, "p1": 0.3}
    sim = simulate_alignment(tree, h0, values, n_codons=250, seed=22)
    return tree, sim


class TestAccuracyAcrossEngines:
    """The paper's §IV-1 experiment in miniature: relative differences D."""

    @pytest.mark.parametrize("other", ["slim", "slim-v2"])
    def test_converged_lnl_matches_baseline(self, positive_data, other):
        tree, sim = positive_data
        results = {}
        for name in ("codeml", other):
            engine = make_engine(name)
            test = fit_branch_site_test(
                lambda m: engine.bind(tree, sim.alignment, m),
                seed=1,
                max_iterations=25,
            )
            results[name] = test
        for hypo in ("h0", "h1"):
            d = relative_difference(
                getattr(results["codeml"], hypo).lnl, getattr(results[other], hypo).lnl
            )
            # Paper reports D between 0 and ~5e-8; identical optimizer +
            # same seeds keeps ours comparably tiny.
            assert d < 1e-6, f"D = {d} for {hypo}"

    def test_single_evaluation_d_near_machine_eps(self, positive_data):
        tree, sim = positive_data
        values = {"kappa": 2.0, "omega0": 0.1, "omega2": 3.0, "p0": 0.5, "p1": 0.3}
        lnls = {}
        for name in ("codeml", "slim", "slim-v2"):
            bound = make_engine(name).bind(tree, sim.alignment, BranchSiteModelA())
            lnls[name] = bound.log_likelihood(values)
        assert relative_difference(lnls["codeml"], lnls["slim"]) < 1e-12
        assert relative_difference(lnls["codeml"], lnls["slim-v2"]) < 1e-12


class TestLRTBehaviour:
    def test_positive_selection_detected(self, positive_data):
        tree, sim = positive_data
        engine = make_engine("slim")
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m), seed=1, max_iterations=40
        )
        assert test.lrt.statistic > 3.84  # significant at 5%
        assert test.lrt.significant()
        assert test.h1.values["omega2"] > 1.5

    def test_null_data_not_significant(self, null_data):
        tree, sim = null_data
        engine = make_engine("slim")
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m), seed=1, max_iterations=40
        )
        assert test.lrt.statistic < 3.84
        assert not test.lrt.significant()


class TestParameterRecovery:
    def test_m0_recovers_generating_parameters(self):
        # M0 fit on M0 data: kappa and omega recovered within tolerance.
        tree = parse_newick(TREE)
        truth = {"kappa": 3.0, "omega": 0.4}
        sim = simulate_alignment(tree, M0Model(), truth, n_codons=600, seed=31)
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        fit = fit_model(bound, seed=1, max_iterations=60)
        assert fit.converged
        assert fit.values["kappa"] == pytest.approx(3.0, rel=0.25)
        assert fit.values["omega"] == pytest.approx(0.4, rel=0.25)

    def test_m0_recovers_branch_lengths(self):
        tree = parse_newick(TREE)
        truth = {"kappa": 2.0, "omega": 0.5}
        sim = simulate_alignment(tree, M0Model(), truth, n_codons=800, seed=32)
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        fit = fit_model(bound, seed=1, max_iterations=80)
        true_lengths = np.array(tree.branch_lengths())
        # Total tree length is better identified than individual branches.
        assert fit.branch_lengths.sum() == pytest.approx(true_lengths.sum(), rel=0.2)


class TestEmpiricalBayesEndToEnd:
    def test_neb_after_significant_lrt(self, positive_data):
        from repro.optimize.beb import neb_site_probabilities

        tree, sim = positive_data
        engine = make_engine("slim")
        model = BranchSiteModelA()
        bound = engine.bind(tree, sim.alignment, model)
        fit = fit_model(bound, seed=1, max_iterations=30)
        sites = neb_site_probabilities(bound, fit.values, fit.branch_lengths)
        truth = sim.site_classes >= 2
        # Enrichment: true class-2 sites rank higher on average.
        assert sites.probabilities[truth].mean() > sites.probabilities[~truth].mean()


class TestCrossEngineFitTrajectories:
    def test_same_seed_same_start_lnl(self, positive_data):
        # Both engines evaluate the identical start point (fixed-seed
        # rule): their first objective values agree to machine precision.
        tree, sim = positive_data
        model = BranchSiteModelA()
        start = model.default_start(np.random.default_rng(4))
        lnls = []
        for name in ("codeml", "slim"):
            bound = make_engine(name).bind(tree, sim.alignment, model)
            lnls.append(bound.log_likelihood(start))
        assert relative_difference(lnls[0], lnls[1]) < 1e-12

    def test_h0_h1_nesting_on_fits(self, positive_data):
        tree, sim = positive_data
        engine = make_engine("slim-v2")
        test = fit_branch_site_test(
            lambda m: engine.bind(tree, sim.alignment, m), seed=3, max_iterations=20
        )
        assert test.h1.lnl >= test.h0.lnl - 1e-6
        lrt = likelihood_ratio_test(test.h0.lnl, test.h1.lnl)
        assert lrt.statistic >= 0
