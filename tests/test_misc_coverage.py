"""Cross-cutting coverage: lazy exports, IUPAC table, engine internals, CLI parser."""

import numpy as np
import pytest


class TestLazyCoreExports:
    def test_engine_names_resolve_lazily(self):
        import repro.core as core

        assert core.BaselineEngine.name == "codeml"
        assert core.SlimEngine.name == "slim"
        assert core.SlimV2Engine.name == "slim-v2"
        assert callable(core.make_engine)

    def test_unknown_attribute(self):
        import repro.core as core

        with pytest.raises(AttributeError):
            core.does_not_exist


class TestIupacTable:
    @pytest.mark.parametrize(
        "symbol,expected",
        [
            ("R", set("AG")),
            ("Y", set("CT")),
            ("S", set("CG")),
            ("W", set("AT")),
            ("K", set("GT")),
            ("M", set("AC")),
            ("B", set("CGT")),
            ("D", set("AGT")),
            ("H", set("ACT")),
            ("V", set("ACG")),
            ("N", set("TCAG")),
        ],
    )
    def test_ambiguity_sets(self, symbol, expected):
        from repro.alignment.msa import IUPAC

        assert set(IUPAC[symbol]) == expected

    def test_u_folds_to_t(self):
        from repro.alignment.msa import IUPAC

        assert IUPAC["U"] == "T"

    def test_ambiguous_codon_state_count(self):
        # NTT = {TTT, CTT, ATT, GTT}: all sense.
        from repro.alignment.msa import CodonAlignment

        aln = CodonAlignment.from_sequences(["x"], ["NTT"])
        assert len(aln.ambiguity_sets[(0, 0)]) == 4


class TestEngineInternals:
    def test_slimv2_flop_operation_names(self, small_tree, small_sim, h1_model, bsm_values):
        from repro.core.engine import SlimV2Engine
        from repro.core.flops import FlopCounter

        counter = FlopCounter()
        engine = SlimV2Engine(counter=counter)
        engine.bind(small_tree, small_sim.alignment, h1_model).log_likelihood(bsm_values)
        assert "expm:dsyrk(sym-branch)" in counter.by_operation
        assert "clv:dsymm" in counter.by_operation

    def test_slimv2_per_site_counter(self, small_tree, small_sim, h1_model, bsm_values):
        from repro.core.engine import SlimV2Engine
        from repro.core.flops import FlopCounter

        counter = FlopCounter()
        engine = SlimV2Engine(counter=counter, bundled=False)
        engine.bind(small_tree, small_sim.alignment, h1_model).log_likelihood(bsm_values)
        assert "clv:dsymv" in counter.by_operation
        # Symmetric reads: roughly half of the matrix per application.
        assert counter.matrix_reads["clv:dsymv"] < counter.by_operation["clv:dsymv"] / 2

    def test_transition_cache_size_bound(self, small_tree, small_sim, h1_model, bsm_values):
        from repro.core.engine import SlimEngine

        engine = SlimEngine(cache_transition_matrices=True, transition_cache_size=4)
        bound = engine.bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        assert len(engine._transition_cache) <= 5  # cleared-and-refilled bound

    def test_counter_merge_and_summary(self):
        from repro.core.flops import FlopCounter

        a, b = FlopCounter(), FlopCounter()
        a.add("x", 100, reads=10)
        b.add("x", 50, reads=5)
        b.add("y", 7)
        a.merge(b)
        assert a.by_operation == {"x": 150, "y": 7}
        assert a.matrix_reads["x"] == 15
        assert "TOTAL" in a.summary()


class TestCliParser:
    def test_bench_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--dataset", "i", "--iterations", "1", "--engines", "codeml", "slim"]
        )
        assert args.command == "bench"
        assert args.engines == ["codeml", "slim"]

    def test_bench_rejects_unknown_engine(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--engines", "warp"])


class TestTreeHelpers:
    def test_map_branches(self):
        from repro.trees.newick import parse_newick
        from repro.trees.tree import map_branches

        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        map_branches(tree, lambda node: 0.5)
        assert tree.branch_lengths() == [0.5, 0.5, 0.5]

    def test_repr(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        assert "n_leaves=3" in repr(tree)


class TestModelRepr:
    def test_model_repr_lists_params(self):
        from repro.models.branch_site import BranchSiteModelA

        assert "omega2" in repr(BranchSiteModelA())


class TestSlimBundledMode:
    def test_bundled_agrees_with_per_site(self, small_tree, small_sim, h1_model, bsm_values):
        from repro.core.engine import SlimEngine

        per_site = SlimEngine().bind(small_tree, small_sim.alignment, h1_model)
        bundled = SlimEngine(bundled=True).bind(small_tree, small_sim.alignment, h1_model)
        assert bundled.log_likelihood(bsm_values) == pytest.approx(
            per_site.log_likelihood(bsm_values), rel=1e-13
        )

    def test_bundled_counter_uses_gemm(self, small_tree, small_sim, h1_model, bsm_values):
        from repro.core.engine import SlimEngine
        from repro.core.flops import FlopCounter

        counter = FlopCounter()
        engine = SlimEngine(counter=counter, bundled=True)
        engine.bind(small_tree, small_sim.alignment, h1_model).log_likelihood(bsm_values)
        assert "clv:dgemm" in counter.by_operation
        assert "clv:dgemv" not in counter.by_operation
