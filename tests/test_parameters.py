"""Bounded/unconstrained parameter transforms."""

import math

import numpy as np
import pytest

from repro.models.parameters import (
    IntervalTransform,
    PositiveTransform,
    simplex_pack,
    simplex_unpack,
    transform_array,
)


class TestPositiveTransform:
    @pytest.mark.parametrize("theta", [1e-6, 0.5, 1.0, 42.0, 1e4])
    def test_roundtrip(self, theta):
        tr = PositiveTransform()
        assert tr.to_constrained(tr.to_unconstrained(theta)) == pytest.approx(theta, rel=1e-12)

    def test_lower_bound_respected(self):
        tr = PositiveTransform(lower=1.0)
        # At the clip the offset underflows to exactly the bound; any
        # representable x above the clip stays strictly inside.
        assert tr.to_constrained(-100.0) >= 1.0
        assert tr.to_constrained(-20.0) > 1.0
        assert tr.to_constrained(0.0) == pytest.approx(2.0)

    def test_below_lower_rejected(self):
        tr = PositiveTransform(lower=1.0)
        with pytest.raises(ValueError, match="lower bound"):
            tr.to_unconstrained(0.5)

    def test_overflow_clipped(self):
        tr = PositiveTransform()
        assert math.isfinite(tr.to_constrained(1e6))
        assert tr.to_constrained(-1e6) > 0.0

    def test_monotone(self):
        tr = PositiveTransform(lower=0.3)
        xs = np.linspace(-5, 5, 20)
        thetas = [tr.to_constrained(x) for x in xs]
        assert all(a < b for a, b in zip(thetas, thetas[1:]))


class TestIntervalTransform:
    @pytest.mark.parametrize("theta", [0.001, 0.25, 0.5, 0.75, 0.999])
    def test_roundtrip_unit(self, theta):
        tr = IntervalTransform(0.0, 1.0)
        assert tr.to_constrained(tr.to_unconstrained(theta)) == pytest.approx(theta, rel=1e-9)

    def test_general_interval(self):
        tr = IntervalTransform(1.0, 50.0)
        assert tr.to_constrained(tr.to_unconstrained(7.0)) == pytest.approx(7.0)
        assert 1.0 <= tr.to_constrained(-100) < tr.to_constrained(100) <= 50.0
        assert 1.0 < tr.to_constrained(-20) < tr.to_constrained(20) < 50.0

    def test_boundary_rejected(self):
        tr = IntervalTransform(0.0, 1.0)
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                tr.to_unconstrained(bad)

    def test_empty_interval(self):
        with pytest.raises(ValueError, match="empty interval"):
            IntervalTransform(2.0, 2.0)

    def test_midpoint_maps_to_zero(self):
        tr = IntervalTransform(2.0, 6.0)
        assert tr.to_unconstrained(4.0) == pytest.approx(0.0)


class TestSimplex:
    @pytest.mark.parametrize("p0,p1", [(0.5, 0.3), (0.01, 0.01), (0.9, 0.05), (1 / 3, 1 / 3)])
    def test_roundtrip(self, p0, p1):
        back = simplex_unpack(*simplex_pack(p0, p1))
        assert back[0] == pytest.approx(p0, rel=1e-9)
        assert back[1] == pytest.approx(p1, rel=1e-9)

    def test_unpack_always_interior(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.normal(scale=10, size=2)
            p0, p1 = simplex_unpack(*x)
            assert p0 > 0 and p1 > 0 and p0 + p1 < 1

    @pytest.mark.parametrize("p0,p1", [(0.0, 0.5), (0.5, 0.0), (0.6, 0.4), (0.7, 0.5)])
    def test_boundary_rejected(self, p0, p1):
        with pytest.raises(ValueError):
            simplex_pack(p0, p1)


class TestTransformArray:
    def test_vectorised(self):
        tr = PositiveTransform()
        thetas = np.array([0.1, 1.0, 10.0])
        xs = transform_array(thetas, tr, to_unconstrained=True)
        back = transform_array(xs, tr, to_unconstrained=False)
        assert np.allclose(back, thetas)
