"""Frame-protocol tests: codec round-trips, torn/hostile frames, gating.

The conformance suite in ``test_executors.py`` exercises the protocol
end to end; this file attacks the wire layer directly — mid-frame EOF,
oversized frames, slow-trickle delivery, pickle gating, and the
timeout-restoration contract the PR 6 socket fixes depend on.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.parallel.executors import wire
from repro.parallel.executors.wire import Frame, Pickled, WireError, register_struct


def _pipe():
    a, b = socket.socketpair()
    a.settimeout(10.0)
    b.settimeout(10.0)
    return a, b


def _roundtrip(payload, *, allow_pickle_enc=True, allow_pickle_dec=True,
               msg_type=wire.MSG_TASK, tag=7):
    """Send one frame over a socketpair (threaded so large payloads
    cannot deadlock on the kernel buffer) and decode it."""
    a, b = _pipe()
    errors = []

    def send():
        try:
            wire.send_frame(a, msg_type, tag, payload,
                            allow_pickle=allow_pickle_enc)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    thread = threading.Thread(target=send)
    thread.start()
    try:
        frame = wire.recv_frame(b, timeout=10.0)
        thread.join()
        if errors:
            raise errors[0]
        assert frame is not None
        assert frame.msg_type == msg_type
        assert frame.tag == tag
        return frame.payload(allow_pickle=allow_pickle_dec)
    finally:
        a.close()
        b.close()


def _flat(buffers) -> bytes:
    return b"".join(bytes(b) for b in buffers)


class TestCodecRoundTrips:
    def test_plain_containers(self):
        payload = {
            "none": None, "t": True, "f": False, "i": -12, "x": 2.5,
            "s": "héllo", "b": b"\x00\xff", "list": [1, [2, 3], "four"],
            "tuple": (1, (2, 3)),
        }
        out = _roundtrip(payload, allow_pickle_enc=False, allow_pickle_dec=False)
        assert out == payload
        assert isinstance(out["tuple"], tuple)
        assert isinstance(out["tuple"][1], tuple)

    def test_non_string_and_reserved_dict_keys(self):
        payload = {1: "one", (2, 3): "pair", "__nd__": "reserved", None: "none"}
        out = _roundtrip(payload, allow_pickle_enc=False, allow_pickle_dec=False)
        assert out == payload

    def test_arrays_zero_copy_read_only(self):
        big = np.arange(120_000, dtype=np.float64).reshape(300, 400)
        payload = {
            "big": big,
            "ints": np.array([[1, 2], [3, 4]], dtype=np.int32),
            "bools": np.array([True, False]),
            "zerod": np.array(2.5),
            "scalar": np.float32(1.5),
            "nan": float("nan"),
        }
        out = _roundtrip(payload, allow_pickle_enc=False, allow_pickle_dec=False)
        assert np.array_equal(out["big"], big)
        assert out["big"].dtype == np.float64
        assert not out["big"].flags.writeable  # shared backing store stays safe
        assert out["ints"].tolist() == [[1, 2], [3, 4]]
        assert out["bools"].dtype == np.bool_
        assert out["zerod"].shape == () and float(out["zerod"]) == 2.5
        assert out["scalar"] == 1.5 and isinstance(out["scalar"], float)
        assert np.isnan(out["nan"])

    def test_registered_dataclass(self):
        @register_struct
        @dataclass(frozen=True)
        class _WirePoint:
            x: int
            label: str
            weights: np.ndarray = None

        out = _roundtrip({"p": _WirePoint(3, "a", np.ones(4))},
                         allow_pickle_enc=False, allow_pickle_dec=False)
        assert isinstance(out["p"], _WirePoint)
        assert out["p"].x == 3 and out["p"].label == "a"
        assert np.array_equal(out["p"].weights, np.ones(4))

    def test_control_frame_is_24_bytes(self):
        buffers = wire.encode_frame(wire.MSG_HEARTBEAT, with_payload=False)
        assert wire.buffers_nbytes(buffers) == 24
        frame = wire.decode_frame(_flat(buffers))
        assert frame.msg_type == wire.MSG_HEARTBEAT
        assert frame.payload() is None

    def test_decode_frame_buffer_path(self):
        # The shared-memory attach path: one contiguous buffer in, views out.
        arr = np.arange(1000, dtype=np.float64)
        buffers = wire.encode_frame(wire.MSG_BATCH, 5, {"arr": arr, "k": (1, 2)})
        frame = wire.decode_frame(_flat(buffers))
        assert frame.tag == 5
        payload = frame.payload()
        assert np.array_equal(payload["arr"], arr)
        assert payload["k"] == (1, 2)

    def test_big_endian_arrays_normalised(self):
        arr = np.arange(6, dtype=">f8").reshape(2, 3)
        out = _roundtrip({"a": arr}, allow_pickle_enc=False, allow_pickle_dec=False)
        assert np.array_equal(out["a"], arr.astype("<f8"))


class TestPickleGating:
    class _Exotic:
        def __init__(self):
            self.value = 41

    def test_strict_encode_refuses_unknown_types(self):
        with pytest.raises(TypeError, match="not wire-encodable"):
            wire.encode_frame(wire.MSG_TASK, 0, {"x": self._Exotic()},
                              allow_pickle=False)

    def test_explicit_pickled_requires_receiver_opt_in(self):
        out = _roundtrip({"x": Pickled(self._Exotic())}, allow_pickle_dec=True)
        assert out["x"].value == 41
        with pytest.raises(WireError, match="did not opt in"):
            _roundtrip({"x": Pickled(self._Exotic())}, allow_pickle_dec=False)

    def test_pickle_checksum_enforced(self):
        buffers = wire.encode_frame(wire.MSG_BATCH, 0, {"x": Pickled((1, 2))})
        raw = bytearray(_flat(buffers))
        raw[-1] ^= 0xFF  # corrupt the last pickle byte
        with pytest.raises(WireError, match="checksum"):
            wire.decode_frame(bytes(raw)).payload(allow_pickle=True)

    def test_struct_resolution_gated_to_repro_namespace(self):
        # The codec escapes reserved keys on encode, so a hostile struct
        # reference must be hand-built: a JSON root claiming an os struct.
        body = b'{"__dc__":"os:Thing","f":{}}'
        header = struct.pack(">4sBBHqQ", b"SLW2", 1, wire.MSG_TASK, 1, 0,
                             48 + len(body))
        table = struct.pack(">BBBxIQ4Q", 1, 0, 0, 0, len(body), 0, 0, 0, 0)
        with pytest.raises(WireError, match="outside repro"):
            wire.decode_frame(header + table + body).payload()


class TestHostileFrames:
    def test_clean_eof_at_boundary_returns_none(self):
        a, b = _pipe()
        a.close()
        assert wire.recv_frame(b, timeout=5.0) is None
        b.close()

    def test_mid_header_eof_raises(self):
        a, b = _pipe()
        a.sendall(b"SLW2\x01")  # 5 of 24 header bytes
        a.close()
        with pytest.raises(WireError, match="mid-frame"):
            wire.recv_frame(b, timeout=5.0)
        b.close()

    def test_mid_body_eof_raises(self):
        a, b = _pipe()
        raw = _flat(wire.encode_frame(wire.MSG_TASK, 1, {"k": list(range(100))}))
        a.sendall(raw[: len(raw) - 7])
        a.close()
        with pytest.raises(WireError, match="mid-frame"):
            wire.recv_frame(b, timeout=5.0)
        b.close()

    def test_bad_magic_rejected(self):
        a, b = _pipe()
        a.sendall(struct.pack(">4sBBHqQ", b"EVIL", 1, 1, 0, 0, 0))
        with pytest.raises(WireError, match="not speaking"):
            wire.recv_frame(b, timeout=5.0)
        a.close()
        b.close()

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = _pipe()
        a.sendall(struct.pack(">4sBBHqQ", b"SLW2", 1, wire.MSG_TASK, 1, 0, 10**12))
        with pytest.raises(WireError, match="exceeds protocol maximum"):
            wire.recv_frame(b, timeout=5.0)
        a.close()
        b.close()

    def test_section_overrun_rejected(self):
        body = struct.pack(">BBBxIQ4Q", 2, 0, 0, 0, 999, 0, 0, 0, 0) + b"short"
        header = struct.pack(">4sBBHqQ", b"SLW2", 1, wire.MSG_TASK, 1, 0, len(body))
        with pytest.raises(WireError, match="overruns"):
            wire.decode_frame(header + body)

    def test_array_shape_data_mismatch_rejected(self):
        data = b"\x00" * 16  # 2 float64s, but the table claims shape (5,)
        body = (
            struct.pack(">BBBxIQ4Q", 1, 0, 0, 0, 12, 0, 0, 0, 0)
            + struct.pack(">BBBxIQ4Q", 3, 1, 1, 0, len(data), 5, 0, 0, 0)
            + b'{"__nd__":0}' + data
        )
        header = struct.pack(">4sBBHqQ", b"SLW2", 1, wire.MSG_TASK, 2, 0, len(body))
        with pytest.raises(WireError, match="needs"):
            wire.decode_frame(header + body)

    def test_slow_trickle_chunked_frame(self):
        # A frame delivered byte-dribble across many TCP segments must
        # reassemble exactly; recv_frame loops recv_into until complete.
        payload = {"arr": np.arange(512, dtype=np.float64), "k": "trickle"}
        raw = _flat(wire.encode_frame(wire.MSG_TASK, 9, payload,
                                      allow_pickle=False))
        a, b = _pipe()

        def dribble():
            for i in range(0, len(raw), 97):
                a.sendall(raw[i:i + 97])
                time.sleep(0.001)

        thread = threading.Thread(target=dribble)
        thread.start()
        frame = wire.recv_frame(b, timeout=30.0)
        thread.join()
        assert frame is not None and frame.tag == 9
        out = frame.payload()
        assert np.array_equal(out["arr"], payload["arr"])
        a.close()
        b.close()


class TestTimeoutDiscipline:
    def test_recv_frame_restores_previous_timeout(self):
        a, b = socket.socketpair()
        for prev in (None, 123.0):
            b.settimeout(prev)
            wire.send_frame(a, wire.MSG_PING, with_payload=False)
            frame = wire.recv_frame(b, timeout=5.0)
            assert frame is not None and frame.msg_type == wire.MSG_PING
            assert b.gettimeout() == prev  # the PR 6 leak fix
        a.close()
        b.close()

    def test_recv_frame_restores_timeout_on_error(self):
        a, b = socket.socketpair()
        b.settimeout(77.0)
        a.sendall(b"SLW2")  # partial header
        a.close()
        with pytest.raises(WireError):
            wire.recv_frame(b, timeout=2.0)
        assert b.gettimeout() == 77.0
        b.close()

    def test_recv_frame_times_out_without_touching_stream_state(self):
        a, b = socket.socketpair()
        b.settimeout(None)
        with pytest.raises(TimeoutError):
            wire.recv_frame(b, timeout=0.2)
        assert b.gettimeout() is None
        a.close()
        b.close()


class TestFrameObject:
    def test_payload_cached_per_gate(self):
        buffers = wire.encode_frame(wire.MSG_TASK, 1, {"k": [1, 2]})
        frame = wire.decode_frame(_flat(buffers))
        first = frame.payload()
        assert frame.payload() is first

    def test_decode_frame_rejects_short_buffer(self):
        with pytest.raises(WireError, match="shorter than"):
            wire.decode_frame(b"SLW2")
