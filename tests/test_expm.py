"""Matrix-exponential kernels: all paths agree with scipy and each other."""

import numpy as np
import pytest

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.expm import (
    fill_symmetric_from_lower,
    symmetric_branch_matrix,
    transition_matrix_einsum,
    transition_matrix_gemm,
    transition_matrix_scipy,
    transition_matrix_syrk,
)
from repro.core.flops import FlopCounter

KERNELS = [transition_matrix_einsum, transition_matrix_gemm, transition_matrix_syrk]


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    pi = rng.dirichlet(np.full(61, 6.0))
    matrix = build_rate_matrix(2.1, 0.8, pi)
    return matrix, decompose(matrix)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("t", [0.0, 1e-6, 0.05, 0.4, 2.0, 10.0])
class TestAgainstScipy:
    def test_matches_pade_reference(self, problem, kernel, t):
        matrix, decomp = problem
        reference = transition_matrix_scipy(matrix.q, t)
        ours = kernel(decomp, t, clip_negative=False)
        assert np.allclose(ours, reference, atol=1e-11)


@pytest.mark.parametrize("kernel", KERNELS)
class TestStochasticity:
    def test_rows_sum_to_one(self, problem, kernel):
        _, decomp = problem
        p = kernel(decomp, 0.3)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-10)

    def test_entries_nonnegative_when_clipped(self, problem, kernel):
        _, decomp = problem
        p = kernel(decomp, 0.3, clip_negative=True)
        assert p.min() >= 0.0

    def test_identity_at_t_zero(self, problem, kernel):
        _, decomp = problem
        assert np.allclose(kernel(decomp, 0.0), np.eye(61), atol=1e-12)

    def test_rejects_negative_t(self, problem, kernel):
        _, decomp = problem
        with pytest.raises(ValueError, match="non-negative"):
            kernel(decomp, -0.1)

    def test_rejects_nan_t(self, problem, kernel):
        _, decomp = problem
        with pytest.raises(ValueError):
            kernel(decomp, float("nan"))


class TestKernelEquivalence:
    def test_gemm_and_syrk_agree_closely(self, problem):
        # Same decomposition, Eq. 9 vs Eq. 10: agreement near machine eps.
        _, decomp = problem
        pg = transition_matrix_gemm(decomp, 0.17, clip_negative=False)
        ps = transition_matrix_syrk(decomp, 0.17, clip_negative=False)
        assert np.abs(pg - ps).max() < 1e-13

    def test_einsum_identical_arithmetic_to_gemm(self, problem):
        _, decomp = problem
        pe = transition_matrix_einsum(decomp, 0.17, clip_negative=False)
        pg = transition_matrix_gemm(decomp, 0.17, clip_negative=False)
        assert np.abs(pe - pg).max() < 1e-13


class TestSymmetricBranchMatrix:
    def test_action_matches_p(self, problem):
        matrix, decomp = problem
        rng = np.random.default_rng(1)
        t = 0.23
        p = transition_matrix_syrk(decomp, t, clip_negative=False)
        m = symmetric_branch_matrix(decomp, t)
        for _ in range(5):
            w = rng.random(61)
            assert np.allclose(m @ (matrix.pi * w), p @ w, atol=1e-11)

    def test_m_is_exactly_symmetric(self, problem):
        _, decomp = problem
        m = symmetric_branch_matrix(decomp, 0.4)
        assert np.array_equal(m, m.T)


class TestFlopAccounting:
    def test_gemm_vs_syrk_ratio(self, problem):
        # The paper's headline: ~2n³ vs ~n³ (exact ratio 2n/(n+1)).
        _, decomp = problem
        counter = FlopCounter()
        transition_matrix_gemm(decomp, 0.1, counter=counter)
        transition_matrix_syrk(decomp, 0.1, counter=counter)
        ratio = counter.by_operation["expm:dgemm"] / counter.by_operation["expm:dsyrk"]
        assert ratio == pytest.approx(2 * 61 / 62)

    def test_einsum_counted_as_2n3(self, problem):
        _, decomp = problem
        counter = FlopCounter()
        transition_matrix_einsum(decomp, 0.1, counter=counter)
        assert counter.by_operation["expm:einsum(eq9)"] == 2 * 61**3


class TestFillSymmetric:
    def test_mirrors_lower_triangle(self):
        rng = np.random.default_rng(0)
        lower = np.tril(rng.random((5, 5)))
        full = fill_symmetric_from_lower(lower)
        assert np.array_equal(full, full.T)
        assert np.allclose(np.tril(full), lower)

    def test_chapman_kolmogorov(self, problem):
        # P(a) P(b) = P(a+b) — the semigroup property of the kernels.
        _, decomp = problem
        pa = transition_matrix_syrk(decomp, 0.1, clip_negative=False)
        pb = transition_matrix_syrk(decomp, 0.25, clip_negative=False)
        pab = transition_matrix_syrk(decomp, 0.35, clip_negative=False)
        assert np.allclose(pa @ pb, pab, atol=1e-11)
