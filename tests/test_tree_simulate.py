"""Yule tree simulation and random foreground selection."""

import numpy as np
import pytest

from repro.trees.simulate import random_foreground, simulate_yule_tree


class TestYule:
    @pytest.mark.parametrize("n", [3, 5, 10, 40])
    def test_unrooted_branch_count(self, n):
        tree = simulate_yule_tree(n, seed=1)
        assert tree.n_leaves == n
        assert tree.n_branches == 2 * n - 3

    def test_rooted_branch_count(self):
        tree = simulate_yule_tree(8, seed=1, unrooted=False)
        assert tree.n_branches == 2 * 8 - 2

    def test_binary(self):
        assert simulate_yule_tree(12, seed=4).is_binary()

    def test_deterministic_by_seed(self):
        a = simulate_yule_tree(9, seed=123)
        b = simulate_yule_tree(9, seed=123)
        assert a.leaf_names() == b.leaf_names()
        assert a.branch_lengths() == pytest.approx(b.branch_lengths())

    def test_different_seeds_differ(self):
        a = simulate_yule_tree(9, seed=1)
        b = simulate_yule_tree(9, seed=2)
        assert a.branch_lengths() != pytest.approx(b.branch_lengths())

    def test_branch_length_scale(self):
        # Exponential(mean) branch lengths: empirical mean within 3 sigma.
        mean = 0.25
        tree = simulate_yule_tree(200, seed=7, mean_branch_length=mean)
        lengths = np.array(tree.branch_lengths())
        se = mean / np.sqrt(len(lengths))
        assert abs(lengths.mean() - mean) < 3.5 * se

    def test_names_prefixed(self):
        tree = simulate_yule_tree(4, seed=1, name_prefix="tax")
        assert all(name.startswith("tax") for name in tree.leaf_names())

    def test_too_few_species(self):
        with pytest.raises(ValueError):
            simulate_yule_tree(2, seed=1, unrooted=True)
        with pytest.raises(ValueError):
            simulate_yule_tree(1, seed=1, unrooted=False)


class TestRandomForeground:
    def test_marks_exactly_one(self):
        tree = simulate_yule_tree(10, seed=1)
        node = random_foreground(tree, seed=2)
        assert tree.require_single_foreground() is node

    def test_internal_only(self):
        tree = simulate_yule_tree(10, seed=1)
        node = random_foreground(tree, seed=2, internal_only=True)
        assert not node.is_leaf

    def test_deterministic(self):
        t1 = simulate_yule_tree(10, seed=1)
        t2 = simulate_yule_tree(10, seed=1)
        n1 = random_foreground(t1, seed=9)
        n2 = random_foreground(t2, seed=9)
        assert n1.index == n2.index
